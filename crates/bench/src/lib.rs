//! Shared helpers for the benchmark harness.

use des::SimTime;

/// A naive sorted-`Vec` future-event list, used as the baseline in the
/// `ablation_queue` study against the production binary-heap
/// [`des::Scheduler`].
pub struct SortedVecQueue<E> {
    // Kept sorted descending by time so `pop` is `Vec::pop` (O(1)) and
    // insertion is the O(n) cost being measured.
    items: Vec<(SimTime, u64, E)>,
    seq: u64,
}

impl<E> Default for SortedVecQueue<E> {
    fn default() -> Self {
        SortedVecQueue {
            items: Vec::new(),
            seq: 0,
        }
    }
}

impl<E> SortedVecQueue<E> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an event at its time-sorted position.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        // Descending by (time, seq): binary search for the insertion point.
        let pos = self.items.partition_point(|(t, s, _)| (*t, *s) > (at, seq));
        self.items.insert(pos, (at, seq, event));
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.items.pop().map(|(t, _, e)| (t, e))
    }

    /// Pending count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_vec_queue_orders_like_scheduler() {
        let mut naive = SortedVecQueue::new();
        let mut real = des::Scheduler::new();
        let mut x: u64 = 0xDEADBEEF;
        for i in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_nanos(x % 10_000);
            naive.schedule(t, i);
            real.schedule(t, i);
        }
        assert_eq!(naive.len(), 2000);
        assert!(!naive.is_empty());
        loop {
            match (naive.pop(), real.pop()) {
                (None, None) => break,
                (Some((tn, en)), Some((tr, er))) => {
                    assert_eq!(tn, tr);
                    assert_eq!(en, er, "FIFO tie-break must match");
                }
                other => panic!("length mismatch: {other:?}"),
            }
        }
    }
}
