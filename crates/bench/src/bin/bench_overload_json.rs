//! Emit `BENCH_overload.json` — the overload-control suite's A/B and
//! throughput receipt, plus an events/sec regression gate against the
//! committed scheduler baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_overload_json            # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_overload_json
//! ```
//!
//! The scenario is a flash crowd against a small channel pool with UAC
//! retry — the workload where admission control actually runs. Two
//! hard checks:
//!
//! 1. **Digest equality**: the legacy inline hysteresis shed and the
//!    pluggable `Hysteresis503` law must produce bit-identical run
//!    digests — the refactor is not allowed to move the physics. The
//!    emitter exits non-zero if they disagree.
//! 2. **Throughput gate**: the default engine on the scheduler bench's
//!    workload must stay within 10% of `BENCH_SCHED_BASELINE`'s
//!    `optimized` events/sec (same contract as the sip/media emitters).
//!
//! Every other law in the suite is also run once and reported
//! (events/sec + digest), so a regression in any admission path shows
//! up in the artifact diff.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use des::SimDuration;
use faults::{FaultKind, FaultSchedule};
use loadgen::{HoldingDist, RetryPolicy};
use overload::ControlLaw;
use pbx_sim::OverloadControl;
use std::fmt::Write as _;

struct LawResult {
    name: String,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    digest: u64,
    shed: u64,
    goodput: u64,
}

/// Flash-crowd shed scenario: small pool, 8× burst, capped-backoff
/// retries. `full` holds the crowd against the paper-scale pool; smoke
/// shrinks everything so `./ci` finishes in well under a second.
fn shed_cfg(scale: &str) -> (EmpiricalConfig, &'static str) {
    let mut c = EmpiricalConfig::smoke(2015);
    c.media = MediaMode::Off;
    c.retry = Some(RetryPolicy {
        max_retries: 4,
        base_backoff: SimDuration::from_secs(2),
        max_backoff: SimDuration::from_secs(16),
    });
    match scale {
        "full" => {
            c.erlangs = 60.0;
            c.channels = 90;
            c.holding = HoldingDist::Fixed(30.0);
            c.placement_window_s = 300.0;
            c.user_pool = 100;
            c.faults = FaultSchedule::new().at(
                100.0,
                FaultKind::FlashCrowd {
                    rate_multiplier: 8.0,
                    duration: SimDuration::from_secs(30),
                },
            );
            (c, "flash_crowd_60E_90ch_300s")
        }
        _ => {
            c.erlangs = 6.0;
            c.channels = 12;
            c.holding = HoldingDist::Fixed(10.0);
            c.placement_window_s = 80.0;
            c.user_pool = 30;
            c.faults = FaultSchedule::new().at(
                30.0,
                FaultKind::FlashCrowd {
                    rate_multiplier: 8.0,
                    duration: SimDuration::from_secs(10),
                },
            );
            (c, "flash_crowd_6E_12ch_smoke")
        }
    }
}

fn gate_cfg(scale: &str) -> EmpiricalConfig {
    // Mirror bench_sched_json's scenario exactly so events/sec is
    // comparable against its baseline file at the same scale.
    match scale {
        "full" => EmpiricalConfig::table1(150.0, 2015),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::PerPacket { encode_every: 50 };
            c
        }
    }
}

/// Pull `"events_per_sec": <num>` out of the baseline's `"optimized"`
/// config line (same hand-rolled scan as the other emitters — the bench
/// crate deliberately has no JSON parser dependency).
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"name\": \"optimized\""))?;
    let tail = line.split("\"events_per_sec\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn run_law(
    base: &EmpiricalConfig,
    name: &str,
    legacy: Option<OverloadControl>,
    law: Option<ControlLaw>,
) -> LawResult {
    // Best-of-3: the smoke cells finish in milliseconds, where single-run
    // jitter can dwarf any law's cost delta.
    let r = (0..3)
        .map(|_| {
            let mut cfg = base.clone();
            cfg.overload = legacy;
            cfg.overload_law = law;
            EmpiricalRunner::run_with(cfg, SimOptions::default())
        })
        .reduce(|best, r| {
            if r.wall_clock_s < best.wall_clock_s {
                r
            } else {
                best
            }
        })
        .expect("three runs");
    eprintln!(
        "{name:<16} {:>8.3} s  {:>12.0} ev/s  shed {:>6}  goodput {:>6}",
        r.wall_clock_s, r.events_per_sec, r.shed, r.goodput
    );
    LawResult {
        name: name.to_owned(),
        wall_s: r.wall_clock_s,
        events: r.events_processed,
        events_per_sec: r.events_per_sec,
        digest: r.digest(),
        shed: r.shed,
        goodput: r.goodput,
    }
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let (cfg, scenario) = shed_cfg(&scale);

    let watermarks = (0.85, 0.5, SimDuration::from_secs(4));
    let legacy = OverloadControl {
        high_watermark: watermarks.0,
        low_watermark: watermarks.1,
        retry_after: watermarks.2,
    };
    let hysteresis_law = ControlLaw::Hysteresis {
        high_watermark: watermarks.0,
        low_watermark: watermarks.1,
        retry_after: watermarks.2,
    };
    let capacity_cps = cfg.erlangs / cfg.holding.mean();

    let mut results = vec![
        run_law(&cfg, "legacy_inline", Some(legacy), None),
        run_law(&cfg, "hysteresis503", None, Some(hysteresis_law)),
    ];

    // The refactor contract: the pluggable default must replay the
    // legacy inline shed exactly — same events, same wire bytes, same
    // digest.
    if results[0].digest != results[1].digest {
        eprintln!(
            "FATAL: pluggable Hysteresis503 and the legacy inline shed disagree \
             on the run digest — the extraction moved the physics"
        );
        std::process::exit(1);
    }
    if results[0].shed == 0 {
        eprintln!("FATAL: the shed scenario never engaged overload control");
        std::process::exit(1);
    }

    // The rest of the suite, reported for the artifact diff.
    for law in [
        ControlLaw::rate_based_for(capacity_cps),
        ControlLaw::window_based_for(cfg.channels),
        ControlLaw::signal_based_default(),
        ControlLaw::mos_cac_default(),
    ] {
        results.push(run_law(&cfg, law.name(), None, Some(law)));
    }

    let overhead = results[1].events_per_sec / results[0].events_per_sec.max(1e-9);
    eprintln!("pluggable vs inline hysteresis (events/sec): {overhead:.2}x");

    // Regression gate, same contract as bench_sip_json / bench_media_json.
    let baseline_path =
        std::env::var("BENCH_SCHED_BASELINE").unwrap_or_else(|_| "BENCH_sched.json".to_owned());
    let gate = gate_cfg(&scale);
    let gate_eps = (0..3)
        .map(|_| EmpiricalRunner::run_with(gate.clone(), SimOptions::default()).events_per_sec)
        .fold(0.0_f64, f64::max);
    let mut gate_status = "no_baseline".to_owned();
    let mut baseline_eps = 0.0;
    match std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec)
    {
        // An instrumented build pays two clock reads per event; comparing
        // it against an uninstrumented baseline would always trip the gate.
        Some(_) if cfg!(feature = "phase-timing") => {
            gate_status = "skipped_phase_timing".to_owned();
            eprintln!("throughput gate skipped: phase-timing instrumentation is enabled");
        }
        Some(base) => {
            baseline_eps = base;
            let ratio = gate_eps / base.max(1e-9);
            eprintln!(
                "throughput gate: {gate_eps:.0} ev/s vs baseline {base:.0} ev/s \
                 ({ratio:.2}x, {baseline_path})"
            );
            if ratio < 0.9 {
                eprintln!("FATAL: events/sec regressed more than 10% vs {baseline_path}");
                std::process::exit(1);
            }
            gate_status = format!("ok_{ratio:.3}x");
        }
        None => {
            eprintln!("throughput gate skipped: no parsable baseline at {baseline_path}");
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"laws\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"shed\": {}, \"goodput\": {}, \
             \"digest\": \"{:#018x}\"}}{comma}",
            r.name, r.wall_s, r.events, r.events_per_sec, r.shed, r.goodput, r.digest
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"pluggable_vs_inline_events_per_sec\": {overhead:.3},"
    );
    let _ = writeln!(json, "  \"gate_scenario_events_per_sec\": {gate_eps:.1},");
    let _ = writeln!(
        json,
        "  \"gate_baseline_events_per_sec\": {baseline_eps:.1},"
    );
    let _ = writeln!(json, "  \"gate_status\": \"{gate_status}\"");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_overload.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_overload.json");
    println!("wrote {out} (pluggable vs inline {overhead:.2}x)");
}
