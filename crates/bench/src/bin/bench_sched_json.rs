//! Emit `BENCH_sched.json` — a machine-readable wall-clock comparison of
//! the event-loop configurations on a full-media Table-I run.
//!
//! ```text
//! cargo run --release -p bench --bin bench_sched_json              # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_sched_json
//! ```
//!
//! `full` is the paper's 150 E / 165-channel / 180 s-window workload with
//! per-packet G.711 media; `smoke` (the default, used by `./ci`) shrinks
//! the window and holding time so the four pairings finish in seconds.
//! The output records wall clock, events processed and events/sec per
//! configuration plus the speedup of the wheel + coalesced default over
//! the heap + per-tick reference. Runs with the same media path must
//! produce identical result digests; the emitter exits non-zero if the
//! engine options leak into the physics.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use capacity::world::MediaPath;
use des::SchedulerKind;
use loadgen::HoldingDist;
use std::fmt::Write as _;

struct ConfigResult {
    name: &'static str,
    scheduler: &'static str,
    media_path: &'static str,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    digest: u64,
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let (cfg, scenario) = match scale.as_str() {
        "full" => (
            EmpiricalConfig::table1(150.0, 2015),
            "tab1_150E_165ch_180s_full_media",
        ),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::PerPacket { encode_every: 50 };
            (c, "tab1_150E_165ch_smoke")
        }
    };

    let pairings: [(&str, SchedulerKind, MediaPath); 4] = [
        ("reference", SchedulerKind::Heap, MediaPath::PerTick),
        ("wheel_only", SchedulerKind::Wheel, MediaPath::PerTick),
        ("coalesced_only", SchedulerKind::Heap, MediaPath::Coalesced),
        ("optimized", SchedulerKind::Wheel, MediaPath::Coalesced),
    ];

    let mut results = Vec::new();
    for (name, scheduler, media_path) in pairings {
        let r = EmpiricalRunner::run_with(
            cfg.clone(),
            SimOptions {
                scheduler,
                media_path,
                ..SimOptions::default()
            },
        );
        eprintln!(
            "{name:<16} {:>8.3} s  {:>12.0} ev/s  ({} events)",
            r.wall_clock_s, r.events_per_sec, r.events_processed
        );
        results.push(ConfigResult {
            name,
            scheduler: match scheduler {
                SchedulerKind::Heap => "heap",
                SchedulerKind::Wheel => "wheel",
            },
            media_path: match media_path {
                MediaPath::PerTick => "per_tick",
                MediaPath::Coalesced => "coalesced",
            },
            wall_s: r.wall_clock_s,
            events: r.events_processed,
            events_per_sec: r.events_per_sec,
            digest: r.digest(),
        });
    }

    // Same media path ⇒ same physics, whatever the scheduler backend.
    for (a, b) in [(0, 1), (2, 3)] {
        if results[a].digest != results[b].digest {
            eprintln!(
                "FATAL: {} and {} disagree on the run digest — the \
                 scheduler backend leaked into the physics",
                results[a].name, results[b].name
            );
            std::process::exit(1);
        }
    }

    let reference_wall = results[0].wall_s;
    let optimized_wall = results[3].wall_s.max(1e-9);
    let speedup = reference_wall / optimized_wall;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"media_path\": \"{}\", \
             \"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"digest\": \"{:#018x}\"}}{comma}",
            r.name, r.scheduler, r.media_path, r.wall_s, r.events, r.events_per_sec, r.digest
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_optimized_vs_reference\": {speedup:.3}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_sched.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_sched.json");
    println!("wrote {out} (speedup {speedup:.2}x)");
}
