//! Emit `BENCH_sdp.json` — a machine-readable A/B of the signalling
//! paths on the *SDP-bearing* full-media cell (every INVITE/200 carries a
//! session description), plus an events/sec regression gate against the
//! committed signalling baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_sdp_json              # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_sdp_json
//! ```
//!
//! `full` is the paper's 150 E / 165-channel / 180 s-window workload with
//! per-packet media on — the reference path pays an eager SDP parse and
//! rebuild on every SDP-bearing hop (the `sdp_wire` phase bucket) while
//! the interned path rides structured bodies and lazy views; `smoke` (the
//! default, used by `./ci`) shrinks the window and holding time so both
//! paths finish in seconds. Both paths must produce identical result
//! digests (structured bodies serialize byte-identically to the eager
//! builder); the emitter exits non-zero if they disagree.
//!
//! The gate re-runs the signalling bench's own scenario (signalling-only
//! — but every INVITE and 200 still carries an SDP body) on the default
//! interned path and compares events/sec against the `interned` entry of
//! `BENCH_SIP_BASELINE` (default `BENCH_sip.json`): the SDP rework must
//! not slow the signalling cut-through. At `full` scale the bar is the
//! usual >10% regression; the `smoke` scenario finishes in single-digit
//! milliseconds where run-to-run jitter alone spans ±25%, so there the
//! gate only catches catastrophic (>2x) regressions and the 10% bar is
//! enforced by the full-scale run recorded in `BENCH_sdp.json`. Point the
//! env var at a same-machine, same-scale baseline — `./ci` uses the smoke
//! file it just generated.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use capacity::world::SignallingPath;
use loadgen::HoldingDist;
use std::fmt::Write as _;

struct PathResult {
    name: &'static str,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    digest: u64,
    phases: des::PhaseBreakdown,
}

fn sdp_cfg(scale: &str) -> (EmpiricalConfig, &'static str) {
    match scale {
        // Table 1's 150 E cell exactly as the experiment runs it: media
        // on, so the run carries the full SDP negotiation per call.
        "full" => (
            EmpiricalConfig::table1(150.0, 2015),
            "tab1_150E_165ch_180s_full_media",
        ),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            (c, "tab1_150E_165ch_smoke_full_media")
        }
    }
}

fn gate_cfg(scale: &str) -> EmpiricalConfig {
    // Mirror bench_sip_json's scenario exactly — signalling-only, which
    // still carries an SDP body in every INVITE and 200 — so events/sec
    // is comparable against that baseline's `interned` entry at the same
    // scale. This is the before/after of the SDP rework on the identical
    // workload.
    match scale {
        "full" => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.media = MediaMode::Off;
            c
        }
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::Off;
            c
        }
    }
}

/// Pull `"events_per_sec": <num>` out of the baseline's `"interned"`
/// path line. Hand-rolled string scan — the bench crate deliberately has
/// no JSON parser dependency, and the emitters write one entry per line.
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"name\": \"interned\""))?;
    let tail = line.split("\"events_per_sec\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn phases_json(p: &des::PhaseBreakdown) -> String {
    format!(
        "{{\"scheduler_s\": {:.6}, \"signalling_s\": {:.6}, \"media_encode_s\": {:.6}, \
         \"relay_s\": {:.6}, \"scoring_s\": {:.6}, \"sip_wire_s\": {:.6}, \
         \"sdp_wire_s\": {:.6}}}",
        p.scheduler_s,
        p.signalling_s,
        p.media_encode_s,
        p.relay_s,
        p.scoring_s,
        p.sip_wire_s,
        p.sdp_wire_s
    )
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let (cfg, scenario) = sdp_cfg(&scale);

    let paths: [(&str, SignallingPath); 2] = [
        ("reference", SignallingPath::Reference),
        ("interned", SignallingPath::Interned),
    ];
    let mut results = Vec::new();
    for (name, signalling) in paths {
        // Best-of-3: the smoke run finishes in tens of milliseconds,
        // where single-run jitter can dwarf the path delta.
        let r = (0..3)
            .map(|_| {
                EmpiricalRunner::run_with(
                    cfg.clone(),
                    SimOptions {
                        signalling,
                        ..SimOptions::default()
                    },
                )
            })
            .reduce(|best, r| {
                if r.wall_clock_s < best.wall_clock_s {
                    r
                } else {
                    best
                }
            })
            .expect("three runs");
        eprintln!(
            "{name:<12} {:>8.3} s  {:>12.0} ev/s  ({} events)",
            r.wall_clock_s, r.events_per_sec, r.events_processed
        );
        results.push(PathResult {
            name,
            wall_s: r.wall_clock_s,
            events: r.events_processed,
            events_per_sec: r.events_per_sec,
            digest: r.digest(),
            phases: r.phases,
        });
    }

    // Structured SDP bodies serialize byte-identically to the eager
    // builder, and the reference path's parse-and-rebuild round-trips to
    // the same bytes; neither path may move the physics.
    if results[0].digest != results[1].digest {
        eprintln!(
            "FATAL: reference and interned signalling paths disagree on \
             the run digest — the SDP fast path leaked into the physics"
        );
        std::process::exit(1);
    }

    let speedup = results[1].events_per_sec / results[0].events_per_sec.max(1e-9);
    eprintln!("SDP-cell speedup (interned / reference, events/sec): {speedup:.2}x");

    // Regression gate: the interned path on the signalling bench's own
    // (SDP-bearing) cell must stay within 10% of that bench's committed
    // `interned` events/sec at the same scale. Best-of-3 damps warmup and
    // allocator noise.
    let baseline_path =
        std::env::var("BENCH_SIP_BASELINE").unwrap_or_else(|_| "BENCH_sip.json".to_owned());
    let gate = gate_cfg(&scale);
    let gate_eps = (0..3)
        .map(|_| EmpiricalRunner::run_with(gate.clone(), SimOptions::default()).events_per_sec)
        .fold(0.0_f64, f64::max);
    let mut gate_status = "no_baseline".to_owned();
    let mut baseline_eps = 0.0;
    match std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec)
    {
        // An instrumented build pays two clock reads per event; comparing
        // it against an uninstrumented baseline would always trip the gate.
        Some(_) if cfg!(feature = "phase-timing") => {
            gate_status = "skipped_phase_timing".to_owned();
            eprintln!("throughput gate skipped: phase-timing instrumentation is enabled");
        }
        Some(base) => {
            baseline_eps = base;
            let ratio = gate_eps / base.max(1e-9);
            // Smoke runs are noise-dominated (see module docs): only a
            // catastrophic regression is meaningful there.
            let floor = if scale == "full" { 0.9 } else { 0.5 };
            eprintln!(
                "throughput gate: {gate_eps:.0} ev/s vs baseline {base:.0} ev/s \
                 ({ratio:.2}x, floor {floor}, {baseline_path})"
            );
            if ratio < floor {
                eprintln!("FATAL: events/sec regressed below {floor}x of {baseline_path}");
                std::process::exit(1);
            }
            gate_status = format!("ok_{ratio:.3}x");
        }
        None => {
            eprintln!("throughput gate skipped: no parsable baseline at {baseline_path}");
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"paths\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let phases = if r.phases.enabled {
            format!(", \"phases\": {}", phases_json(&r.phases))
        } else {
            String::new()
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"digest\": \"{:#018x}\"{phases}}}{comma}",
            r.name, r.wall_s, r.events, r.events_per_sec, r.digest
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_interned_vs_reference\": {speedup:.3},");
    let _ = writeln!(json, "  \"gate_scenario_events_per_sec\": {gate_eps:.1},");
    let _ = writeln!(
        json,
        "  \"gate_baseline_events_per_sec\": {baseline_eps:.1},"
    );
    let _ = writeln!(json, "  \"gate_status\": \"{gate_status}\"");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_sdp.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_sdp.json");
    println!("wrote {out} (SDP-cell speedup {speedup:.2}x)");
}
