//! Emit `BENCH_sweep.json` — the campaign-scale sweep executor cell:
//! cold-vs-shared precompute setup cost, sweep throughput at 1/2/4/8
//! budgeted workers against the sequential reference (bit-identical
//! per-run digests AND per-cell aggregates required), and an events/sec
//! regression gate against the committed population-scale baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_sweep_json              # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_sweep_json
//! ```
//!
//! Three measurements:
//!
//! 1. **Setup cost** — building the per-run immutable inputs cold
//!    (Erlang-B [`BlockingCurve`], the 1000-subscriber directory) versus
//!    cloning them out of the process-wide shared memos
//!    ([`shared_curve`], [`Directory::shared_subscribers`]). The sweep
//!    executor leans on the shared path for every `(cell, replication)`
//!    task, so the shared cost must be measurably below cold — the
//!    emitter exits non-zero if it is not.
//! 2. **Sweep rows** — a Fig. 6-shaped (cell × replication) grid run
//!    through the sequential reference and through the work-stealing
//!    executor at 1/2/4/8 pool workers. Every row must reproduce the
//!    reference bit for bit: per-run digests and per-cell mean/CI
//!    aggregates are compared exactly and any divergence is fatal.
//!    Speedups are recorded but never gated — the curve is only
//!    meaningful on a multi-core host (`host_cores` is recorded so a
//!    single-core CI run reads as oversubscription, not a regression).
//! 3. **Regression gate** — re-runs the scale bench's gate scenario and
//!    compares events/sec against the `gate_scenario_events_per_sec`
//!    entry of `BENCH_SCALE_BASELINE` (default `BENCH_scale.json`): the
//!    executor plumbing must not slow the single-run fast path. Full
//!    runs gate at >10% regression; smoke runs are jitter-dominated so
//!    only a catastrophic (>2x) regression trips there.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, SimOptions};
use capacity::sweep::{mean_ci, run_sweep, run_sweep_reference, SweepTask};
use loadgen::HoldingDist;
use pbx_sim::Directory;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use teletraffic::erlang_b::{shared_curve, BlockingCurve};
use teletraffic::Erlangs;

struct SweepRow {
    name: String,
    workers: usize,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
}

/// One Fig. 6-shaped sweep cell: signalling-only Table-I load, window
/// shrunk so smoke rows finish in milliseconds.
fn cell_cfg(a: f64, seed: u64, scale: &str) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::signalling_only(a, seed);
    cfg.placement_window_s = if scale == "full" { 60.0 } else { 6.0 };
    cfg
}

fn grid(scale: &str) -> (Vec<f64>, u64, &'static str) {
    match scale {
        "full" => (
            (0..7).map(|i| 140.0 + 20.0 * f64::from(i)).collect(),
            4,
            "fig6_7x4_signalling_60s",
        ),
        _ => (vec![140.0, 200.0, 260.0], 2, "fig6_3x2_signalling_6s"),
    }
}

/// Mirror `bench_scale_json`'s gate scenario exactly so events/sec is
/// comparable against its `gate_scenario_events_per_sec` at the same
/// scale.
fn gate_cfg(scale: &str) -> EmpiricalConfig {
    match scale {
        "full" => EmpiricalConfig::table1(150.0, 2015),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c
        }
    }
}

/// Pull `"gate_scenario_events_per_sec": <num>` out of the baseline
/// (same hand-rolled scan as the other emitters — the bench crate has no
/// JSON parser dependency).
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let line = json.lines().find(|l| {
        l.trim_start()
            .starts_with("\"gate_scenario_events_per_sec\"")
    })?;
    let tail = line.split(':').nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let setup_iters: u32 = if scale == "full" { 200 } else { 50 };

    // --- 1. Cold vs shared precompute setup cost -----------------------
    // Warm the memos first so the shared loop measures steady-state cost
    // (the sweep pays the cold fill exactly once per process).
    let _ = shared_curve(Erlangs(150.0), 170);
    let _ = Directory::shared_subscribers(1000, 1000);
    let g711_checksum = rtpcore::g711::warm();

    let t = Instant::now();
    for _ in 0..setup_iters {
        let _ = black_box(BlockingCurve::new(Erlangs(150.0), 170));
        black_box(Directory::with_subscribers(1000, 1000));
    }
    let cold_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    for _ in 0..setup_iters {
        black_box(shared_curve(Erlangs(150.0), 170));
        black_box(Directory::shared_subscribers(1000, 1000));
    }
    let shared_s = t.elapsed().as_secs_f64();
    let setup_ratio = cold_s / shared_s.max(1e-12);
    eprintln!(
        "setup x{setup_iters}: cold {cold_s:.6} s vs shared {shared_s:.6} s \
         ({setup_ratio:.1}x cheaper; g711 checksum {g711_checksum:#x})"
    );
    if shared_s >= cold_s {
        eprintln!(
            "FATAL: shared precompute ({shared_s:.6} s) is not cheaper than \
             cold construction ({cold_s:.6} s) — the memo path regressed"
        );
        std::process::exit(1);
    }

    // --- 2. Sweep rows: reference vs executor at 1/2/4/8 workers -------
    let (loads, reps, scenario) = grid(&scale);
    let tasks: Vec<SweepTask> = (0..loads.len())
        .flat_map(|cell| (0..reps).map(move |rep| SweepTask { cell, rep, cost: 1 }))
        .collect();
    let work = |t: SweepTask| {
        let cfg = cell_cfg(loads[t.cell], des::stream_seed(2015, t.rep), &scale);
        let r = EmpiricalRunner::run(cfg);
        (r.digest(), r.observed_pb, r.events_processed)
    };
    let aggregate = |runs: &[(u64, f64, u64)]| -> Vec<(u64, u64)> {
        runs.chunks(reps as usize)
            .map(|chunk| {
                let samples: Vec<f64> = chunk.iter().map(|&(_, pb, _)| pb).collect();
                let (mean, hw) = mean_ci(&samples);
                (mean.to_bits(), hw.to_bits())
            })
            .collect()
    };

    // Untimed warmup absorbs cold-start costs (lazy statics, page
    // faults, allocator pools) before the reference row is clocked.
    let _ = run_sweep_reference(&tasks, work);

    let t = Instant::now();
    let reference = run_sweep_reference(&tasks, work);
    let ref_wall = t.elapsed().as_secs_f64();
    let ref_events: u64 = reference.iter().map(|&(_, _, ev)| ev).sum();
    let ref_agg = aggregate(&reference);
    let mut rows = vec![SweepRow {
        name: "reference".to_owned(),
        workers: 0,
        wall_s: ref_wall,
        events: ref_events,
        events_per_sec: ref_events as f64 / ref_wall.max(1e-9),
    }];
    eprintln!(
        "{:<12} {:>8.3} s  {:>12.0} ev/s  ({} runs, {} events)",
        "reference",
        ref_wall,
        rows[0].events_per_sec,
        reference.len(),
        ref_events
    );

    for workers in [1usize, 2, 4, 8] {
        des::pool::configure(workers);
        // Best-of-2 on wall clock: results are deterministic, so only
        // the clock varies between repeats.
        let mut best_wall = f64::INFINITY;
        let mut results = Vec::new();
        for _ in 0..2 {
            let t = Instant::now();
            let r = run_sweep(&tasks, work);
            best_wall = best_wall.min(t.elapsed().as_secs_f64());
            results = r;
        }
        if results != reference {
            eprintln!(
                "FATAL: sweep at {workers} workers diverged from the sequential \
                 reference — the executor leaked into the physics"
            );
            std::process::exit(1);
        }
        if aggregate(&results) != ref_agg {
            eprintln!(
                "FATAL: per-cell mean/CI aggregates at {workers} workers differ \
                 from the sequential reference"
            );
            std::process::exit(1);
        }
        let eps = ref_events as f64 / best_wall.max(1e-9);
        eprintln!(
            "{:<12} {:>8.3} s  {:>12.0} ev/s",
            format!("sweep_{workers}w"),
            best_wall,
            eps
        );
        rows.push(SweepRow {
            name: format!("sweep_{workers}w"),
            workers,
            wall_s: best_wall,
            events: ref_events,
            events_per_sec: eps,
        });
    }
    let one_w = rows[1].wall_s.max(1e-9);
    let speedup_4w = one_w / rows[3].wall_s.max(1e-9);
    let speedup_8w = one_w / rows[4].wall_s.max(1e-9);
    eprintln!(
        "sweep scaling vs 1 worker: 4w {speedup_4w:.2}x, 8w {speedup_8w:.2}x \
         ({host_cores} host cores; informational only)"
    );

    // --- 3. Regression gate vs the population-scale baseline -----------
    let baseline_path =
        std::env::var("BENCH_SCALE_BASELINE").unwrap_or_else(|_| "BENCH_scale.json".to_owned());
    let gate = gate_cfg(&scale);
    let gate_eps = (0..3)
        .map(|_| EmpiricalRunner::run_with(gate.clone(), SimOptions::default()).events_per_sec)
        .fold(0.0_f64, f64::max);
    let mut gate_status = "no_baseline".to_owned();
    let mut baseline_eps = 0.0;
    match std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec)
    {
        // An instrumented build pays two clock reads per event; comparing
        // it against an uninstrumented baseline would always trip the gate.
        Some(_) if cfg!(feature = "phase-timing") => {
            gate_status = "skipped_phase_timing".to_owned();
            eprintln!("throughput gate skipped: phase-timing instrumentation is enabled");
        }
        Some(base) => {
            baseline_eps = base;
            let ratio = gate_eps / base.max(1e-9);
            // Smoke runs are noise-dominated (see module docs): only a
            // catastrophic regression is meaningful there.
            let floor = if scale == "full" { 0.9 } else { 0.5 };
            eprintln!(
                "throughput gate: {gate_eps:.0} ev/s vs baseline {base:.0} ev/s \
                 ({ratio:.2}x, floor {floor}, {baseline_path})"
            );
            if ratio < floor {
                eprintln!("FATAL: events/sec regressed below {floor}x of {baseline_path}");
                std::process::exit(1);
            }
            gate_status = format!("ok_{ratio:.3}x");
        }
        None => {
            eprintln!("throughput gate skipped: no parsable baseline at {baseline_path}");
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"setup\": {{");
    let _ = writeln!(json, "    \"iters\": {setup_iters},");
    let _ = writeln!(json, "    \"cold_s\": {cold_s:.6},");
    let _ = writeln!(json, "    \"shared_s\": {shared_s:.6},");
    let _ = writeln!(json, "    \"cold_over_shared\": {setup_ratio:.1},");
    let _ = writeln!(json, "    \"g711_warm_checksum\": \"{g711_checksum:#x}\"");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"workers\": {}, \"wall_s\": {:.6}, \
             \"events\": {}, \"events_per_sec\": {:.1}}}{comma}",
            r.name, r.workers, r.wall_s, r.events, r.events_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"digests_identical\": true,");
    let _ = writeln!(json, "  \"aggregates_identical\": true,");
    let _ = writeln!(json, "  \"speedup_4w_vs_1w\": {speedup_4w:.3},");
    let _ = writeln!(json, "  \"speedup_8w_vs_1w\": {speedup_8w:.3},");
    let _ = writeln!(json, "  \"gate_scenario_events_per_sec\": {gate_eps:.1},");
    let _ = writeln!(
        json,
        "  \"gate_baseline_events_per_sec\": {baseline_eps:.1},"
    );
    let _ = writeln!(json, "  \"gate_status\": \"{gate_status}\"");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    println!(
        "wrote {out} (shared setup {setup_ratio:.1}x cheaper than cold, \
         digests and aggregates identical at 1/2/4/8 workers)"
    );
}
