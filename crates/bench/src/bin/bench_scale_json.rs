//! Emit `BENCH_scale.json` — the population-scale workload cell: an A/B
//! of the aggregated finite-source arrival engine against the per-user
//! -timer reference at small N (bit-identical digests required), the
//! headline million-subscriber busy-hour cell, and an events/sec
//! regression gate against the committed SDP-cell baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_scale_json              # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_scale_json
//! ```
//!
//! Three measurements:
//!
//! 1. **Engine A/B** — the same small-N population cell run twice, once
//!    with the aggregated Engset sampler (one pending arrival event,
//!    O(active) state) and once with the O(N)-per-arrival per-user-timer
//!    reference. The coupling construction makes them draw-for-draw
//!    identical, so the run digests must match bit-for-bit; the emitter
//!    exits non-zero if they disagree. N stays small here because the
//!    reference realizes every idle clock on every arrival.
//! 2. **Scale cell** — the aggregated engine at population scale
//!    (N = 10^6 at `full`, 2×10^4 at `smoke`) under the compressed
//!    diurnal profile with expiry-wheel registration churn. Recorded as
//!    the headline `scale_cell` block: events/sec, SIP load, observed
//!    vs Engset blocking.
//! 3. **Regression gate** — re-runs the SDP bench's own scenario on the
//!    default path and compares events/sec against the `interned` entry
//!    of `BENCH_SDP_BASELINE` (default `BENCH_sdp.json`): the population
//!    plumbing threaded through the world must not slow the classic
//!    signalling cut-through. At `full` scale the bar is the usual >10%
//!    regression; `smoke` runs are jitter-dominated so only a
//!    catastrophic (>2x) regression trips there — point the env var at a
//!    same-machine, same-scale baseline (`./ci` uses the smoke file it
//!    just generated).

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use loadgen::HoldingDist;
use std::fmt::Write as _;

struct EngineResult {
    name: &'static str,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    digest: u64,
}

/// Small-N population cell where the O(N)-per-arrival reference engine
/// is still affordable. Both engines consume the identical shared-RNG
/// draw sequence, so everything downstream must match exactly.
fn ab_cfg(scale: &str) -> (EmpiricalConfig, &'static str) {
    let (subs, window, scenario) = match scale {
        "full" => (2_000_u64, 60.0, "pop_2000N_4E_60s_ab"),
        _ => (500_u64, 20.0, "pop_500N_4E_20s_ab"),
    };
    let mut cfg = EmpiricalConfig::smoke(2015);
    cfg.media = MediaMode::Off;
    cfg.placement_window_s = window;
    let mut pop =
        loadgen::PopulationConfig::for_offered_load(subs, cfg.erlangs, cfg.holding.mean());
    pop.reg_expiry_s = 30.0;
    pop.churn_buckets = 8;
    cfg.population = Some(pop);
    (cfg, scenario)
}

/// The headline population-scale cell — same shapes `capacity-cli scale`
/// runs: the full cell is the 10^6-subscriber busy-hour diurnal ramp,
/// the smoke cell compresses to 2×10^4 subscribers over 30 s.
fn scale_cfg(scale: &str) -> (EmpiricalConfig, u64, f64) {
    match scale {
        "full" => {
            let (subs, erlangs) = (1_000_000_u64, 150.0);
            (
                EmpiricalConfig::population_scale(subs, erlangs, 2015),
                subs,
                erlangs,
            )
        }
        _ => {
            let (subs, erlangs) = (20_000_u64, 20.0);
            let mut cfg = EmpiricalConfig::population_scale(subs, erlangs, 2015);
            cfg.holding = HoldingDist::Fixed(10.0);
            cfg.placement_window_s = 30.0;
            cfg.channels = 24;
            let pop = cfg.population.as_mut().expect("population cell");
            *pop = loadgen::PopulationConfig::for_offered_load(subs, erlangs, 10.0);
            pop.profile = loadgen::DiurnalProfile::campus_day_compressed(30.0);
            pop.reg_expiry_s = 60.0;
            pop.churn_buckets = 16;
            (cfg, subs, erlangs)
        }
    }
}

/// Mirror the SDP bench's own A/B scenario (the cell its `interned` row
/// measures) so events/sec is comparable against that baseline at the
/// same scale: this is the before/after of the population-engine rework
/// on the identical classic workload.
fn gate_cfg(scale: &str) -> EmpiricalConfig {
    match scale {
        "full" => EmpiricalConfig::table1(150.0, 2015),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c
        }
    }
}

/// Pull `"events_per_sec": <num>` out of the baseline's `"interned"`
/// path line. Hand-rolled string scan — the bench crate deliberately has
/// no JSON parser dependency, and the emitters write one entry per line.
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"name\": \"interned\""))?;
    let tail = line.split("\"events_per_sec\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let (ab, ab_scenario) = ab_cfg(&scale);

    // One untimed warmup absorbs cold-start costs (lazy statics, page
    // faults, allocator pools) that would otherwise tax whichever engine
    // happens to run first.
    let _ = EmpiricalRunner::run_with(ab.clone(), SimOptions::default());

    let mut results = Vec::new();
    for name in ["aggregated", "reference"] {
        let mut cfg = ab.clone();
        cfg.population.as_mut().expect("population cell").reference = name == "reference";
        // Best-of-3: the smoke cells finish in milliseconds, where
        // single-run jitter can dwarf the engine delta.
        let r = (0..3)
            .map(|_| EmpiricalRunner::run_with(cfg.clone(), SimOptions::default()))
            .reduce(|best, r| {
                if r.wall_clock_s < best.wall_clock_s {
                    r
                } else {
                    best
                }
            })
            .expect("three runs");
        eprintln!(
            "{name:<12} {:>8.3} s  {:>12.0} ev/s  ({} events)",
            r.wall_clock_s, r.events_per_sec, r.events_processed
        );
        results.push(EngineResult {
            name,
            wall_s: r.wall_clock_s,
            events: r.events_processed,
            events_per_sec: r.events_per_sec,
            digest: r.digest(),
        });
    }

    // The coupling construction hands both engines the same thinned gap
    // and winner-ordinal draws; any divergence means the aggregated fast
    // path changed the physics.
    if results[0].digest != results[1].digest {
        eprintln!(
            "FATAL: aggregated and per-user-timer population engines disagree \
             on the run digest — the O(active) fast path leaked into the physics"
        );
        std::process::exit(1);
    }
    let speedup = results[0].events_per_sec / results[1].events_per_sec.max(1e-9);
    eprintln!("engine speedup (aggregated / reference, events/sec): {speedup:.2}x");

    // Headline cell: the aggregated engine at population scale.
    let (cell_cfg, subs, erlangs) = scale_cfg(&scale);
    let cell = (0..3)
        .map(|_| EmpiricalRunner::run(cell_cfg.clone()))
        .reduce(|best, r| {
            if r.wall_clock_s < best.wall_clock_s {
                r
            } else {
                best
            }
        })
        .expect("three runs");
    let engset_pb = teletraffic::engset::engset_blocking_for_load_large(
        subs,
        cell_cfg.channels,
        teletraffic::Erlangs(erlangs),
    )
    .unwrap_or(f64::NAN);
    let churn_rate = subs as f64
        / cell_cfg
            .population
            .as_ref()
            .map_or(f64::INFINITY, |p| p.reg_expiry_s);
    eprintln!(
        "scale cell   {:>8.3} s  {:>12.0} ev/s  (N = {subs}, {} events, {} SIP msgs, \
         Pb {:.4} vs Engset {:.4})",
        cell.wall_clock_s,
        cell.events_per_sec,
        cell.events_processed,
        cell.monitor.sip_total,
        cell.observed_pb,
        engset_pb
    );

    // Regression gate: the classic SDP cell (no population) must stay
    // within 10% of the committed baseline's `interned` events/sec at
    // the same scale. Best-of-3 damps warmup and allocator noise.
    let baseline_path =
        std::env::var("BENCH_SDP_BASELINE").unwrap_or_else(|_| "BENCH_sdp.json".to_owned());
    let gate = gate_cfg(&scale);
    let gate_eps = (0..3)
        .map(|_| EmpiricalRunner::run_with(gate.clone(), SimOptions::default()).events_per_sec)
        .fold(0.0_f64, f64::max);
    let mut gate_status = "no_baseline".to_owned();
    let mut baseline_eps = 0.0;
    match std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec)
    {
        // An instrumented build pays two clock reads per event; comparing
        // it against an uninstrumented baseline would always trip the gate.
        Some(_) if cfg!(feature = "phase-timing") => {
            gate_status = "skipped_phase_timing".to_owned();
            eprintln!("throughput gate skipped: phase-timing instrumentation is enabled");
        }
        Some(base) => {
            baseline_eps = base;
            let ratio = gate_eps / base.max(1e-9);
            // Smoke runs are noise-dominated (see module docs): only a
            // catastrophic regression is meaningful there.
            let floor = if scale == "full" { 0.9 } else { 0.5 };
            eprintln!(
                "throughput gate: {gate_eps:.0} ev/s vs baseline {base:.0} ev/s \
                 ({ratio:.2}x, floor {floor}, {baseline_path})"
            );
            if ratio < floor {
                eprintln!("FATAL: events/sec regressed below {floor}x of {baseline_path}");
                std::process::exit(1);
            }
            gate_status = format!("ok_{ratio:.3}x");
        }
        None => {
            eprintln!("throughput gate skipped: no parsable baseline at {baseline_path}");
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{ab_scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"engines\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"digest\": \"{:#018x}\"}}{comma}",
            r.name, r.wall_s, r.events, r.events_per_sec, r.digest
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_aggregated_vs_reference\": {speedup:.3},");
    let _ = writeln!(json, "  \"scale_cell\": {{");
    let _ = writeln!(json, "    \"subscribers\": {subs},");
    let _ = writeln!(json, "    \"peak_erlangs\": {erlangs:.1},");
    let _ = writeln!(json, "    \"wall_s\": {:.6},", cell.wall_clock_s);
    let _ = writeln!(json, "    \"events\": {},", cell.events_processed);
    let _ = writeln!(json, "    \"events_per_sec\": {:.1},", cell.events_per_sec);
    let _ = writeln!(json, "    \"sip_messages\": {},", cell.monitor.sip_total);
    let _ = writeln!(json, "    \"attempted\": {},", cell.attempted);
    let _ = writeln!(json, "    \"completed\": {},", cell.completed);
    let _ = writeln!(json, "    \"blocked\": {},", cell.blocked);
    let _ = writeln!(json, "    \"observed_pb\": {:.6},", cell.observed_pb);
    let _ = writeln!(json, "    \"engset_pb\": {engset_pb:.6},");
    let _ = writeln!(json, "    \"churn_reregisters_per_sec\": {churn_rate:.1},");
    let _ = writeln!(json, "    \"digest\": \"{:#018x}\"", cell.digest());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gate_scenario_events_per_sec\": {gate_eps:.1},");
    let _ = writeln!(
        json,
        "  \"gate_baseline_events_per_sec\": {baseline_eps:.1},"
    );
    let _ = writeln!(json, "  \"gate_status\": \"{gate_status}\"");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_scale.json");
    println!("wrote {out} (aggregated-engine speedup {speedup:.2}x at small N)");
}
