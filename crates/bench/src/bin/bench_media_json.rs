//! Emit `BENCH_media.json` — a machine-readable A/B of the media compute
//! kernels (scalar reference vs batched LUT/phasor) on an every-frame
//! G.711 workload, plus an events/sec regression gate against the
//! committed scheduler baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_media_json              # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_media_json
//! ```
//!
//! `full` is the paper's 150 E / 165-channel / 180 s-window workload with
//! `encode_every: 1` — every 20 ms frame of every stream is synthesised
//! and companded, so the media kernels dominate the wall clock; `smoke`
//! (the default, used by `./ci`) shrinks the window and holding time so
//! both kernels finish in seconds. Both kernels must produce identical
//! result digests (payload bytes never enter the physics); the emitter
//! exits non-zero if they disagree.
//!
//! The gate scenario re-runs the scheduler bench's `encode_every: 50`
//! workload at the same scale and compares events/sec against the
//! `optimized` entry of `BENCH_SCHED_BASELINE` (default
//! `BENCH_sched.json`), failing on a >10% regression. Point the env var
//! at a same-machine, same-scale baseline — `./ci` uses the smoke file it
//! just generated.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use capacity::world::MediaKernel;
use loadgen::HoldingDist;
use std::fmt::Write as _;

struct KernelResult {
    name: &'static str,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    digest: u64,
    phases: des::PhaseBreakdown,
}

fn media_cfg(scale: &str) -> (EmpiricalConfig, &'static str) {
    match scale {
        "full" => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.media = MediaMode::PerPacket { encode_every: 1 };
            (c, "tab1_150E_165ch_180s_encode_every_frame")
        }
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::PerPacket { encode_every: 1 };
            (c, "tab1_150E_165ch_smoke_encode_every_frame")
        }
    }
}

fn gate_cfg(scale: &str) -> EmpiricalConfig {
    // Mirror bench_sched_json's scenario exactly so events/sec is
    // comparable against its baseline file at the same scale.
    match scale {
        "full" => EmpiricalConfig::table1(150.0, 2015),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::PerPacket { encode_every: 50 };
            c
        }
    }
}

/// Pull `"events_per_sec": <num>` out of the baseline's `"optimized"`
/// config line. Hand-rolled string scan — the bench crate deliberately
/// has no JSON parser dependency, and the emitters write one config per
/// line.
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"name\": \"optimized\""))?;
    let tail = line.split("\"events_per_sec\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn phases_json(p: &des::PhaseBreakdown) -> String {
    format!(
        "{{\"scheduler_s\": {:.6}, \"signalling_s\": {:.6}, \"media_encode_s\": {:.6}, \
         \"relay_s\": {:.6}, \"scoring_s\": {:.6}, \"sip_wire_s\": {:.6}, \
         \"sdp_wire_s\": {:.6}}}",
        p.scheduler_s,
        p.signalling_s,
        p.media_encode_s,
        p.relay_s,
        p.scoring_s,
        p.sip_wire_s,
        p.sdp_wire_s
    )
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let (cfg, scenario) = media_cfg(&scale);

    let kernels: [(&str, MediaKernel); 2] = [
        ("reference", MediaKernel::Reference),
        ("batched", MediaKernel::Batched),
    ];
    let mut results = Vec::new();
    for (name, media_kernel) in kernels {
        let r = EmpiricalRunner::run_with(
            cfg.clone(),
            SimOptions {
                media_kernel,
                ..SimOptions::default()
            },
        );
        eprintln!(
            "{name:<12} {:>8.3} s  {:>12.0} ev/s  ({} events)",
            r.wall_clock_s, r.events_per_sec, r.events_processed
        );
        results.push(KernelResult {
            name,
            wall_s: r.wall_clock_s,
            events: r.events_processed,
            events_per_sec: r.events_per_sec,
            digest: r.digest(),
            phases: r.phases,
        });
    }

    // The kernel only changes payload bytes, which never reach the scored
    // physics: both runs must agree exactly.
    if results[0].digest != results[1].digest {
        eprintln!(
            "FATAL: reference and batched kernels disagree on the run \
             digest — the media kernel leaked into the physics"
        );
        std::process::exit(1);
    }

    let speedup = results[0].wall_s / results[1].wall_s.max(1e-9);
    eprintln!("kernel speedup (reference / batched): {speedup:.2}x");

    // Regression gate: the default engine on the scheduler bench's
    // workload must stay within 10% of the committed baseline's
    // events/sec. Best-of-3 damps warmup and allocator noise — the smoke
    // workload finishes in tens of milliseconds, where single-run jitter
    // alone can exceed the 10% budget.
    let baseline_path =
        std::env::var("BENCH_SCHED_BASELINE").unwrap_or_else(|_| "BENCH_sched.json".to_owned());
    let gate = gate_cfg(&scale);
    let gate_eps = (0..3)
        .map(|_| EmpiricalRunner::run_with(gate.clone(), SimOptions::default()).events_per_sec)
        .fold(0.0_f64, f64::max);
    let mut gate_status = "no_baseline".to_owned();
    let mut baseline_eps = 0.0;
    match std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec)
    {
        // An instrumented build pays two clock reads per event; comparing
        // it against an uninstrumented baseline would always trip the gate.
        Some(_) if cfg!(feature = "phase-timing") => {
            gate_status = "skipped_phase_timing".to_owned();
            eprintln!("throughput gate skipped: phase-timing instrumentation is enabled");
        }
        Some(base) => {
            baseline_eps = base;
            let ratio = gate_eps / base.max(1e-9);
            eprintln!(
                "throughput gate: {gate_eps:.0} ev/s vs baseline {base:.0} ev/s \
                 ({ratio:.2}x, {baseline_path})"
            );
            if ratio < 0.9 {
                eprintln!("FATAL: events/sec regressed more than 10% vs {baseline_path}");
                std::process::exit(1);
            }
            gate_status = format!("ok_{ratio:.3}x");
        }
        None => {
            eprintln!("throughput gate skipped: no parsable baseline at {baseline_path}");
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let phases = if r.phases.enabled {
            format!(", \"phases\": {}", phases_json(&r.phases))
        } else {
            String::new()
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"digest\": \"{:#018x}\"{phases}}}{comma}",
            r.name, r.wall_s, r.events, r.events_per_sec, r.digest
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_batched_vs_reference\": {speedup:.3},");
    let _ = writeln!(json, "  \"gate_scenario_events_per_sec\": {gate_eps:.1},");
    let _ = writeln!(
        json,
        "  \"gate_baseline_events_per_sec\": {baseline_eps:.1},"
    );
    let _ = writeln!(json, "  \"gate_status\": \"{gate_status}\"");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_media.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_media.json");
    println!("wrote {out} (kernel speedup {speedup:.2}x)");
}
