//! Emit `BENCH_parallel.json` — strong scaling of the within-run sharded
//! engine over an 8-PBX full-media farm, plus the suite's standard >10%
//! regression gate against the committed scheduler baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_parallel_json              # smoke
//! BENCH_SCALE=full cargo run --release -p bench --bin bench_parallel_json
//! ```
//!
//! The workload is the Table-I 150 E cell split across 8 single-server
//! shards (one PBX, UAC/UAS pair and monitor each) with per-packet
//! G.711 media. Rows: the sequential global-interleave reference plus
//! the windowed parallel executor at 1/2/4/8 worker threads. All five
//! rows run the identical partitioned model, so their run digests MUST
//! be bit-identical — any divergence is a determinism bug and the
//! emitter exits non-zero. Speedups are recorded but never gated: the
//! measured curve is only meaningful on a multi-core host (the pool
//! clamps workers to what the machine actually grants, reported per
//! row). Rows requesting more threads than the host has cores are
//! flagged `oversubscribed` and their headline speedup is accompanied
//! by an efficiency figure derated to the grantable core count.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use capacity::shard::{run_partitioned, ExecMode};
use loadgen::HoldingDist;
use std::fmt::Write as _;

struct ModeResult {
    name: String,
    threads: u32,
    workers: u64,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    sync_barrier_s: f64,
    digest: u64,
}

fn farm_cfg(scale: &str) -> (EmpiricalConfig, &'static str) {
    match scale {
        "full" => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.servers = 8;
            (c, "tab1_150E_165ch_180s_full_media_8pbx")
        }
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.servers = 8;
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::PerPacket { encode_every: 50 };
            (c, "tab1_150E_165ch_smoke_8pbx")
        }
    }
}

fn gate_cfg(scale: &str) -> EmpiricalConfig {
    // Mirror bench_sched_json's scenario exactly so events/sec is
    // comparable against its baseline file at the same scale.
    match scale {
        "full" => EmpiricalConfig::table1(150.0, 2015),
        _ => {
            let mut c = EmpiricalConfig::table1(150.0, 2015);
            c.placement_window_s = 5.0;
            c.holding = HoldingDist::Fixed(4.0);
            c.media = MediaMode::PerPacket { encode_every: 50 };
            c
        }
    }
}

/// Pull `"events_per_sec": <num>` out of the baseline's `"optimized"`
/// config line (same hand-rolled scan as the other emitters — the bench
/// crate has no JSON parser dependency).
fn baseline_events_per_sec(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"name\": \"optimized\""))?;
    let tail = line.split("\"events_per_sec\":").nth(1)?;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let scale = std::env::var("BENCH_SCALE").unwrap_or_else(|_| "smoke".to_owned());
    let (cfg, scenario) = farm_cfg(&scale);

    // Size the pool once for the widest row; the per-run permit reports
    // how many workers the machine actually granted.
    des::pool::configure(8);
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);

    let modes: Vec<(String, ExecMode)> =
        std::iter::once(("sequential".to_owned(), ExecMode::Sequential))
            .chain(
                [1u32, 2, 4, 8]
                    .into_iter()
                    .map(|t| (format!("sharded_{t}t"), ExecMode::Sharded { threads: t })),
            )
            .collect();

    let mut results = Vec::new();
    for (name, mode) in &modes {
        // Best-of-3 on wall clock: the smoke farm finishes in well under
        // a second per row, where scheduler jitter dwarfs the real cost.
        let r = (0..3)
            .map(|_| run_partitioned(cfg.clone(), SimOptions::default(), *mode))
            .reduce(|best, r| {
                if r.wall_clock_s < best.wall_clock_s {
                    r
                } else {
                    best
                }
            })
            .expect("three runs");
        eprintln!(
            "{name:<14} {:>8.3} s  {:>12.0} ev/s  ({} events, barrier {:.3} s)",
            r.wall_clock_s, r.events_per_sec, r.events_processed, r.phases.sync_barrier_s
        );
        results.push(ModeResult {
            name: name.clone(),
            threads: match mode {
                ExecMode::Sequential => 0,
                ExecMode::Sharded { threads } => *threads,
            },
            workers: match mode {
                ExecMode::Sequential => 1,
                ExecMode::Sharded { threads } => u64::from((*threads).max(1)).min(8),
            },
            wall_s: r.wall_clock_s,
            events: r.events_processed,
            events_per_sec: r.events_per_sec,
            sync_barrier_s: r.phases.sync_barrier_s,
            digest: r.digest(),
        });
    }

    // Every row executes the same partitioned model; the executor and
    // thread count must be invisible to the physics.
    let reference_digest = results[0].digest;
    for r in &results[1..] {
        if r.digest != reference_digest {
            eprintln!(
                "FATAL: {} digest {:#018x} != sequential digest {:#018x} — \
                 the parallel executor leaked into the physics",
                r.name, r.digest, reference_digest
            );
            std::process::exit(1);
        }
    }

    let one_t = results[1].wall_s.max(1e-9);
    let speedup_4t = one_t / results[3].wall_s.max(1e-9);
    let speedup_8t = one_t / results[4].wall_s.max(1e-9);
    // A row asking for more workers than the host has cores measures
    // oversubscription, not strong scaling: its speedup is reported but
    // flagged, and the ideal-bound comparison is derated to the cores
    // the machine could actually grant.
    let oversub = |threads: u32| threads > 0 && threads as usize > host_cores;
    let effective = |threads: u32| (threads as usize).min(host_cores).max(1);
    for (suffix, threads, speedup) in [("4t", 4u32, speedup_4t), ("8t", 8u32, speedup_8t)] {
        if oversub(threads) {
            eprintln!(
                "note: {suffix} row is oversubscribed ({threads} workers on {host_cores} \
                 cores) — speedup {speedup:.2}x judged against an ideal of {}x, not {threads}x",
                effective(threads)
            );
        }
    }
    eprintln!(
        "strong scaling vs 1 thread: 4t {speedup_4t:.2}x, 8t {speedup_8t:.2}x \
         ({host_cores} host cores)"
    );

    // Regression gate: the classic single-wheel engine on the scheduler
    // bench's workload must stay within 10% of the committed baseline.
    let baseline_path =
        std::env::var("BENCH_SCHED_BASELINE").unwrap_or_else(|_| "BENCH_sched.json".to_owned());
    let gate = gate_cfg(&scale);
    let gate_eps = (0..3)
        .map(|_| EmpiricalRunner::run_with(gate.clone(), SimOptions::default()).events_per_sec)
        .fold(0.0_f64, f64::max);
    let mut gate_status = "no_baseline".to_owned();
    let mut baseline_eps = 0.0;
    match std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_events_per_sec)
    {
        // An instrumented build pays two clock reads per event; comparing
        // it against an uninstrumented baseline would always trip the gate.
        Some(_) if cfg!(feature = "phase-timing") => {
            gate_status = "skipped_phase_timing".to_owned();
            eprintln!("throughput gate skipped: phase-timing instrumentation is enabled");
        }
        Some(base) => {
            baseline_eps = base;
            let ratio = gate_eps / base.max(1e-9);
            eprintln!(
                "throughput gate: {gate_eps:.0} ev/s vs baseline {base:.0} ev/s \
                 ({ratio:.2}x, {baseline_path})"
            );
            if ratio < 0.9 {
                eprintln!("FATAL: events/sec regressed more than 10% vs {baseline_path}");
                std::process::exit(1);
            }
            gate_status = format!("ok_{ratio:.3}x");
        }
        None => {
            eprintln!("throughput gate skipped: no parsable baseline at {baseline_path}");
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scenario\": \"{scenario}\",");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"modes\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"workers_requested\": {}, \
             \"oversubscribed\": {}, \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"sync_barrier_s\": {:.6}, \
             \"digest\": \"{:#018x}\"}}{comma}",
            r.name,
            r.threads,
            r.workers,
            oversub(r.threads),
            r.wall_s,
            r.events,
            r.events_per_sec,
            r.sync_barrier_s,
            r.digest
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"digests_identical\": true,");
    for (suffix, threads, speedup) in [("4t", 4u32, speedup_4t), ("8t", 8u32, speedup_8t)] {
        let _ = writeln!(json, "  \"speedup_{suffix}_vs_1t\": {speedup:.3},");
        if oversub(threads) {
            // Parallel efficiency against the cores actually available,
            // so a laptop CI run doesn't read as a scaling regression.
            let derated = speedup / effective(threads) as f64;
            let _ = writeln!(
                json,
                "  \"speedup_{suffix}_ideal_derated_to\": {},",
                effective(threads)
            );
            let _ = writeln!(
                json,
                "  \"efficiency_{suffix}_vs_host_cores\": {derated:.3},"
            );
        }
    }
    let _ = writeln!(json, "  \"gate_scenario_events_per_sec\": {gate_eps:.1},");
    let _ = writeln!(
        json,
        "  \"gate_baseline_events_per_sec\": {baseline_eps:.1},"
    );
    let _ = writeln!(json, "  \"gate_status\": \"{gate_status}\"");
    let _ = writeln!(json, "}}");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_owned());
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    println!("wrote {out} (4t speedup {speedup_4t:.2}x, digests identical)");
}
