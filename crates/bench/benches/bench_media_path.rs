//! MEDIA — per-tick versus coalesced media emission on a Table-I-shaped
//! full-media cell, across both scheduler backends.
//!
//! Prints a pairing comparison (wall clock, events/sec, speedup against
//! the heap + per-tick reference) before benchmarking the two extremes.
//! The full-scale comparison lives in the `bench_sched_json` binary
//! (`BENCH_SCALE=full cargo run --release -p bench --bin bench_sched_json`).

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, RunResult, SimOptions};
use capacity::world::MediaPath;
use criterion::{criterion_group, criterion_main, Criterion};
use des::SchedulerKind;
use loadgen::HoldingDist;

fn cell() -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::table1(40.0, 7);
    cfg.placement_window_s = 9.0;
    cfg.holding = HoldingDist::Fixed(6.0);
    cfg.media = MediaMode::PerPacket { encode_every: 50 };
    cfg
}

fn run(opts: SimOptions) -> RunResult {
    EmpiricalRunner::run_with(cell(), opts)
}

const PAIRINGS: [(&str, SchedulerKind, MediaPath); 4] = [
    (
        "heap+per_tick (reference)",
        SchedulerKind::Heap,
        MediaPath::PerTick,
    ),
    ("wheel+per_tick", SchedulerKind::Wheel, MediaPath::PerTick),
    ("heap+coalesced", SchedulerKind::Heap, MediaPath::Coalesced),
    (
        "wheel+coalesced (default)",
        SchedulerKind::Wheel,
        MediaPath::Coalesced,
    ),
];

fn print_comparison() {
    println!("\n========== media-path pairing comparison (A=40, scaled) ==========");
    let mut reference_wall = 0.0;
    for (name, scheduler, media_path) in PAIRINGS {
        let r = run(SimOptions {
            scheduler,
            media_path,
            ..SimOptions::default()
        });
        if reference_wall == 0.0 {
            reference_wall = r.wall_clock_s;
        }
        println!(
            "{name:<28} {:>8.3} s  {:>12.0} ev/s  {:>5.2}x",
            r.wall_clock_s,
            r.events_per_sec,
            reference_wall / r.wall_clock_s.max(1e-9),
        );
    }
    println!("==================================================================\n");
}

fn bench(c: &mut Criterion) {
    print_comparison();

    let mut g = c.benchmark_group("media_path");
    g.sample_size(10);

    g.bench_function("cell_A40_reference_heap_per_tick", |b| {
        b.iter(|| run(SimOptions::reference()))
    });
    g.bench_function("cell_A40_default_wheel_coalesced", |b| {
        b.iter(|| run(SimOptions::default()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
