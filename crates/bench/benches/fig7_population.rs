//! FIG7 — regenerate the paper's Figure 7 (blocking vs calling-population
//! share for 2.0/2.5/3.0-minute calls, population 8000, N = 165) and
//! benchmark the dimensioning kernels behind it.

use capacity::{figures, report};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use teletraffic::engset::engset_blocking_for_load;
use teletraffic::{blocking_probability, Erlangs};

fn regenerate_figure() {
    println!("\n================ FIG7 regeneration ================");
    let curves = figures::fig7(8000, 165);
    print!("{}", report::render_fig7(&curves, 5));
    // The narrative anchors the paper reads off the plot.
    let anchor = |d: f64| blocking_probability(Erlangs::from_population(8000, 0.6, d), 165) * 100.0;
    println!(
        "anchors @60%: 2.0min -> {:.1}% (<5), 2.5min -> {:.1}% (~21), 3.0min -> {:.1}% (>34)",
        anchor(2.0),
        anchor(2.5),
        anchor(3.0)
    );
    println!("===================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let mut g = c.benchmark_group("fig7");
    g.bench_function("full_figure_3_curves_x100pts", |b| {
        b.iter(|| figures::fig7(black_box(8000), black_box(165)))
    });
    g.bench_function("engset_finite_population_point", |b| {
        b.iter(|| {
            engset_blocking_for_load(black_box(8000), black_box(165), black_box(Erlangs(160.0)))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
