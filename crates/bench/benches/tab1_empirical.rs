//! TAB1 — regenerate the paper's Table I (empirical method) through the
//! full simulated testbed, and benchmark one empirical cell.
//!
//! The regeneration runs at full scale (180 s placement, 120 s calls,
//! per-packet G.711 media) unless `TAB1_SCALE` is set, e.g.
//! `TAB1_SCALE=0.1 cargo bench -p bench --bench tab1_empirical`.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode};
use capacity::{report, table1};
use criterion::{criterion_group, criterion_main, Criterion};

fn regenerate_table() {
    let scale: f64 = std::env::var("TAB1_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    println!("\n================ TAB1 regeneration (scale {scale}) ================");
    let t0 = std::time::Instant::now();
    let rows = if (scale - 1.0).abs() < 1e-9 {
        table1::table1(2015)
    } else {
        table1::table1_scaled(2015, scale)
    };
    print!("{}", report::render_table1(&rows));
    println!("(regenerated in {:.1} s)", t0.elapsed().as_secs_f64());
    println!("==================================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_table();

    let mut g = c.benchmark_group("tab1");
    g.sample_size(10);

    // One scaled empirical cell with full media, the unit of Table-I work.
    g.bench_function("cell_A40_scaled_media", |b| {
        b.iter(|| {
            let mut cfg = EmpiricalConfig::table1(40.0, 7);
            cfg.placement_window_s = 9.0;
            cfg.holding = loadgen::HoldingDist::Fixed(6.0);
            cfg.media = MediaMode::PerPacket { encode_every: 50 };
            EmpiricalRunner::run(cfg)
        })
    });

    // The same cell signalling-only: how much of the cost is media.
    g.bench_function("cell_A40_scaled_signalling_only", |b| {
        b.iter(|| {
            let mut cfg = EmpiricalConfig::table1(40.0, 7);
            cfg.placement_window_s = 9.0;
            cfg.holding = loadgen::HoldingDist::Fixed(6.0);
            cfg.media = MediaMode::Off;
            EmpiricalRunner::run(cfg)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
