//! FIG6 — regenerate the paper's Figure 6: empirical blocking vs the
//! Erlang-B curves for N = 160/165/170 across 120…260 E, and benchmark
//! one sweep point.
//!
//! Replications per point default to 5; override with `FIG6_REPS`.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner};
use capacity::{figures, report};
use criterion::{criterion_group, criterion_main, Criterion};

fn regenerate_figure() {
    let reps: u64 = std::env::var("FIG6_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!("\n================ FIG6 regeneration ({reps} reps/point) ================");
    let t0 = std::time::Instant::now();
    let points = figures::fig6(&figures::fig6_default_loads(), reps, 2015);
    print!("{}", report::render_fig6(&points));
    // The figure's conclusion: the empirical curve tracks N≈165.
    let mut inside = 0usize;
    for p in &points {
        if p.empirical_pb_pct >= p.analytic_170 - 1.5 && p.empirical_pb_pct <= p.analytic_160 + 1.5
        {
            inside += 1;
        }
    }
    println!(
        "{inside}/{} sweep points lie within the N=160..170 analytic rails (±1.5pp)",
        points.len()
    );
    println!("(regenerated in {:.1} s)", t0.elapsed().as_secs_f64());
    println!("======================================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("one_signalling_run_A200", |b| {
        b.iter(|| EmpiricalRunner::run(EmpiricalConfig::signalling_only(200.0, 3)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
