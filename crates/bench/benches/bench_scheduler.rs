//! SCHED — future-event-list microbenchmarks: binary heap vs timing
//! wheel behind the same `Scheduler` API.
//!
//! The synthetic workload is the classic hold model: a fixed population
//! of pending events where every pop schedules a successor a short,
//! jittered delay ahead — the access pattern a packet-level simulation
//! produces. The empirical workload drives a signalling-only smoke run
//! through both backends.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use capacity::world::MediaPath;
use criterion::{criterion_group, criterion_main, Criterion};
use des::{Scheduler, SchedulerKind, SimDuration, SimTime};

/// Pop/push churn over a steady population of `initial` pending events.
fn hold_model(kind: SchedulerKind, initial: u64, ops: u64) -> u64 {
    let mut sched = Scheduler::with_kind(kind);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..initial {
        sched.schedule(SimTime::from_nanos(rand() % 1_000_000_000), i);
    }
    let mut popped = 0u64;
    for _ in 0..ops {
        let Some((at, _)) = sched.pop() else { break };
        popped += 1;
        // Successor within two 20 ms frames — media-like locality.
        sched.schedule(at + SimDuration::from_nanos(rand() % 40_000_000), popped);
    }
    popped
}

fn smoke_run(kind: SchedulerKind) -> u64 {
    let mut cfg = EmpiricalConfig::smoke(17);
    cfg.media = MediaMode::Off;
    let r = EmpiricalRunner::run_with(
        cfg,
        SimOptions {
            scheduler: kind,
            media_path: MediaPath::Coalesced,
            ..SimOptions::default()
        },
    );
    r.events_processed
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);

    for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let tag = match kind {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        };
        g.bench_function(format!("hold_16k_ops_256k_{tag}").as_str(), |b| {
            b.iter(|| hold_model(kind, 16_384, 262_144))
        });
        g.bench_function(format!("smoke_signalling_{tag}").as_str(), |b| {
            b.iter(|| smoke_run(kind))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
