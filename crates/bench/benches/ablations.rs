//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! * `queue`    — binary-heap vs sorted-vec future-event list;
//! * `media`    — per-frame G.711 encoding vs cached-payload fast path vs
//!   signalling-only (counts/blocking identical, cost not);
//! * `parallel` — sequential vs sweep-executor Fig. 6 replications;
//! * `codec`    — μ-law vs A-law companding throughput;
//! * `parser`   — SIP parse/serialize round-trip throughput;
//! * `holding`  — Erlang-B insensitivity: fixed vs exponential holding.

use bench::SortedVecQueue;
use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode};
use capacity::sweep::{run_sweep, SweepTask};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use des::{Scheduler, SimTime};

fn queue_events() -> Vec<(SimTime, u32)> {
    let mut x: u64 = 0x12345678;
    (0..10_000u32)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (SimTime::from_nanos(x % 1_000_000), i)
        })
        .collect()
}

fn bench_queue(c: &mut Criterion) {
    let events = queue_events();
    let mut g = c.benchmark_group("ablation_queue");
    g.bench_function("binary_heap_10k", |b| {
        b.iter_batched(
            || events.clone(),
            |evs| {
                let mut q = Scheduler::new();
                for (t, e) in evs {
                    q.schedule(t, e);
                }
                while let Some(x) = q.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("sorted_vec_10k", |b| {
        b.iter_batched(
            || events.clone(),
            |evs| {
                let mut q = SortedVecQueue::new();
                for (t, e) in evs {
                    q.schedule(t, e);
                }
                while let Some(x) = q.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn media_cfg(mode: MediaMode) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::table1(40.0, 17);
    cfg.placement_window_s = 9.0;
    cfg.holding = loadgen::HoldingDist::Fixed(6.0);
    cfg.media = mode;
    cfg
}

fn bench_media_fidelity(c: &mut Criterion) {
    // First demonstrate the invariant the fast path must preserve.
    let full = EmpiricalRunner::run(media_cfg(MediaMode::PerPacket { encode_every: 1 }));
    let cached = EmpiricalRunner::run(media_cfg(MediaMode::PerPacket { encode_every: 50 }));
    let off = EmpiricalRunner::run(media_cfg(MediaMode::Off));
    assert_eq!(full.monitor.rtp_packets, cached.monitor.rtp_packets);
    assert_eq!(full.blocked, cached.blocked);
    assert_eq!(full.blocked, off.blocked);
    println!(
        "ablation_media: rtp={} identical across encode_every 1/50; blocking identical with media off",
        full.monitor.rtp_packets
    );

    let mut g = c.benchmark_group("ablation_media");
    g.sample_size(10);
    g.bench_function("encode_every_frame", |b| {
        b.iter(|| EmpiricalRunner::run(media_cfg(MediaMode::PerPacket { encode_every: 1 })))
    });
    g.bench_function("encode_every_50th", |b| {
        b.iter(|| EmpiricalRunner::run(media_cfg(MediaMode::PerPacket { encode_every: 50 })))
    });
    g.bench_function("signalling_only", |b| {
        b.iter(|| EmpiricalRunner::run(media_cfg(MediaMode::Off)))
    });
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let loads = [140.0, 180.0, 220.0, 260.0];
    let run_one = |a: f64, rep: u64| {
        EmpiricalRunner::run(EmpiricalConfig::signalling_only(a, rep * 7919 + 3)).observed_pb
    };
    let mut g = c.benchmark_group("ablation_parallel");
    g.sample_size(10);
    g.bench_function("sequential_4x4_runs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &a in &loads {
                for rep in 0..4u64 {
                    acc += run_one(a, rep);
                }
            }
            acc
        })
    });
    g.bench_function("sweep_executor_4x4_runs", |b| {
        let tasks: Vec<SweepTask> = loads
            .iter()
            .enumerate()
            .flat_map(|(cell, _)| (0..4u64).map(move |rep| SweepTask { cell, rep, cost: 1 }))
            .collect();
        b.iter(|| {
            run_sweep(&tasks, |t| run_one(loads[t.cell], t.rep))
                .iter()
                .sum::<f64>()
        })
    });
    g.finish();
}

fn bench_vad(c: &mut Criterion) {
    // The paper's "dialogue without idleness" vs a VAD'd conversation:
    // packet volume (and hence PBX relay CPU) drops by the inactivity
    // factor while admission behaviour is untouched.
    let continuous = EmpiricalRunner::run(media_cfg(MediaMode::PerPacket { encode_every: 50 }));
    let vad = {
        let mut cfg = media_cfg(MediaMode::PerPacket { encode_every: 50 });
        cfg.silence_suppression = true;
        EmpiricalRunner::run(cfg)
    };
    println!(
        "ablation_vad: continuous {} RTP pkts vs VAD {} ({}% saved); blocking {} vs {}",
        continuous.monitor.rtp_packets,
        vad.monitor.rtp_packets,
        (100.0 * (1.0 - vad.monitor.rtp_packets as f64 / continuous.monitor.rtp_packets as f64))
            .round(),
        continuous.blocked,
        vad.blocked,
    );
    let mut g = c.benchmark_group("ablation_vad");
    g.sample_size(10);
    g.bench_function("continuous_speech", |b| {
        b.iter(|| EmpiricalRunner::run(media_cfg(MediaMode::PerPacket { encode_every: 50 })))
    });
    g.bench_function("silence_suppressed", |b| {
        b.iter(|| {
            let mut cfg = media_cfg(MediaMode::PerPacket { encode_every: 50 });
            cfg.silence_suppression = true;
            EmpiricalRunner::run(cfg)
        })
    });
    g.finish();
}

fn bench_plc(c: &mut Criterion) {
    // Concealment quality/cost: one second of speech with 5% frame loss.
    use rtpcore::packetizer::{VoiceSource, SAMPLES_PER_FRAME};
    use rtpcore::plc::Concealer;
    let mut voice = VoiceSource::new(3);
    let frames: Vec<Vec<i16>> = (0..50)
        .map(|_| voice.next_samples(SAMPLES_PER_FRAME))
        .collect();
    let mut g = c.benchmark_group("ablation_plc");
    g.bench_function("conceal_1s_with_5pct_loss", |b| {
        b.iter(|| {
            let mut plc = Concealer::new();
            let mut acc = 0i64;
            for (i, f) in frames.iter().enumerate() {
                let out = if i % 20 == 19 {
                    plc.lost_frame()
                } else {
                    plc.good_frame(f)
                };
                acc += i64::from(out[0]);
            }
            acc
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut voice = rtpcore::packetizer::VoiceSource::new(1);
    let pcm = voice.next_samples(8000);
    let ulaw: Vec<u8> = pcm.iter().map(|&s| rtpcore::ulaw_encode(s)).collect();
    let mut g = c.benchmark_group("ablation_codec");
    g.throughput(criterion::Throughput::Elements(pcm.len() as u64));
    g.bench_function("ulaw_encode_1s", |b| {
        b.iter(|| {
            pcm.iter()
                .map(|&s| rtpcore::ulaw_encode(black_box(s)))
                .map(u64::from)
                .sum::<u64>()
        })
    });
    g.bench_function("alaw_encode_1s", |b| {
        b.iter(|| {
            pcm.iter()
                .map(|&s| rtpcore::alaw_encode(black_box(s)))
                .map(u64::from)
                .sum::<u64>()
        })
    });
    g.bench_function("ulaw_decode_1s", |b| {
        b.iter(|| {
            ulaw.iter()
                .map(|&c| i64::from(rtpcore::ulaw_decode(black_box(c))))
                .sum::<i64>()
        })
    });
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    use sipcore::headers::HeaderName;
    use sipcore::message::format_via;
    use sipcore::{Method, Request, SipUri};
    let sdp = sipcore::sdp::SessionDescription::new(
        "1001",
        "10.0.0.2",
        6000,
        sipcore::sdp::SdpCodec::Pcmu,
    );
    let invite = Request::new(Method::Invite, SipUri::new("1002", "pbx.unb.br"))
        .header(
            HeaderName::Via,
            format_via("10.0.0.2", 5060, "z9hG4bKbench"),
        )
        .header(HeaderName::From, "<sip:1001@pbx.unb.br>;tag=b1")
        .header(HeaderName::To, "<sip:1002@pbx.unb.br>")
        .header(HeaderName::CallId, "bench-call-1")
        .header(HeaderName::CSeq, "1 INVITE")
        .header(HeaderName::MaxForwards, "70")
        .with_body("application/sdp", sdp.to_body());
    let wire = invite.to_wire();
    let mut g = c.benchmark_group("ablation_parser");
    g.throughput(criterion::Throughput::Bytes(wire.len() as u64));
    g.bench_function("serialize_invite", |b| {
        b.iter(|| black_box(&invite).to_wire())
    });
    g.bench_function("parse_invite", |b| {
        b.iter(|| sipcore::parse_message(black_box(&wire)).unwrap())
    });
    g.bench_function("round_trip", |b| {
        b.iter(|| sipcore::parse_message(&black_box(&invite).to_wire()).unwrap())
    });
    g.finish();
}

fn bench_holding_insensitivity(c: &mut Criterion) {
    // Not a speed ablation — a model one: print the blocking under three
    // holding laws with equal means; Erlang-B predicts they coincide.
    let run = |holding: loadgen::HoldingDist| {
        let mut blocked = 0u64;
        let mut attempted = 0u64;
        for seed in 0..6u64 {
            let mut cfg = EmpiricalConfig::signalling_only(20.0, 100 + seed);
            cfg.channels = 20;
            cfg.holding = holding;
            cfg.placement_window_s = 600.0;
            let r = EmpiricalRunner::run(cfg);
            blocked += r.blocked;
            attempted += r.attempted;
        }
        blocked as f64 / attempted as f64 * 100.0
    };
    let fixed = run(loadgen::HoldingDist::Fixed(120.0));
    let expo = run(loadgen::HoldingDist::Exponential(120.0));
    let logn = run(loadgen::HoldingDist::Lognormal {
        mean: 120.0,
        sd: 80.0,
    });
    let analytic = teletraffic::blocking_probability(teletraffic::Erlangs(20.0), 20) * 100.0;
    println!(
        "ablation_holding (A=20E, N=20): fixed {fixed:.2}%  exponential {expo:.2}%  \
         lognormal {logn:.2}%  Erlang-B {analytic:.2}%"
    );
    // Keep criterion happy with a token measurement of the underlying run.
    let mut g = c.benchmark_group("ablation_holding");
    g.sample_size(10);
    g.bench_function("one_run_exponential", |b| {
        b.iter(|| {
            let mut cfg = EmpiricalConfig::signalling_only(20.0, 5);
            cfg.channels = 20;
            cfg.holding = loadgen::HoldingDist::Exponential(120.0);
            EmpiricalRunner::run(cfg)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_media_fidelity,
    bench_vad,
    bench_plc,
    bench_parallel,
    bench_codec,
    bench_parser,
    bench_holding_insensitivity
);
criterion_main!(benches);
