//! FIG3 — regenerate the paper's Figure 3 (Erlang-B `Pb%` vs channel count
//! for workloads 20…240 E) and benchmark the analytical kernel.
//!
//! ```sh
//! cargo bench -p bench --bench fig3_erlang_b
//! ```

use capacity::{figures, report};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use teletraffic::{blocking_probability, erlang_b, Erlangs};

fn regenerate_figure() {
    let curves = figures::fig3(260);
    println!("\n================ FIG3 regeneration ================");
    print!("{}", report::render_fig3(&curves, 20));
    // The qualitative reads the paper takes off the figure:
    let pb_160e_165n = blocking_probability(Erlangs(160.0), 165);
    println!(
        "check: at A=160 E, N=165 -> Pb = {:.1}% (paper: >160 calls under 5% blocking)",
        pb_160e_165n * 100.0
    );
    println!("===================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let mut g = c.benchmark_group("fig3");
    g.bench_function("blocking_probability_A150_N165", |b| {
        b.iter(|| blocking_probability(black_box(Erlangs(150.0)), black_box(165)))
    });
    g.bench_function("blocking_curve_A240_N260", |b| {
        b.iter(|| erlang_b::blocking_curve(black_box(Erlangs(240.0)), black_box(260)))
    });
    g.bench_function("full_figure_12_curves", |b| {
        b.iter(|| figures::fig3(black_box(260)))
    });
    g.bench_function("channels_for_A150_pb2pct", |b| {
        b.iter(|| erlang_b::channels_for(black_box(Erlangs(150.0)), black_box(0.02)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
