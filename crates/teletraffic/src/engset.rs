//! The Engset loss model — Erlang-B for a *finite* calling population.
//!
//! Erlang-B assumes infinitely many potential callers; the paper's Fig. 7
//! reasons about a concrete population (8 000 VoWiFi users), for which the
//! finite-source Engset model is the more precise tool when the population
//! is not much larger than the channel count. We implement it so the
//! harness can show that for 8 000 sources and 165 channels the Engset and
//! Erlang-B answers coincide to within a fraction of a percent — justifying
//! the paper's use of Erlang-B.

use crate::error::TrafficError;
use crate::units::Erlangs;

/// Engset blocking probability (time congestion seen by arrivals) for
/// `sources` potential callers, `channels` servers, and per-idle-source
/// offered intensity `alpha` (the ratio of call rate to hang-up rate of a
/// single source).
///
/// Computed with the stable recurrence
///
/// ```text
/// E(0) = 1
/// E(n) = α·(S − n)·E(n−1) / (n + α·(S − n)·E(n−1))
/// ```
///
/// where `S` is the number of sources (this yields the call-congestion form,
/// which is what an arriving call experiences).
pub fn engset_blocking(sources: u64, channels: u32, alpha: f64) -> Result<f64, TrafficError> {
    if !(alpha.is_finite() && alpha >= 0.0) {
        return Err(TrafficError::InvalidParameter("alpha"));
    }
    if u64::from(channels) >= sources {
        // Every source can always find a channel: no blocking.
        return Ok(0.0);
    }
    if alpha == 0.0 {
        return Ok(if channels == 0 { 1.0 } else { 0.0 });
    }
    if channels == 0 {
        return Ok(1.0);
    }
    let s = sources as f64;
    let mut e = 1.0_f64;
    for n in 1..=u64::from(channels) {
        let x = alpha * (s - n as f64) * e;
        e = x / (n as f64 + x);
    }
    Ok(e)
}

/// Engset blocking (same call-congestion quantity as
/// [`engset_blocking`]) computed in log space, safe for
/// population-scale source counts (N ≥ 10⁶ and far beyond).
///
/// The direct recurrence is a ratio form and rarely overflows, but its
/// intermediate product `α·(S − n)·E(n−1)` mixes magnitudes of order
/// `α·S` with order-1 terms; at `S ~ 10⁶⁺` and small `α` that costs
/// relative precision exactly where the planning sweeps read the curve.
/// Here the unnormalized state weights
///
/// ```text
/// P(0) = 1,   P(k) = P(k−1) · α·(S − k) / k
/// ```
///
/// are carried as logarithms, with a streaming log-sum-exp for the
/// normalizer, so blocking is `exp(l_n − logΣexp(l_0..l_n))` — every
/// intermediate is O(log S) in magnitude regardless of population size.
/// For small populations it agrees with [`engset_blocking`] to floating
/// point (pinned by a property test).
pub fn engset_blocking_large(sources: u64, channels: u32, alpha: f64) -> Result<f64, TrafficError> {
    if !(alpha.is_finite() && alpha >= 0.0) {
        return Err(TrafficError::InvalidParameter("alpha"));
    }
    if u64::from(channels) >= sources {
        return Ok(0.0);
    }
    if alpha == 0.0 {
        return Ok(if channels == 0 { 1.0 } else { 0.0 });
    }
    if channels == 0 {
        return Ok(1.0);
    }
    let s = sources as f64;
    let ln_alpha = alpha.ln();
    // l = ln P(k); lse = ln Σ_{j≤k} P(j), folded streaming so no term is
    // ever materialized outside log space.
    let mut l = 0.0_f64;
    let mut lse = 0.0_f64;
    for k in 1..=u64::from(channels) {
        l += ln_alpha + (s - k as f64).ln() - (k as f64).ln();
        let m = lse.max(l);
        lse = m + ((lse - m).exp() + (l - m).exp()).ln();
    }
    Ok((l - lse).exp())
}

/// Engset blocking for a population that would offer `a` Erlangs in the
/// infinite-source limit (i.e. `alpha` chosen so `S·α/(1+α) = A`).
///
/// This is the form used to compare directly against
/// [`crate::erlang_b::blocking_probability`].
pub fn engset_blocking_for_load(
    sources: u64,
    channels: u32,
    a: Erlangs,
) -> Result<f64, TrafficError> {
    if !a.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    let av = a.value();
    let s = sources as f64;
    if av >= s {
        return Err(TrafficError::InvalidParameter(
            "offered load must be below the source count",
        ));
    }
    // S·α/(1+α) = A  =>  α = A / (S − A).
    let alpha = av / (s - av);
    engset_blocking(sources, channels, alpha)
}

/// [`engset_blocking_for_load`] on the log-space population-scale path —
/// the form the `capacity-cli scale` sweep uses to close the
/// empirical-vs-analytic comparison at 10⁶⁺ subscribers.
pub fn engset_blocking_for_load_large(
    sources: u64,
    channels: u32,
    a: Erlangs,
) -> Result<f64, TrafficError> {
    if !a.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    let av = a.value();
    let s = sources as f64;
    if av >= s {
        return Err(TrafficError::InvalidParameter(
            "offered load must be below the source count",
        ));
    }
    let alpha = av / (s - av);
    engset_blocking_large(sources, channels, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erlang_b::blocking_probability;

    #[test]
    fn more_channels_than_sources_never_blocks() {
        assert_eq!(engset_blocking(10, 10, 0.5).unwrap(), 0.0);
        assert_eq!(engset_blocking(10, 20, 5.0).unwrap(), 0.0);
    }

    #[test]
    fn zero_channels_always_blocks() {
        assert_eq!(engset_blocking(10, 0, 0.5).unwrap(), 1.0);
    }

    #[test]
    fn zero_alpha_never_blocks() {
        assert_eq!(engset_blocking(10, 2, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(engset_blocking(10, 2, f64::NAN).is_err());
        assert!(engset_blocking(10, 2, -0.1).is_err());
    }

    #[test]
    fn converges_to_erlang_b_for_large_population() {
        // The justification for the paper's use of Erlang-B on a finite
        // campus population: at S >> N the models agree.
        let a = Erlangs(150.0);
        let eb = blocking_probability(a, 165);
        let en = engset_blocking_for_load(8000, 165, a).unwrap();
        assert!(
            (eb - en).abs() < 0.005,
            "Engset {en} vs Erlang-B {eb} at S=8000"
        );
        // Much smaller populations diverge visibly (less blocking).
        let en_small = engset_blocking_for_load(200, 165, a).unwrap();
        assert!(
            en_small < eb,
            "finite source must block less: {en_small} < {eb}"
        );
    }

    #[test]
    fn engset_approaches_erlang_b_as_population_grows() {
        // At fixed intended load the finite-source answer converges to the
        // infinite-source (Erlang-B) one as S grows. Note the approach is
        // not one-sided at high congestion: with α = A/(S−A), blocked
        // sources return to idle and re-offer, so effective offered traffic
        // slightly exceeds A for small S.
        let a = Erlangs(150.0);
        let eb = blocking_probability(a, 120);
        let mut prev_gap = f64::INFINITY;
        for &s in &[500u64, 2000, 8000, 32000, 128_000] {
            let en = engset_blocking_for_load(s, 120, a).unwrap();
            let gap = (en - eb).abs();
            assert!(
                gap <= prev_gap + 1e-12,
                "S={s}: gap {gap} grew from {prev_gap}"
            );
            prev_gap = gap;
        }
        assert!(prev_gap < 5e-4, "should converge: residual {prev_gap}");
    }

    #[test]
    fn engset_matches_erlang_b_at_low_blocking() {
        // In the paper's operating region (light blocking) the two models
        // agree for the 8000-user campus — justifying Erlang-B in Fig. 7.
        for &a in &[40.0, 80.0, 120.0] {
            let eb = blocking_probability(Erlangs(a), 165);
            let en = engset_blocking_for_load(8000, 165, Erlangs(a)).unwrap();
            assert!((en - eb).abs() < 1e-3, "A={a}: {en} vs {eb}");
        }
    }

    #[test]
    fn load_must_be_below_sources() {
        assert!(engset_blocking_for_load(100, 50, Erlangs(100.0)).is_err());
        assert!(engset_blocking_for_load(100, 50, Erlangs(150.0)).is_err());
        assert!(engset_blocking_for_load(100, 50, Erlangs(-1.0)).is_err());
    }

    #[test]
    fn large_path_edge_cases_match_small_path() {
        assert_eq!(engset_blocking_large(10, 10, 0.5).unwrap(), 0.0);
        assert_eq!(engset_blocking_large(10, 0, 0.5).unwrap(), 1.0);
        assert_eq!(engset_blocking_large(10, 2, 0.0).unwrap(), 0.0);
        assert!(engset_blocking_large(10, 2, f64::NAN).is_err());
        assert!(engset_blocking_large(10, 2, -0.1).is_err());
        assert!(engset_blocking_for_load_large(100, 50, Erlangs(100.0)).is_err());
    }

    #[test]
    fn large_path_is_finite_and_monotone_in_population_at_a_million() {
        // At fixed per-source intensity α, adding sources adds offered
        // traffic, so blocking must rise with S — checked where the naive
        // formulation would have long since lost precision or overflowed a
        // factorial form.
        let alpha = 165.0 / 1.0e6; // ~165 E offered at S = 10⁶
        let mut prev = 0.0;
        for &s in &[1_000_000u64, 2_000_000, 4_000_000, 8_000_000] {
            let e = engset_blocking_large(s, 165, alpha).unwrap();
            assert!(e.is_finite() && (0.0..=1.0).contains(&e), "S={s}: {e}");
            assert!(e >= prev - 1e-12, "S={s}: blocking fell from {prev} to {e}");
            prev = e;
        }
        assert!(prev > 0.0, "8·10⁶ sources at α·S ≈ 1320 E must block");
    }

    #[test]
    fn large_path_converges_to_erlang_b_at_population_scale() {
        // The million-subscriber dimensioning story: at fixed offered load
        // the finite-source correction vanishes as S grows through 10⁶.
        let a = Erlangs(150.0);
        let eb = blocking_probability(a, 165);
        let mut prev_gap = f64::INFINITY;
        for &s in &[1_000_000u64, 4_000_000, 16_000_000, 64_000_000] {
            let en = engset_blocking_for_load_large(s, 165, a).unwrap();
            let gap = (en - eb).abs();
            assert!(gap <= prev_gap + 1e-12, "S={s}: gap {gap} grew");
            prev_gap = gap;
        }
        assert!(prev_gap < 1e-5, "residual gap {prev_gap} at S=64·10⁶");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn engset_is_probability(s in 1u64..5000, n in 0u32..500, alpha in 0.0f64..10.0) {
            let e = engset_blocking(s, n, alpha).unwrap();
            prop_assert!((0.0..=1.0).contains(&e));
        }

        #[test]
        fn monotone_in_channels(s in 50u64..2000, n in 0u32..200, alpha in 0.001f64..2.0) {
            let e0 = engset_blocking(s, n, alpha).unwrap();
            let e1 = engset_blocking(s, n + 1, alpha).unwrap();
            prop_assert!(e1 <= e0 + 1e-12);
        }

        /// The log-space large-population path is pinned to the existing
        /// small-N recurrence wherever the latter is trusted (N ≤ 10³):
        /// same call-congestion quantity, different arithmetic.
        #[test]
        fn large_path_pins_to_small_path(s in 1u64..1000, n in 0u32..300, alpha in 0.0f64..10.0) {
            let small = engset_blocking(s, n, alpha).unwrap();
            let large = engset_blocking_large(s, n, alpha).unwrap();
            prop_assert!(
                (small - large).abs() <= 1e-9 * small.max(1.0),
                "S={} n={} α={}: small {} vs large {}", s, n, alpha, small, large
            );
        }
    }
}
