//! The Erlang-B loss model (Eq. 2 of the paper).
//!
//! For offered load `A` Erlangs and `N` channels, the probability that an
//! arriving call finds all channels busy (and is lost) is
//!
//! ```text
//!            A^N / N!
//! B(A, N) = ─────────────────
//!            Σ_{i=0}^{N} A^i / i!
//! ```
//!
//! Evaluating the textbook formula directly overflows for modest `N`; we use
//! the standard stable recurrence instead:
//!
//! ```text
//! B(A, 0) = 1
//! B(A, n) = A·B(A, n−1) / (n + A·B(A, n−1))
//! ```
//!
//! which stays in `[0, 1]` at every step and costs O(N) multiplications.

use crate::error::TrafficError;
use crate::units::Erlangs;

/// Call blocking probability `B(A, N)` for offered load `a` and `channels`
/// servers.
///
/// Edge cases: zero load never blocks (unless there are zero channels, in
/// which case everything blocks); invalid loads yield `NaN`-free behaviour by
/// saturating — prefer [`try_blocking_probability`] when inputs are
/// untrusted.
///
/// ```
/// use teletraffic::{erlang_b, Erlangs};
/// let pb = erlang_b::blocking_probability(Erlangs(200.0), 165);
/// assert!(pb > 0.19 && pb < 0.23); // the paper's ~21% anchor
/// ```
#[must_use]
pub fn blocking_probability(a: Erlangs, channels: u32) -> f64 {
    let a = a.value();
    if !(a.is_finite() && a >= 0.0) {
        return f64::NAN;
    }
    if a == 0.0 {
        return if channels == 0 { 1.0 } else { 0.0 };
    }
    let mut b = 1.0_f64; // B(A, 0)
    for n in 1..=u64::from(channels) {
        let ab = a * b;
        b = ab / (n as f64 + ab);
    }
    b
}

/// Fallible variant of [`blocking_probability`] that rejects invalid loads.
pub fn try_blocking_probability(a: Erlangs, channels: u32) -> Result<f64, TrafficError> {
    if !a.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    Ok(blocking_probability(a, channels))
}

/// Blocking probabilities for every channel count `0..=max_channels`.
///
/// One pass of the recurrence; used to draw the paper's Fig. 3 curves.
#[must_use]
pub fn blocking_curve(a: Erlangs, max_channels: u32) -> Vec<f64> {
    let av = a.value();
    let mut out = Vec::with_capacity(max_channels as usize + 1);
    if !(av.is_finite() && av >= 0.0) {
        out.resize(max_channels as usize + 1, f64::NAN);
        return out;
    }
    if av == 0.0 {
        out.push(1.0);
        out.resize(max_channels as usize + 1, 0.0);
        return out;
    }
    let mut b = 1.0_f64;
    out.push(b);
    for n in 1..=u64::from(max_channels) {
        let ab = av * b;
        b = ab / (n as f64 + ab);
        out.push(b);
    }
    out
}

/// Smallest number of channels `N` such that `B(A, N) ≤ target_pb`.
///
/// This is the dimensioning question of the paper's §III-B: "the least
/// amount of resources necessary to deal with the offered load".
///
/// ```
/// use teletraffic::{erlang_b, Erlangs};
/// // 150 E at 2% blocking needs ~164 channels.
/// let n = erlang_b::channels_for(Erlangs(150.0), 0.02).unwrap();
/// assert!(n >= 160 && n <= 170);
/// ```
pub fn channels_for(a: Erlangs, target_pb: f64) -> Result<u32, TrafficError> {
    if !a.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    if !(target_pb > 0.0 && target_pb < 1.0) {
        return Err(TrafficError::InvalidProbability);
    }
    let av = a.value();
    if av == 0.0 {
        return Ok(0);
    }
    let mut b = 1.0_f64;
    let mut n: u64 = 0;
    // B(A, n) decreases strictly in n for A > 0, so the walk terminates.
    // Guard against pathological targets anyway.
    let hard_cap = (av.ceil() as u64 + 64) * 16 + 1024;
    while b > target_pb {
        n += 1;
        let ab = av * b;
        b = ab / (n as f64 + ab);
        if n > hard_cap {
            return Err(TrafficError::Unreachable);
        }
    }
    u32::try_from(n).map_err(|_| TrafficError::Unreachable)
}

/// `B(A, N)` together with its derivative `∂B/∂A`, both propagated
/// through one pass of the stable recurrence.
///
/// Writing `u = A·B(A, n−1)` and `d = ∂B/∂A`:
///
/// ```text
/// u′  = B(A, n−1) + A·d_{n−1}
/// B_n = u / (n + u)
/// d_n = n·u′ / (n + u)²
/// ```
///
/// This is what lets [`load_for`] take Newton steps at the same O(N) cost
/// as a single blocking evaluation.
fn blocking_and_derivative(a: f64, channels: u32) -> (f64, f64) {
    let mut b = 1.0_f64; // B(A, 0)
    let mut d = 0.0_f64; // ∂B/∂A at n = 0
    for n in 1..=u64::from(channels) {
        let nf = n as f64;
        let u = a * b;
        let du = b + a * d;
        let denom = nf + u;
        d = nf * du / (denom * denom);
        b = u / denom;
    }
    (b, d)
}

/// Largest offered load `A` such that `B(A, channels) ≤ target_pb`.
///
/// Solved by Newton iteration on the (strictly increasing in `A`)
/// blocking probability, with the derivative propagated through the same
/// recurrence that evaluates `B` — one O(N) pass per step instead of the
/// O(N·log(range/tol)) a pure bisection costs. Steps are safeguarded by a
/// shrinking bracket, with bisection as the fallback, so convergence is
/// guaranteed. The answer is exact to `tol` Erlangs.
pub fn load_for(channels: u32, target_pb: f64) -> Result<Erlangs, TrafficError> {
    load_for_tol(channels, target_pb, 1e-9)
}

/// [`load_for`] with an explicit absolute tolerance in Erlangs.
pub fn load_for_tol(channels: u32, target_pb: f64, tol: f64) -> Result<Erlangs, TrafficError> {
    if !(target_pb > 0.0 && target_pb < 1.0) {
        return Err(TrafficError::InvalidProbability);
    }
    if channels == 0 {
        // With no channels every call blocks; no positive load meets pb < 1.
        return Err(TrafficError::Unreachable);
    }
    // Bracket: blocking at A=0 is 0; grow the upper bound until it blocks
    // more than the target.
    let mut lo = 0.0_f64;
    let mut hi = channels as f64;
    while blocking_probability(Erlangs(hi), channels) < target_pb {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(TrafficError::Unreachable);
        }
    }
    // Newton from the bracket midpoint; every iterate also tightens the
    // bracket, and a step that escapes it (or a vanishing derivative)
    // falls back to the midpoint — plain bisection in the worst case.
    let mut a = 0.5 * (lo + hi);
    while hi - lo > tol {
        let (b, d) = blocking_and_derivative(a, channels);
        if b > target_pb {
            hi = a;
        } else {
            lo = a;
        }
        if hi - lo <= tol {
            break;
        }
        let newton = a - (b - target_pb) / d;
        a = if d > 0.0 && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
    }
    Ok(Erlangs(0.5 * (lo + hi)))
}

/// A memoized Erlang-B curve: every `B(A, n)` for `n ∈ 0..=max_channels`
/// from one pass of the recurrence, for callers that sweep channel counts
/// at a fixed load (figure rails, dimensioning tables). Point lookups are
/// then O(1) instead of O(n) each.
#[must_use = "building the curve costs an O(N) pass; use the lookups"]
#[derive(Debug, Clone)]
pub struct BlockingCurve {
    a: Erlangs,
    values: Vec<f64>,
}

impl BlockingCurve {
    /// Evaluate the curve for offered load `a` up to `max_channels`.
    pub fn new(a: Erlangs, max_channels: u32) -> Self {
        BlockingCurve {
            a,
            values: blocking_curve(a, max_channels),
        }
    }

    /// The offered load this curve was built for.
    #[must_use]
    pub fn offered(&self) -> Erlangs {
        self.a
    }

    /// Largest channel count the curve covers.
    #[must_use]
    pub fn max_channels(&self) -> u32 {
        (self.values.len() - 1) as u32
    }

    /// `B(A, channels)`; `NaN` beyond [`Self::max_channels`].
    #[must_use]
    pub fn at(&self, channels: u32) -> f64 {
        self.values
            .get(channels as usize)
            .copied()
            .unwrap_or(f64::NAN)
    }

    /// Smallest `N ≤ max_channels` with `B(A, N) ≤ target_pb`, or `None`
    /// if the curve never gets there (memoized [`channels_for`]).
    #[must_use]
    pub fn channels_for(&self, target_pb: f64) -> Option<u32> {
        self.values
            .iter()
            .position(|&b| b <= target_pb)
            .map(|n| n as u32)
    }
}

/// Process-wide memo of [`BlockingCurve`]s, keyed by `(A bits, N)`.
///
/// A sweep evaluates the same analytic rails for every replication of
/// every cell — Fig. 6 alone asks for the 170-channel curve at 15 loads
/// × every rep. The curves are immutable once built, so the sweep plane
/// hosts them behind a process-wide `Arc` and every run after the first
/// gets a refcount bump instead of an O(N) recurrence pass. Keying by
/// the load's *bit pattern* keeps the memo exact: two loads that differ
/// in the last ulp get distinct curves, so memoized results are
/// bit-identical to cold ones by construction.
pub fn shared_curve(a: Erlangs, max_channels: u32) -> std::sync::Arc<BlockingCurve> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type CurveMemo = Mutex<HashMap<(u64, u32), Arc<BlockingCurve>>>;
    static MEMO: OnceLock<CurveMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (a.value().to_bits(), max_channels);
    let mut map = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        map.entry(key)
            .or_insert_with(|| Arc::new(BlockingCurve::new(a, max_channels))),
    )
}

/// Process-wide memo of [`load_for`] answers, keyed by `(N, target bits)`.
///
/// The campaign derives its engineered capacity (`load_for(channels,
/// 0.01)`) once per *cell*; under the sweep executor that Newton solve
/// would otherwise repeat per cell × replication. Same exactness
/// argument as [`shared_curve`]: the memo stores the identical `Result`
/// the cold path computes.
pub fn shared_load_for(channels: u32, target_pb: f64) -> Result<Erlangs, TrafficError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type LoadMemo = Mutex<HashMap<(u32, u64), Result<Erlangs, TrafficError>>>;
    static MEMO: OnceLock<LoadMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (channels, target_pb.to_bits());
    let mut map = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.entry(key)
        .or_insert_with(|| load_for(channels, target_pb))
        .clone()
}

/// Carried traffic `A · (1 − B(A, N))` in Erlangs — the load that actually
/// occupies channels after blocking.
#[must_use]
pub fn carried_traffic(a: Erlangs, channels: u32) -> Erlangs {
    Erlangs(a.value() * (1.0 - blocking_probability(a, channels)))
}

/// Channel utilisation: carried traffic divided by the number of channels.
#[must_use]
pub fn utilisation(a: Erlangs, channels: u32) -> f64 {
    if channels == 0 {
        return 0.0;
    }
    carried_traffic(a, channels).value() / f64::from(channels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (unstable) evaluation for small N, used as an oracle.
    fn naive_erlang_b(a: f64, n: u32) -> f64 {
        let mut sum = 0.0;
        let mut term = 1.0; // A^0/0!
        for i in 1..=n {
            sum += term;
            term *= a / f64::from(i);
        }
        sum += term;
        term / sum
    }

    #[test]
    fn matches_naive_formula_small_n() {
        for &a in &[0.5, 1.0, 5.0, 12.0, 40.0] {
            for n in 0..=60u32 {
                let fast = blocking_probability(Erlangs(a), n);
                let slow = naive_erlang_b(a, n);
                assert!((fast - slow).abs() < 1e-10, "A={a} N={n}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn classic_tabulated_values() {
        // Values from standard Erlang-B tables.
        let cases = [
            // (A, N, B) — traffic, channels, blocking
            (1.0, 1, 0.5),
            (1.0, 2, 0.2),
            (2.0, 2, 0.4),
            (10.0, 10, 0.214625),
            (100.0, 100, 0.0757),
            (20.0, 30, 0.0085), // ~0.85%
        ];
        for (a, n, want) in cases {
            let got = blocking_probability(Erlangs(a), n);
            assert!(
                (got - want).abs() / want < 0.02,
                "A={a} N={n}: got {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn paper_anchor_values() {
        // Fig. 6 / Table I anchors: with N = 165 channels the model gives
        // ~4% at 160 E, ~21% at 200 E, ~31% at 240 E, and 1.8% at 150 E.
        let pb160 = blocking_probability(Erlangs(160.0), 165);
        let pb200 = blocking_probability(Erlangs(200.0), 165);
        let pb240 = blocking_probability(Erlangs(240.0), 165);
        let pb150 = blocking_probability(Erlangs(150.0), 165);
        assert!(pb160 > 0.02 && pb160 < 0.07, "pb160={pb160}");
        assert!(pb200 > 0.17 && pb200 < 0.24, "pb200={pb200}");
        assert!(pb240 > 0.28 && pb240 < 0.36, "pb240={pb240}");
        assert!((pb150 - 0.018).abs() < 0.01, "pb150={pb150}");
    }

    #[test]
    fn zero_load_and_zero_channels() {
        assert_eq!(blocking_probability(Erlangs(0.0), 0), 1.0);
        assert_eq!(blocking_probability(Erlangs(0.0), 10), 0.0);
        assert_eq!(blocking_probability(Erlangs(5.0), 0), 1.0);
    }

    #[test]
    fn invalid_load_is_nan_or_error() {
        assert!(blocking_probability(Erlangs(-1.0), 5).is_nan());
        assert!(blocking_probability(Erlangs(f64::NAN), 5).is_nan());
        assert_eq!(
            try_blocking_probability(Erlangs(-1.0), 5),
            Err(TrafficError::InvalidLoad)
        );
        assert!(try_blocking_probability(Erlangs(1.0), 5).is_ok());
    }

    #[test]
    fn huge_inputs_stay_finite() {
        let b = blocking_probability(Erlangs(50_000.0), 50_000);
        assert!(b.is_finite() && (0.0..=1.0).contains(&b));
        let b2 = blocking_probability(Erlangs(1e6), 1_000_000);
        assert!(b2.is_finite() && (0.0..=1.0).contains(&b2));
    }

    #[test]
    fn curve_matches_pointwise() {
        let a = Erlangs(37.5);
        let curve = blocking_curve(a, 80);
        assert_eq!(curve.len(), 81);
        for (n, &b) in curve.iter().enumerate() {
            let direct = blocking_probability(a, n as u32);
            assert!((b - direct).abs() < 1e-14, "n={n}");
        }
    }

    #[test]
    fn curve_zero_load() {
        let curve = blocking_curve(Erlangs(0.0), 4);
        assert_eq!(curve, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        let bad = blocking_curve(Erlangs(f64::NAN), 2);
        assert!(bad.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn channels_for_meets_target_tightly() {
        for &a in &[1.0, 10.0, 150.0, 240.0] {
            for &pb in &[0.001, 0.01, 0.05, 0.2] {
                let n = channels_for(Erlangs(a), pb).unwrap();
                assert!(blocking_probability(Erlangs(a), n) <= pb);
                if n > 0 {
                    // One fewer channel must violate the target (minimality).
                    assert!(blocking_probability(Erlangs(a), n - 1) > pb);
                }
            }
        }
    }

    #[test]
    fn channels_for_edge_cases() {
        assert_eq!(channels_for(Erlangs(0.0), 0.01), Ok(0));
        assert_eq!(
            channels_for(Erlangs(-1.0), 0.01),
            Err(TrafficError::InvalidLoad)
        );
        assert_eq!(
            channels_for(Erlangs(1.0), 0.0),
            Err(TrafficError::InvalidProbability)
        );
        assert_eq!(
            channels_for(Erlangs(1.0), 1.0),
            Err(TrafficError::InvalidProbability)
        );
    }

    #[test]
    fn load_for_inverts_blocking() {
        for &n in &[1u32, 10, 42, 165] {
            for &pb in &[0.01, 0.05, 0.21] {
                let a = load_for(n, pb).unwrap();
                let back = blocking_probability(a, n);
                assert!((back - pb).abs() < 1e-6, "n={n} pb={pb} back={back}");
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for &a in &[0.5, 10.0, 150.0, 240.0] {
            for &n in &[1u32, 10, 165] {
                let (b, d) = blocking_and_derivative(a, n);
                assert!((b - blocking_probability(Erlangs(a), n)).abs() < 1e-14);
                let h = 1e-6 * a.max(1.0);
                let fd = (blocking_probability(Erlangs(a + h), n)
                    - blocking_probability(Erlangs(a - h), n))
                    / (2.0 * h);
                assert!(
                    (d - fd).abs() < 1e-6 * d.abs().max(1e-9),
                    "A={a} N={n}: analytic {d} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn blocking_curve_struct_memoizes_lookups() {
        let curve = BlockingCurve::new(Erlangs(150.0), 170);
        assert_eq!(curve.max_channels(), 170);
        assert_eq!(curve.offered().value(), 150.0);
        for n in [0u32, 1, 160, 165, 170] {
            assert_eq!(
                curve.at(n).to_bits(),
                blocking_probability(Erlangs(150.0), n).to_bits(),
                "n={n}"
            );
        }
        assert!(curve.at(171).is_nan(), "beyond the curve");
        // Memoized channels_for agrees with the incremental walk.
        let n = curve.channels_for(0.02).unwrap();
        assert_eq!(n, channels_for(Erlangs(150.0), 0.02).unwrap());
        // An unreachable target inside the covered range.
        assert_eq!(
            BlockingCurve::new(Erlangs(500.0), 100).channels_for(0.01),
            None
        );
    }

    #[test]
    fn shared_curve_is_the_cold_curve_behind_one_arc() {
        let a = shared_curve(Erlangs(150.0), 170);
        let b = shared_curve(Erlangs(150.0), 170);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second call is a memo hit");
        let cold = BlockingCurve::new(Erlangs(150.0), 170);
        for n in 0..=170 {
            assert_eq!(a.at(n).to_bits(), cold.at(n).to_bits(), "n={n}");
        }
        // A last-ulp-different load is a different key, not a collision.
        let close = shared_curve(Erlangs(150.0 + f64::EPSILON * 256.0), 170);
        assert!(!std::sync::Arc::ptr_eq(&a, &close));
    }

    #[test]
    fn shared_load_for_matches_cold_solve() {
        let memo = shared_load_for(165, 0.01).unwrap();
        let cold = load_for(165, 0.01).unwrap();
        assert_eq!(memo.value().to_bits(), cold.value().to_bits());
        assert_eq!(shared_load_for(165, 0.01).unwrap().value(), memo.value());
        assert_eq!(
            shared_load_for(0, 0.05),
            Err(TrafficError::Unreachable),
            "errors memoize too"
        );
    }

    #[test]
    fn load_for_rejects_bad_inputs() {
        assert_eq!(load_for(0, 0.05), Err(TrafficError::Unreachable));
        assert_eq!(load_for(10, 0.0), Err(TrafficError::InvalidProbability));
        assert_eq!(load_for(10, 1.5), Err(TrafficError::InvalidProbability));
    }

    #[test]
    fn carried_traffic_and_utilisation() {
        // Light load: everything is carried.
        let c = carried_traffic(Erlangs(1.0), 100);
        assert!((c.value() - 1.0).abs() < 1e-9);
        // Heavy overload: carried traffic approaches the channel count.
        let c = carried_traffic(Erlangs(10_000.0), 100);
        assert!(c.value() < 100.0 && c.value() > 99.0);
        let u = utilisation(Erlangs(10_000.0), 100);
        assert!(u > 0.99 && u <= 1.0);
        assert_eq!(utilisation(Erlangs(5.0), 0), 0.0);
    }

    #[test]
    fn fig3_shape_more_channels_less_blocking() {
        // The property the paper reads off Fig. 3.
        for &a in &[20.0, 100.0, 240.0] {
            let curve = blocking_curve(Erlangs(a), 260);
            for w in curve.windows(2) {
                assert!(w[1] <= w[0] + 1e-15, "A={a}: not non-increasing");
            }
        }
        // And more load -> more blocking at fixed N.
        let n = 150;
        let mut prev = 0.0;
        for a in (20..=240).step_by(20) {
            let b = blocking_probability(Erlangs(f64::from(a)), n);
            assert!(b >= prev);
            prev = b;
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// B is always a probability.
        #[test]
        fn blocking_in_unit_interval(a in 0.0f64..5000.0, n in 0u32..3000) {
            let b = blocking_probability(Erlangs(a), n);
            prop_assert!((0.0..=1.0).contains(&b));
        }

        /// The defining recurrence B(A,n) = A·B(A,n−1)/(n + A·B(A,n−1)).
        #[test]
        fn recurrence_identity(a in 0.001f64..2000.0, n in 1u32..500) {
            let prev = blocking_probability(Erlangs(a), n - 1);
            let here = blocking_probability(Erlangs(a), n);
            let expect = a * prev / (f64::from(n) + a * prev);
            prop_assert!((here - expect).abs() < 1e-12);
        }

        /// Monotone non-increasing in N.
        #[test]
        fn monotone_in_channels(a in 0.0f64..2000.0, n in 0u32..1000) {
            let b0 = blocking_probability(Erlangs(a), n);
            let b1 = blocking_probability(Erlangs(a), n + 1);
            prop_assert!(b1 <= b0 + 1e-15);
        }

        /// Monotone non-decreasing in A.
        #[test]
        fn monotone_in_load(a in 0.0f64..1000.0, da in 0.0f64..100.0, n in 0u32..500) {
            let b0 = blocking_probability(Erlangs(a), n);
            let b1 = blocking_probability(Erlangs(a + da), n);
            prop_assert!(b1 >= b0 - 1e-15);
        }

        /// channels_for really is the minimal channel count.
        #[test]
        fn channels_for_minimality(a in 0.01f64..500.0, pb in 0.0005f64..0.5) {
            let n = channels_for(Erlangs(a), pb).unwrap();
            prop_assert!(blocking_probability(Erlangs(a), n) <= pb);
            if n > 0 {
                prop_assert!(blocking_probability(Erlangs(a), n - 1) > pb);
            }
        }

        /// load_for is a right inverse of blocking at fixed N.
        #[test]
        fn load_for_right_inverse(n in 1u32..400, pb in 0.001f64..0.9) {
            let a = load_for_tol(n, pb, 1e-10).unwrap();
            let back = blocking_probability(a, n);
            prop_assert!((back - pb).abs() < 1e-6);
        }

        /// Carried traffic can never exceed offered traffic nor channels.
        #[test]
        fn carried_bounds(a in 0.0f64..2000.0, n in 1u32..500) {
            let c = carried_traffic(Erlangs(a), n).value();
            prop_assert!(c <= a + 1e-9);
            prop_assert!(c <= f64::from(n) + 1e-9);
            prop_assert!(c >= -1e-12);
        }
    }
}
