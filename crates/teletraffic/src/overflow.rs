//! Overflow traffic and the equivalent random method (Wilkinson).
//!
//! The paper's other scaling alternative — "increasing the number of
//! servers" — raises a classical dimensioning question: traffic that
//! overflows a primary PBX is *peaked* (more bursty than Poisson), so a
//! secondary server sized with plain Erlang-B would be under-provisioned.
//! Wilkinson's equivalent random theory (ERT) handles this: characterise
//! the overflow by its mean and variance, find an "equivalent" Poisson
//! system producing the same overflow, and dimension the secondary group
//! inside that equivalent system.

use crate::erlang_b::blocking_probability;
use crate::error::TrafficError;
use crate::units::Erlangs;

/// First two moments of an overflow stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverflowMoments {
    /// Mean overflow intensity in Erlangs.
    pub mean: f64,
    /// Variance of the overflow intensity.
    pub variance: f64,
}

impl OverflowMoments {
    /// Peakedness `z = variance / mean` (1 for Poisson; overflow > 1).
    #[must_use]
    pub fn peakedness(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.variance / self.mean
        }
    }

    /// Superpose independent overflow streams (means and variances add).
    #[must_use]
    pub fn combine(streams: &[OverflowMoments]) -> OverflowMoments {
        let mean = streams.iter().map(|s| s.mean).sum();
        let variance = streams.iter().map(|s| s.variance).sum();
        OverflowMoments { mean, variance }
    }
}

/// Riordan's formulas: moments of the traffic overflowing `channels`
/// servers offered `a` Erlangs of Poisson traffic.
pub fn overflow_moments(a: Erlangs, channels: u32) -> Result<OverflowMoments, TrafficError> {
    if !a.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    let av = a.value();
    if av == 0.0 {
        return Ok(OverflowMoments {
            mean: 0.0,
            variance: 0.0,
        });
    }
    let b = blocking_probability(a, channels);
    let mean = av * b;
    let n = f64::from(channels);
    // Riordan: V = M (1 − M + A / (N + 1 + M − A)).
    let variance = mean * (1.0 - mean + av / (n + 1.0 + mean - av));
    Ok(OverflowMoments {
        mean,
        variance: variance.max(mean * 1e-12), // numeric floor
    })
}

/// Rapp's approximation for the equivalent random parameters `(A*, N*)`
/// of an overflow stream with the given moments: a fictitious Poisson
/// load `A*` offered to `N*` primary channels that would overflow with
/// the same mean and variance.
#[must_use]
pub fn equivalent_random(moments: OverflowMoments) -> (f64, f64) {
    let m = moments.mean;
    let z = moments.peakedness();
    let v = moments.variance;
    // Rapp: A* ≈ V + 3z(z − 1).
    let a_star = v + 3.0 * z * (z - 1.0);
    // N* from the mean-overflow relation, Rapp's closed form.
    let n_star = a_star * (m + z) / (m + z - 1.0) - m - 1.0;
    (a_star.max(m), n_star.max(0.0))
}

/// Channels a **secondary** group needs so that traffic overflowing the
/// given primary systems is itself blocked with probability ≤ `target_pb`.
///
/// `primaries` lists (offered load, channels) of each primary PBX whose
/// overflow is concentrated on the secondary.
pub fn secondary_channels_for(
    primaries: &[(Erlangs, u32)],
    target_pb: f64,
) -> Result<u32, TrafficError> {
    if !(target_pb > 0.0 && target_pb < 1.0) {
        return Err(TrafficError::InvalidProbability);
    }
    let mut streams = Vec::with_capacity(primaries.len());
    for &(a, n) in primaries {
        streams.push(overflow_moments(a, n)?);
    }
    let combined = OverflowMoments::combine(&streams);
    if combined.mean <= 0.0 {
        return Ok(0);
    }
    let (a_star, n_star) = equivalent_random(combined);
    // Grow the secondary group until the equivalent system's end-to-end
    // blocking, rescaled to the overflow stream, meets the target:
    // calls lost at (N* + k) channels relative to the overflow mean.
    let total_mean = combined.mean;
    let mut k = 0u32;
    loop {
        let total_channels = (n_star.ceil() as u32).saturating_add(k);
        let lost = a_star * blocking_probability(Erlangs(a_star), total_channels);
        let pb_on_overflow = lost / total_mean;
        if pb_on_overflow <= target_pb {
            return Ok(k);
        }
        k = k.checked_add(1).ok_or(TrafficError::Unreachable)?;
        if k > 1_000_000 {
            return Err(TrafficError::Unreachable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_overflow_without_load() {
        let m = overflow_moments(Erlangs(0.0), 10).unwrap();
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.peakedness(), 1.0);
        assert_eq!(
            secondary_channels_for(&[(Erlangs(0.0), 10)], 0.01).unwrap(),
            0
        );
    }

    #[test]
    fn overflow_mean_is_lost_traffic() {
        let a = Erlangs(150.0);
        let m = overflow_moments(a, 165).unwrap();
        let expect = 150.0 * blocking_probability(a, 165);
        assert!((m.mean - expect).abs() < 1e-9);
    }

    #[test]
    fn overflow_is_peaked() {
        // The defining property: overflow traffic has z > 1.
        for &(a, n) in &[(50.0, 45u32), (150.0, 140), (240.0, 165)] {
            let m = overflow_moments(Erlangs(a), n).unwrap();
            assert!(m.peakedness() > 1.0, "A={a} N={n}: z={}", m.peakedness());
        }
    }

    #[test]
    fn peakedness_grows_with_group_size_at_fixed_blocking() {
        // Overflow from a big group is burstier than from a small one at
        // comparable loss — the standard ERT intuition.
        let small = overflow_moments(Erlangs(5.0), 5).unwrap();
        let large = overflow_moments(Erlangs(100.0), 100).unwrap();
        assert!(large.peakedness() > small.peakedness());
    }

    #[test]
    fn equivalent_random_recovers_poisson_limit() {
        // A stream with z = 1 is Poisson: the equivalent system needs no
        // primary channels (N* ≈ 0) and A* ≈ mean.
        let m = OverflowMoments {
            mean: 10.0,
            variance: 10.0,
        };
        let (a_star, n_star) = equivalent_random(m);
        assert!((a_star - 10.0).abs() < 0.5, "A*={a_star}");
        assert!(n_star < 1.0, "N*={n_star}");
    }

    #[test]
    fn equivalent_random_reproduces_the_overflow() {
        // Round-trip: compute overflow of (A, N), find (A*, N*), verify
        // the equivalent system's overflow mean matches.
        let a = Erlangs(120.0);
        let n = 110u32;
        let m = overflow_moments(a, n).unwrap();
        let (a_star, n_star) = equivalent_random(m);
        let mean_star = a_star * blocking_probability(Erlangs(a_star), n_star.round() as u32);
        assert!(
            (mean_star - m.mean).abs() / m.mean < 0.15,
            "overflow mean {} vs equivalent {}",
            m.mean,
            mean_star
        );
    }

    #[test]
    fn combine_adds_moments() {
        let s1 = overflow_moments(Erlangs(100.0), 90).unwrap();
        let s2 = overflow_moments(Erlangs(80.0), 70).unwrap();
        let c = OverflowMoments::combine(&[s1, s2]);
        assert!((c.mean - (s1.mean + s2.mean)).abs() < 1e-12);
        assert!((c.variance - (s1.variance + s2.variance)).abs() < 1e-12);
    }

    #[test]
    fn secondary_dimensioning_beats_naive_erlang_b() {
        // Two overloaded 165-channel Asterisk servers overflow onto a
        // shared secondary. ERT must demand at least as many channels as
        // naively treating the overflow as Poisson (peaked traffic is
        // harder to serve).
        let primaries = [(Erlangs(200.0), 165u32), (Erlangs(190.0), 165u32)];
        let ert = secondary_channels_for(&primaries, 0.01).unwrap();
        let combined_mean: f64 = primaries
            .iter()
            .map(|&(a, n)| a.value() * blocking_probability(a, n))
            .sum();
        let naive = crate::erlang_b::channels_for(Erlangs(combined_mean), 0.01).unwrap();
        assert!(
            ert >= naive,
            "ERT {ert} must be >= naive Erlang-B {naive} for peaked traffic"
        );
        assert!(ert > 0);
        // And it must actually be enough in the equivalent model.
        assert!(ert < 200, "sane magnitude: {ert}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(overflow_moments(Erlangs(-1.0), 5).is_err());
        assert!(secondary_channels_for(&[(Erlangs(10.0), 5)], 0.0).is_err());
        assert!(secondary_channels_for(&[(Erlangs(10.0), 5)], 1.0).is_err());
    }
}
