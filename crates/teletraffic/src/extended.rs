//! Extended Erlang-B: blocked callers retry.
//!
//! Plain Erlang-B assumes blocked calls disappear. On a campus VoWiFi
//! deployment a blocked caller often simply redials, inflating the offered
//! load. The extended Erlang-B model (Jewett/"EEB") iterates the fixed
//! point: a fraction `recall` of blocked attempts is re-offered, so
//!
//! ```text
//! A_total = A_fresh + recall · B(A_total, N) · A_total
//! ```
//!
//! The paper's "effective call policy" discussion (§IV) is exactly about
//! containing this feedback loop; the ablation bench quantifies it.

use crate::erlang_b::blocking_probability;
use crate::error::TrafficError;
use crate::units::Erlangs;

/// Result of the extended Erlang-B fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedErlangB {
    /// Total offered load including retries, in Erlangs.
    pub total_offered: Erlangs,
    /// Blocking probability at the fixed point.
    pub blocking: f64,
    /// Number of fixed-point iterations performed.
    pub iterations: u32,
}

/// Solve the retry fixed point for fresh load `fresh`, `channels` servers,
/// and a `recall` probability in `[0, 1]` that a blocked caller retries.
///
/// Converges by damped iteration; returns an error if inputs are invalid or
/// the iteration fails to converge within `max_iter` (practically only for
/// `recall = 1` at overload, where the fixed point diverges).
pub fn extended_erlang_b(
    fresh: Erlangs,
    channels: u32,
    recall: f64,
    max_iter: u32,
) -> Result<ExtendedErlangB, TrafficError> {
    if !fresh.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    if !(0.0..=1.0).contains(&recall) || !recall.is_finite() {
        return Err(TrafficError::InvalidParameter("recall"));
    }
    let fresh_v = fresh.value();
    let mut total = fresh_v;
    let mut b = blocking_probability(Erlangs(total), channels);
    for it in 1..=max_iter {
        let next_total = fresh_v + recall * b * total;
        let next_b = blocking_probability(Erlangs(next_total), channels);
        // Damping keeps the iteration stable near saturation.
        let damped = 0.5 * (total + next_total);
        let converged = (damped - total).abs() < 1e-9 && (next_b - b).abs() < 1e-12;
        total = damped;
        b = blocking_probability(Erlangs(total), channels);
        if converged {
            return Ok(ExtendedErlangB {
                total_offered: Erlangs(total),
                blocking: b,
                iterations: it,
            });
        }
        let _ = next_b;
    }
    // recall < 1 always converges geometrically; recall == 1 can stall at
    // extreme overload. Surface the best estimate as Unreachable only if the
    // iteration is still moving materially.
    let residual = (fresh_v + recall * b * total - total).abs();
    if residual < 1e-6 * total.max(1.0) {
        Ok(ExtendedErlangB {
            total_offered: Erlangs(total),
            blocking: b,
            iterations: max_iter,
        })
    } else {
        Err(TrafficError::Unreachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_recall_is_plain_erlang_b() {
        let r = extended_erlang_b(Erlangs(150.0), 165, 0.0, 100).unwrap();
        let plain = blocking_probability(Erlangs(150.0), 165);
        assert!((r.blocking - plain).abs() < 1e-9);
        assert!((r.total_offered.value() - 150.0).abs() < 1e-6);
    }

    #[test]
    fn retries_increase_offered_load_and_blocking() {
        let plain = blocking_probability(Erlangs(200.0), 165);
        let r = extended_erlang_b(Erlangs(200.0), 165, 0.7, 500).unwrap();
        assert!(r.total_offered.value() > 200.0);
        assert!(r.blocking > plain);
    }

    #[test]
    fn light_load_unaffected() {
        // With essentially no blocking there is nothing to retry.
        let r = extended_erlang_b(Erlangs(40.0), 165, 0.9, 200).unwrap();
        assert!((r.total_offered.value() - 40.0).abs() < 1e-3);
        assert!(r.blocking < 1e-9);
    }

    #[test]
    fn fixed_point_self_consistent() {
        let fresh = 220.0;
        let recall = 0.5;
        let r = extended_erlang_b(Erlangs(fresh), 165, recall, 500).unwrap();
        let rhs = fresh + recall * r.blocking * r.total_offered.value();
        assert!(
            (r.total_offered.value() - rhs).abs() < 1e-4,
            "fixed point residual too large"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(extended_erlang_b(Erlangs(-1.0), 10, 0.5, 100).is_err());
        assert!(extended_erlang_b(Erlangs(1.0), 10, 1.5, 100).is_err());
        assert!(extended_erlang_b(Erlangs(1.0), 10, f64::NAN, 100).is_err());
    }

    #[test]
    fn monotone_in_recall() {
        let mut prev = 0.0;
        for recall in [0.0, 0.25, 0.5, 0.75, 0.95] {
            let r = extended_erlang_b(Erlangs(210.0), 165, recall, 1000).unwrap();
            assert!(r.blocking >= prev - 1e-9, "recall={recall}");
            prev = r.blocking;
        }
    }
}
