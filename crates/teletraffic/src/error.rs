//! Error type for the analytical solvers.

use core::fmt;

/// Errors produced by the inverse solvers and model constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficError {
    /// The offered load was negative, NaN or infinite.
    InvalidLoad,
    /// A probability argument fell outside `(0, 1)`.
    InvalidProbability,
    /// The requested target is unreachable (e.g. zero blocking with
    /// positive load requires infinitely many channels).
    Unreachable,
    /// A population/parameter constraint was violated (e.g. Engset with
    /// sources ≤ channels).
    InvalidParameter(&'static str),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidLoad => write!(f, "offered load must be finite and non-negative"),
            TrafficError::InvalidProbability => {
                write!(f, "probability must lie strictly between 0 and 1")
            }
            TrafficError::Unreachable => write!(f, "target is unreachable for these parameters"),
            TrafficError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for TrafficError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TrafficError::InvalidLoad.to_string().contains("load"));
        assert!(TrafficError::InvalidProbability
            .to_string()
            .contains("probability"));
        assert!(TrafficError::Unreachable
            .to_string()
            .contains("unreachable"));
        assert!(TrafficError::InvalidParameter("sources")
            .to_string()
            .contains("sources"));
    }
}
