//! Teletraffic analytics used throughout the capacity evaluation.
//!
//! This crate implements the analytical side of *"Asterisk PBX Capacity
//! Evaluation"* (IPDPSW 2015): the Erlang-B loss model (Eq. 2 of the paper)
//! together with the supporting machinery one needs to actually dimension a
//! PBX — traffic-unit conversions (Eq. 1), inverse solvers ("how many
//! channels for this load and target blocking?"), and the neighbouring
//! models (Erlang-C, Engset, extended Erlang-B with retries) that a
//! practitioner reaches for when the pure-loss assumptions do not hold.
//!
//! All formulas are computed with numerically stable recurrences — no
//! factorials are ever materialised, so loads of tens of thousands of
//! Erlangs and channel counts in the millions are handled without overflow.
//!
//! # Quick start
//!
//! ```
//! use teletraffic::{Erlangs, erlang_b};
//!
//! // The paper's headline back-of-envelope: a 3000-call busy hour with
//! // 3-minute calls offered to 165 channels blocks ~1.8% of calls.
//! let load = Erlangs::from_calls(3000.0, 180.0); // 3000 calls/h of 180 s
//! let pb = erlang_b::blocking_probability(load, 165);
//! assert!((pb - 0.018).abs() < 0.005);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engset;
pub mod erlang_b;
pub mod erlang_c;
pub mod error;
pub mod extended;
pub mod overflow;
pub mod units;

pub use engset::{engset_blocking, engset_blocking_large};
pub use erlang_b::{blocking_probability, channels_for, load_for, BlockingCurve};
pub use erlang_c::wait_probability;
pub use error::TrafficError;
pub use units::{CallRate, Erlangs, HoldingTime};
