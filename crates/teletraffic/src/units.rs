//! Traffic intensity units and conversions.
//!
//! The Erlang is the unit of telephone traffic intensity over one hour
//! (paper §III-A, Eq. 1):
//!
//! ```text
//! Erlang = calls_per_hour * duration_minutes / 60
//! ```
//!
//! One Erlang is one voice channel continuously occupied for one hour.

use serde::{Deserialize, Serialize};

/// Offered traffic intensity in Erlangs.
///
/// A thin, strongly-typed wrapper over `f64` so that loads, rates and
/// durations cannot be accidentally interchanged in the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Erlangs(pub f64);

/// Call arrival rate.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct CallRate {
    /// Calls per second.
    per_second: f64,
}

/// Mean call holding time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct HoldingTime {
    seconds: f64,
}

impl Erlangs {
    /// Offered load from a busy-hour call count and a mean call duration.
    ///
    /// This is Eq. 1 of the paper with the duration given in seconds:
    /// `A = (calls/h) * (duration_s / 3600)`.
    ///
    /// ```
    /// use teletraffic::Erlangs;
    /// // 3000 calls/hour of 3 minutes each = 150 Erlangs.
    /// assert_eq!(Erlangs::from_calls(3000.0, 180.0).value(), 150.0);
    /// ```
    #[must_use]
    pub fn from_calls(calls_per_hour: f64, duration_seconds: f64) -> Self {
        Erlangs(calls_per_hour * duration_seconds / 3600.0)
    }

    /// Offered load from an arrival rate and a mean holding time
    /// (`A = λ · h`, Little's law for the offered stream).
    #[must_use]
    pub fn from_rate(rate: CallRate, holding: HoldingTime) -> Self {
        Erlangs(rate.per_second * holding.seconds)
    }

    /// Offered load for a calling population: `A = pop · frac · d / 60` with
    /// `d` in minutes — the x-axis construction of the paper's Fig. 7.
    ///
    /// `fraction` is the share of the population placing a call during the
    /// busy hour (0.0..=1.0).
    #[must_use]
    pub fn from_population(population: u64, fraction: f64, duration_minutes: f64) -> Self {
        Erlangs(population as f64 * fraction * duration_minutes / 60.0)
    }

    /// The raw intensity value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The arrival rate implied by this load for a given holding time.
    #[must_use]
    pub fn rate_for(self, holding: HoldingTime) -> CallRate {
        CallRate::per_second(self.0 / holding.seconds)
    }

    /// True when the value is a usable traffic intensity (finite, ≥ 0).
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl CallRate {
    /// A rate expressed in calls per second.
    #[must_use]
    pub fn per_second(cps: f64) -> Self {
        CallRate { per_second: cps }
    }

    /// A rate expressed in calls per hour.
    #[must_use]
    pub fn per_hour(cph: f64) -> Self {
        CallRate {
            per_second: cph / 3600.0,
        }
    }

    /// Calls per second.
    #[must_use]
    pub fn calls_per_second(self) -> f64 {
        self.per_second
    }

    /// Calls per hour.
    #[must_use]
    pub fn calls_per_hour(self) -> f64 {
        self.per_second * 3600.0
    }

    /// Mean inter-arrival gap in seconds (∞ for a zero rate).
    #[must_use]
    pub fn mean_interarrival(self) -> f64 {
        1.0 / self.per_second
    }
}

impl HoldingTime {
    /// A holding time in seconds.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        HoldingTime { seconds }
    }

    /// A holding time in minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        HoldingTime {
            seconds: minutes * 60.0,
        }
    }

    /// Seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.seconds
    }

    /// Minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.seconds / 60.0
    }
}

impl core::ops::Add for Erlangs {
    type Output = Erlangs;
    fn add(self, rhs: Erlangs) -> Erlangs {
        Erlangs(self.0 + rhs.0)
    }
}

impl core::ops::Mul<f64> for Erlangs {
    type Output = Erlangs;
    fn mul(self, rhs: f64) -> Erlangs {
        Erlangs(self.0 * rhs)
    }
}

impl core::fmt::Display for Erlangs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3} E", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_of_the_paper() {
        // Erlang = calls/h * duration(min) / 60.
        let a = Erlangs::from_calls(60.0, 60.0); // 60 one-minute calls/hour
        assert!((a.value() - 1.0).abs() < 1e-12);
        let a = Erlangs::from_calls(3000.0, 180.0);
        assert!((a.value() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn rate_times_holding_is_load() {
        let rate = CallRate::per_second(0.5);
        let h = HoldingTime::from_seconds(120.0);
        let a = Erlangs::from_rate(rate, h);
        assert!((a.value() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn table1_arrival_rates() {
        // Table I: A Erlangs with h = 120 s over a 180 s window places 1.5·A
        // calls: λ = A/h, calls = λ·180.
        for a in [40.0, 80.0, 120.0, 160.0, 200.0, 240.0] {
            let rate = Erlangs(a).rate_for(HoldingTime::from_seconds(120.0));
            let calls = rate.calls_per_second() * 180.0;
            assert!((calls - 1.5 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn population_load_fig7_anchors() {
        // Fig. 7 anchors from the paper's narrative (population 8000, 60%):
        //   2.0 min -> 160 E, 2.5 min -> 200 E, 3.0 min -> 240 E.
        let e20 = Erlangs::from_population(8000, 0.60, 2.0);
        let e25 = Erlangs::from_population(8000, 0.60, 2.5);
        let e30 = Erlangs::from_population(8000, 0.60, 3.0);
        assert!((e20.value() - 160.0).abs() < 1e-9);
        assert!((e25.value() - 200.0).abs() < 1e-9);
        assert!((e30.value() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn unit_round_trips() {
        let r = CallRate::per_hour(3600.0);
        assert!((r.calls_per_second() - 1.0).abs() < 1e-12);
        assert!((r.calls_per_hour() - 3600.0).abs() < 1e-9);
        assert!((r.mean_interarrival() - 1.0).abs() < 1e-12);
        let h = HoldingTime::from_minutes(2.0);
        assert!((h.seconds() - 120.0).abs() < 1e-12);
        assert!((h.minutes() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_display() {
        let a = Erlangs(1.5) + Erlangs(2.5);
        assert!((a.value() - 4.0).abs() < 1e-12);
        let b = Erlangs(2.0) * 3.0;
        assert!((b.value() - 6.0).abs() < 1e-12);
        assert_eq!(format!("{}", Erlangs(1.0)), "1.000 E");
    }

    #[test]
    fn validity() {
        assert!(Erlangs(0.0).is_valid());
        assert!(Erlangs(1e9).is_valid());
        assert!(!Erlangs(-1.0).is_valid());
        assert!(!Erlangs(f64::NAN).is_valid());
        assert!(!Erlangs(f64::INFINITY).is_valid());
    }
}
