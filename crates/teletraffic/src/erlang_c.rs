//! The Erlang-C delay model.
//!
//! Where Erlang-B models a *loss* system (blocked calls vanish — the PBX
//! case studied in the paper), Erlang-C models a *delay* system in which
//! blocked arrivals queue. It is included because contact-centre
//! dimensioning (the paper cites Angus's classic introduction to both
//! models) routinely needs the pair, and because the comparison makes a
//! useful ablation: the same offered load produces very different channel
//! requirements under the two disciplines.

use crate::erlang_b::blocking_probability;
use crate::error::TrafficError;
use crate::units::Erlangs;

/// Probability that an arriving call must wait, `C(A, N)`.
///
/// Computed from Erlang-B via the standard identity
/// `C = N·B / (N − A·(1 − B))`, valid for `A < N` (a stable queue).
/// For `A ≥ N` the queue is unstable and every call waits: returns `1.0`.
///
/// ```
/// use teletraffic::{erlang_c, Erlangs};
/// let c = erlang_c::wait_probability(Erlangs(8.0), 10);
/// assert!(c > 0.0 && c < 1.0);
/// ```
#[must_use]
pub fn wait_probability(a: Erlangs, channels: u32) -> f64 {
    let av = a.value();
    if !(av.is_finite() && av >= 0.0) {
        return f64::NAN;
    }
    if channels == 0 {
        return 1.0;
    }
    if av == 0.0 {
        return 0.0;
    }
    let n = f64::from(channels);
    if av >= n {
        return 1.0;
    }
    let b = blocking_probability(a, channels);
    let denom = n - av * (1.0 - b);
    (n * b / denom).clamp(0.0, 1.0)
}

/// Mean waiting time in the queue (seconds) for mean holding time
/// `holding_s` seconds: `W = C(A,N) · h / (N − A)`.
///
/// Returns `f64::INFINITY` for an unstable queue (`A ≥ N`).
#[must_use]
pub fn mean_wait(a: Erlangs, channels: u32, holding_s: f64) -> f64 {
    let av = a.value();
    let n = f64::from(channels);
    if av >= n {
        return f64::INFINITY;
    }
    wait_probability(a, channels) * holding_s / (n - av)
}

/// Probability a call waits longer than `t` seconds:
/// `P(W > t) = C(A,N) · exp(−(N − A)·t/h)`.
#[must_use]
pub fn wait_exceeds(a: Erlangs, channels: u32, holding_s: f64, t: f64) -> f64 {
    let av = a.value();
    let n = f64::from(channels);
    if av >= n {
        return 1.0;
    }
    wait_probability(a, channels) * (-(n - av) * t / holding_s).exp()
}

/// Smallest `N` with service level `P(W ≤ t) ≥ level` — the "80% answered
/// within 20 s" style contact-centre target.
pub fn channels_for_service_level(
    a: Erlangs,
    holding_s: f64,
    t: f64,
    level: f64,
) -> Result<u32, TrafficError> {
    if !a.is_valid() {
        return Err(TrafficError::InvalidLoad);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(TrafficError::InvalidProbability);
    }
    if !(holding_s > 0.0 && t >= 0.0) {
        return Err(TrafficError::InvalidParameter("holding/t"));
    }
    let av = a.value();
    let mut n = av.floor() as u32 + 1; // queue must be stable
    loop {
        if 1.0 - wait_exceeds(a, n, holding_s, t) >= level {
            return Ok(n);
        }
        n = n.checked_add(1).ok_or(TrafficError::Unreachable)?;
        if f64::from(n) > av * 16.0 + 1e6 {
            return Err(TrafficError::Unreachable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // A classic check: A = 2 E, N = 3 -> C ≈ 0.4444.
        let c = wait_probability(Erlangs(2.0), 3);
        assert!((c - 4.0 / 9.0).abs() < 1e-9, "c={c}");
    }

    #[test]
    fn unstable_queue_always_waits() {
        assert_eq!(wait_probability(Erlangs(10.0), 10), 1.0);
        assert_eq!(wait_probability(Erlangs(12.0), 10), 1.0);
        assert!(mean_wait(Erlangs(12.0), 10, 120.0).is_infinite());
        assert_eq!(wait_exceeds(Erlangs(12.0), 10, 120.0, 10.0), 1.0);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(wait_probability(Erlangs(0.0), 5), 0.0);
        assert_eq!(wait_probability(Erlangs(1.0), 0), 1.0);
        assert!(wait_probability(Erlangs(f64::NAN), 5).is_nan());
    }

    #[test]
    fn erlang_c_geq_erlang_b() {
        // Queueing can only make waiting/blocking more likely than loss.
        for &a in &[1.0, 5.0, 20.0, 80.0] {
            for n in (a as u32 + 1)..(a as u32 + 40) {
                let b = blocking_probability(Erlangs(a), n);
                let c = wait_probability(Erlangs(a), n);
                assert!(c >= b - 1e-12, "A={a} N={n}: C={c} < B={b}");
            }
        }
    }

    #[test]
    fn mean_wait_decreases_with_channels() {
        let mut prev = f64::INFINITY;
        for n in 9..30u32 {
            let w = mean_wait(Erlangs(8.0), n, 180.0);
            assert!(w <= prev);
            prev = w;
        }
    }

    #[test]
    fn service_level_solver() {
        // 150 E, 3-minute calls, 80% answered within 20 s.
        let n = channels_for_service_level(Erlangs(150.0), 180.0, 20.0, 0.8).unwrap();
        assert!(n > 150, "queue must be stable: {n}");
        let achieved = 1.0 - wait_exceeds(Erlangs(150.0), n, 180.0, 20.0);
        assert!(achieved >= 0.8);
        // Minimality.
        let below = 1.0 - wait_exceeds(Erlangs(150.0), n - 1, 180.0, 20.0);
        assert!(below < 0.8);
    }

    #[test]
    fn service_level_rejects_bad_inputs() {
        assert!(channels_for_service_level(Erlangs(-1.0), 180.0, 20.0, 0.8).is_err());
        assert!(channels_for_service_level(Erlangs(1.0), 180.0, 20.0, 1.0).is_err());
        assert!(channels_for_service_level(Erlangs(1.0), 0.0, 20.0, 0.8).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn wait_probability_in_unit_interval(a in 0.0f64..500.0, n in 0u32..600) {
            let c = wait_probability(Erlangs(a), n);
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn exceedance_decreases_in_t(a in 0.1f64..100.0, n in 1u32..200, t in 0.0f64..300.0) {
            prop_assume!(a < f64::from(n));
            let p1 = wait_exceeds(Erlangs(a), n, 120.0, t);
            let p2 = wait_exceeds(Erlangs(a), n, 120.0, t + 1.0);
            prop_assert!(p2 <= p1 + 1e-12);
        }
    }
}
