//! Call holding-time (conversation duration) distributions.
//!
//! The paper's empirical method fixes `h = 120 s` ("a dialogue between
//! end-points without moments of idleness"); the analytical model only
//! needs the mean. Exponential and lognormal laws are provided for the
//! sensitivity ablation — Erlang-B is famously insensitive to the holding
//! distribution beyond its mean, and the ablation bench demonstrates it.

use des::rng::Distributions;
use des::{SimDuration, StreamRng};

/// A holding-time law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HoldingDist {
    /// Every call lasts exactly this long (the paper's setting).
    Fixed(f64),
    /// Exponential with the given mean (the Erlang-B textbook assumption).
    Exponential(f64),
    /// Lognormal with the given mean and standard deviation (empirically
    /// the best fit to real conversation lengths).
    Lognormal {
        /// Mean duration in seconds.
        mean: f64,
        /// Standard deviation in seconds.
        sd: f64,
    },
}

impl HoldingDist {
    /// The distribution's mean in seconds.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            HoldingDist::Fixed(m) | HoldingDist::Exponential(m) => *m,
            HoldingDist::Lognormal { mean, .. } => *mean,
        }
    }

    /// Sample one holding time.
    pub fn sample(&self, rng: &mut StreamRng) -> SimDuration {
        let secs = match self {
            HoldingDist::Fixed(m) => *m,
            HoldingDist::Exponential(m) => rng.exp_mean(*m),
            HoldingDist::Lognormal { mean, sd } => rng.lognormal_mean_sd(*mean, *sd),
        };
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let d = HoldingDist::Fixed(120.0);
        let mut rng = StreamRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_secs(120));
        }
        assert_eq!(d.mean(), 120.0);
    }

    #[test]
    fn exponential_mean() {
        let d = HoldingDist::Exponential(120.0);
        let mut rng = StreamRng::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n)
            .map(|_| d.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 120.0).abs() / 120.0 < 0.02, "mean={mean}");
        assert_eq!(d.mean(), 120.0);
    }

    #[test]
    fn lognormal_mean_and_positivity() {
        let d = HoldingDist::Lognormal {
            mean: 180.0,
            sd: 90.0,
        };
        let mut rng = StreamRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng).as_secs_f64()).collect();
        assert!(samples.iter().all(|&s| s >= 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 180.0).abs() / 180.0 < 0.03, "mean={mean}");
        assert_eq!(d.mean(), 180.0);
    }
}
