//! SIPp-style SIP load generation.
//!
//! The paper drives its testbed with SIPp v3.3: one machine runs the UAC
//! scenario (place calls at rate λ, hold for `h` seconds, hang up) and one
//! the UAS scenario (ring, answer, wait for the BYE). This crate implements
//! both scenario engines plus the stochastic machinery around them:
//!
//! * [`arrivals`] — Poisson / deterministic / MMPP call arrival processes;
//! * [`holding`] — fixed / exponential / lognormal holding-time laws;
//! * [`uac`] — the caller state machine (INVITE → ACK → … → BYE);
//! * [`uas`] — the callee state machine (180 → 200 → wait BYE);
//! * [`journal`] — per-run accounting of attempts, outcomes and SIP
//!   message counts (the raw material of the paper's Table I).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod holding;
pub mod journal;
pub mod population;
pub mod scenario;
pub mod uac;
pub mod uas;

pub use arrivals::ArrivalProcess;
pub use holding::HoldingDist;
pub use journal::{CallOutcome, Journal, MsgDirection};
pub use population::{Arrival, ChurnWheel, DiurnalProfile, PopulationArrivals, PopulationConfig};
pub use scenario::{CallContext, Scenario, ScenarioOutput, ScenarioRunner, Step};
pub use uac::{parse_retry_after, Pacer, PacerMode, RetryPolicy, Uac, UacEvent};
pub use uas::{Uas, UasEvent};
