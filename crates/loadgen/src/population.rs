//! Finite-source population workload engine — a million subscribers
//! without a million timers.
//!
//! The paper dimensions an 8 000-user campus; scaling that planning
//! story to 10⁶⁺ subscribers breaks any generator that prices its state
//! per *user* (one exponential timer, one map entry, one string each).
//! This module prices the workload per *active call* instead, in three
//! pieces:
//!
//! 1. **Aggregated Engset arrivals.** With `I` idle users each calling
//!    at rate `λ`, the superposition of their `I` independent
//!    exponential clocks is a single exponential clock of rate `I·λ`,
//!    and the identity of the next caller is uniform over the idle set.
//!    So instead of `I` timers the engine keeps the idle *count* and
//!    schedules ONE next-arrival event drawn as `Exp(I·λ)` — O(1) per
//!    arrival and exact in distribution. Every call start/end changes
//!    `I`, which invalidates the pending draw via a
//!    [`des::Generation`] counter; because the exponential is
//!    memoryless, re-sampling from "now" after an invalidation is also
//!    exact, not an approximation.
//!
//! 2. **Diurnal shaping.** A piecewise-constant [`DiurnalProfile`]
//!    multiplies `λ` through the day. Non-homogeneous arrivals are
//!    drawn by Lewis–Shedler thinning: candidates at the profile's peak
//!    rate, each accepted with probability `φ(t)/φ_max`. Thinning only
//!    reads the candidate time and one uniform per candidate, so the
//!    draw sequence — and therefore every digest — is identical across
//!    scheduler backends and shard thread counts.
//!
//! 3. **A per-user reference engine** ([`PopulationConfig::reference`])
//!    that *does* materialize every idle user's clock, for the repo's
//!    reference-vs-fast-path discipline. It consumes the same shared
//!    draws as the aggregated engine — gap and winner — and then
//!    realizes the remaining users' clocks from the conditional law
//!    given that minimum (losers at `t + Exp`, drawn from a private
//!    decoy stream), re-derives the arrival as the argmin over all
//!    idle clocks, and asserts it equals the aggregated draw. The
//!    shared-stream consumption is identical in both modes, so the two
//!    engines are bit-identical by construction *and* the assertion
//!    machine-checks the superposition argument on every arrival — at
//!    O(population) memory and work per event, which is exactly the
//!    cost the aggregated engine exists to avoid. Keep it to small
//!    populations.
//!
//! Registration churn rides the same O(active) philosophy: the
//! [`ChurnWheel`] maps wheel ticks to *contiguous rank ranges* of the
//! population (user of rank `r` re-REGISTERs at phase `r·expiry/count`),
//! so "who is due now" is two integer divisions, not a heap of 10⁶
//! timers.

use des::rng::Distributions;
use des::{GenTag, Generation, SimDuration, SimTime, StreamRng};
use serde::{Deserialize, Serialize};

/// A piecewise-constant daily (or any-period) arrival-rate profile.
///
/// Segment `k` of `n` covers `[k·P/n, (k+1)·P/n)` of each period `P` and
/// scales the per-user call rate by `multipliers[k]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    multipliers: Vec<f64>,
    period_s: f64,
}

impl DiurnalProfile {
    /// A profile over `period_s` seconds with the given per-segment
    /// multipliers.
    ///
    /// # Panics
    /// If the period is not positive, no segment is given, any
    /// multiplier is negative/non-finite, or all multipliers are zero
    /// (thinning would never accept).
    #[must_use]
    pub fn new(period_s: f64, multipliers: Vec<f64>) -> Self {
        assert!(period_s > 0.0 && period_s.is_finite(), "positive period");
        assert!(!multipliers.is_empty(), "at least one segment");
        assert!(
            multipliers.iter().all(|m| m.is_finite() && *m >= 0.0),
            "multipliers must be finite and non-negative"
        );
        assert!(
            multipliers.iter().any(|m| *m > 0.0),
            "at least one segment must have positive rate"
        );
        DiurnalProfile {
            multipliers,
            period_s,
        }
    }

    /// The flat profile: multiplier 1.0 at all times (pure Engset).
    #[must_use]
    pub fn flat() -> Self {
        DiurnalProfile::new(86_400.0, vec![1.0])
    }

    /// A stylized campus day in 24 hourly segments: quiet overnight, a
    /// morning busy hour peaking at 10:00 with the classic secondary
    /// afternoon hump — the double-peak shape of institutional telephone
    /// traffic. Peak multiplier is 1.0 so `per_user_rate` reads directly
    /// as the busy-hour rate.
    #[must_use]
    pub fn campus_day() -> Self {
        DiurnalProfile::new(
            86_400.0,
            vec![
                0.02, 0.01, 0.01, 0.01, 0.02, 0.05, // 00-06
                0.15, 0.40, 0.75, 0.95, 1.00, 0.90, // 06-12
                0.70, 0.80, 0.90, 0.85, 0.70, 0.50, // 12-18
                0.35, 0.25, 0.18, 0.12, 0.08, 0.04, // 18-24
            ],
        )
    }

    /// Like [`DiurnalProfile::campus_day`] but compressed into
    /// `period_s` seconds — a whole synthetic "day" inside a short
    /// simulation window, so smoke runs and benches still exercise the
    /// thinning sampler across rate changes.
    #[must_use]
    pub fn campus_day_compressed(period_s: f64) -> Self {
        DiurnalProfile::new(period_s, DiurnalProfile::campus_day().multipliers)
    }

    /// The rate multiplier in force at simulation time `t`.
    #[must_use]
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        let phase = (t.as_secs_f64() / self.period_s).fract();
        // `fract` of a non-negative finite value is in [0, 1); the index
        // is clamped anyway against the = 1.0 rounding corner.
        let idx =
            ((phase * self.multipliers.len() as f64) as usize).min(self.multipliers.len() - 1);
        self.multipliers[idx]
    }

    /// The largest multiplier — the thinning envelope `φ_max`.
    #[must_use]
    pub fn max_multiplier(&self) -> f64 {
        self.multipliers.iter().fold(0.0_f64, |a, &b| a.max(b))
    }

    /// The profile period in seconds.
    #[must_use]
    pub fn period_s(&self) -> f64 {
        self.period_s
    }
}

/// Configuration of a finite-source population workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Total subscriber population `N`.
    pub subscribers: u64,
    /// Per-idle-user call rate `λ` (calls/second) at profile
    /// multiplier 1.0.
    pub per_user_rate: f64,
    /// Diurnal rate shaping.
    pub profile: DiurnalProfile,
    /// Run the O(population) per-user-timer reference engine instead of
    /// the aggregated sampler. Bit-identical digests by construction;
    /// only sane at small `N`.
    pub reference: bool,
    /// Registration expiry — every subscriber re-REGISTERs once per this
    /// interval, phase-staggered across the population.
    pub reg_expiry_s: f64,
    /// Expiry-wheel buckets per expiry period: one churn event per
    /// bucket re-registers the bucket's contiguous rank range.
    pub churn_buckets: u32,
    /// First global user ordinal this engine drives: the engine's local
    /// ranks `0..subscribers` name global users `first_user ..
    /// first_user+subscribers`. Zero for a whole-population engine;
    /// partitioned runners hand each shard a contiguous slice.
    pub first_user: u64,
}

impl PopulationConfig {
    /// A flat-profile population of `subscribers` users calling at
    /// `per_user_rate` calls/s each while idle.
    #[must_use]
    pub fn new(subscribers: u64, per_user_rate: f64) -> Self {
        PopulationConfig {
            subscribers,
            per_user_rate,
            profile: DiurnalProfile::flat(),
            reference: false,
            reg_expiry_s: 3600.0,
            churn_buckets: 256,
            first_user: 0,
        }
    }

    /// The contiguous slice of this population owned by shard `k` of
    /// `shards`: block `k` covers global ranks `[k·N/s, (k+1)·N/s)`.
    /// Together with [`PopulationConfig::shard_of`] this is the homing
    /// rule partitioned runners use to split registration churn and
    /// call placement without per-user routing tables.
    #[must_use]
    pub fn slice(&self, k: usize, shards: usize) -> Self {
        let (k, shards) = (k as u64, shards.max(1) as u64);
        // Ceiling division, so block k is exactly the preimage of
        // `shard_of`'s ⌊r·s/N⌋ — they stay inverse even when N < s.
        let lo = (k * self.subscribers).div_ceil(shards);
        let hi = ((k + 1) * self.subscribers).div_ceil(shards);
        let mut sub = self.clone();
        sub.first_user = self.first_user + lo;
        sub.subscribers = hi - lo;
        sub
    }

    /// Which of `shards` contiguous blocks owns local rank `r` — the
    /// inverse of [`PopulationConfig::slice`].
    #[must_use]
    pub fn shard_of(&self, rank: u64, shards: usize) -> usize {
        debug_assert!(rank < self.subscribers);
        ((rank as u128 * shards.max(1) as u128) / u128::from(self.subscribers)) as usize
    }

    /// A population sized to offer `erlangs` of busy-hour traffic given
    /// a mean holding time: `λ = A / (N·h)` (the infinite-source
    /// approximation of the Engset intensity, which is what "offered
    /// load" means in the paper's Table I cells).
    #[must_use]
    pub fn for_offered_load(subscribers: u64, erlangs: f64, holding_mean_s: f64) -> Self {
        let rate = erlangs / (subscribers as f64 * holding_mean_s);
        PopulationConfig::new(subscribers, rate)
    }
}

/// One drawn arrival: when, who, and the generation stamp that decides
/// whether the scheduled event is still live when it surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant.
    pub at: SimTime,
    /// The calling user (ordinal in `0..subscribers`).
    pub user: u64,
    /// Stamp for [`PopulationArrivals::claim`] / staleness checks.
    pub tag: GenTag,
}

/// The finite-source arrival engine (aggregated fast path, optional
/// per-user reference).
///
/// Protocol: the owner schedules the [`Arrival`] returned by
/// [`PopulationArrivals::next_arrival`] as an event carrying its `tag`.
/// When the event surfaces, [`PopulationArrivals::claim`] either
/// confirms it (marking the user busy and returning who calls) or
/// reports it stale — a logically cancelled timer to discard. Any state
/// change ([`PopulationArrivals::call_ended`], or claiming itself)
/// invalidates outstanding tags, after which the owner draws and
/// schedules a fresh arrival.
#[derive(Debug)]
pub struct PopulationArrivals {
    n: u64,
    rate: f64,
    profile: DiurnalProfile,
    /// Busy users, sorted ascending — the O(active calls) state the
    /// whole engine runs on.
    busy: Vec<u64>,
    generation: Generation,
    pending: Option<(SimTime, u64)>,
    reference: Option<ReferenceEngine>,
}

/// The per-user-timer reference: every idle user's next-call clock,
/// materialized. See the module docs for the conditional-coupling
/// construction that keeps it bit-identical to the aggregated engine.
#[derive(Debug)]
struct ReferenceEngine {
    /// Private stream for the loser clocks — never touches the shared
    /// stream, so consuming it cannot skew the coupled draws.
    decoy: StreamRng,
    /// Clock table, `clocks[user]` = that user's next-call instant
    /// (stale for busy users). O(population) — the point of the
    /// reference.
    clocks: Vec<f64>,
}

impl PopulationArrivals {
    /// An engine over `cfg` with every user idle. `decoy_seed` feeds the
    /// reference engine's private stream (ignored in aggregated mode —
    /// pass anything).
    #[must_use]
    pub fn new(cfg: &PopulationConfig, decoy_seed: u64) -> Self {
        assert!(cfg.subscribers > 0, "population must be non-empty");
        assert!(
            cfg.per_user_rate.is_finite() && cfg.per_user_rate > 0.0,
            "per-user rate must be positive"
        );
        let reference = cfg.reference.then(|| ReferenceEngine {
            decoy: StreamRng::seed_from_u64(decoy_seed),
            clocks: vec![0.0; usize::try_from(cfg.subscribers).expect("usize population")],
        });
        PopulationArrivals {
            n: cfg.subscribers,
            rate: cfg.per_user_rate,
            profile: cfg.profile.clone(),
            busy: Vec::new(),
            generation: Generation::new(),
            pending: None,
            reference,
        }
    }

    /// Total population.
    #[must_use]
    pub fn subscribers(&self) -> u64 {
        self.n
    }

    /// Users currently idle (candidates to call).
    #[must_use]
    pub fn idle(&self) -> u64 {
        self.n - self.busy.len() as u64
    }

    /// Users currently in a call.
    #[must_use]
    pub fn active(&self) -> u64 {
        self.busy.len() as u64
    }

    /// Is this stamp still the live schedule?
    #[must_use]
    pub fn is_live(&self, tag: GenTag) -> bool {
        self.generation.is_current(tag)
    }

    /// Draw the next arrival after `now` and arm it. Supersedes any
    /// outstanding arrival (their tags go stale). Returns `None` when
    /// every user is busy — the next [`PopulationArrivals::call_ended`]
    /// is the moment to draw again.
    pub fn next_arrival(&mut self, now: SimTime, rng: &mut StreamRng) -> Option<Arrival> {
        let idle = self.idle();
        if idle == 0 {
            self.pending = None;
            // Outstanding events (if any) must not fire against the new
            // empty idle set.
            self.generation.invalidate();
            return None;
        }
        // Lewis–Shedler thinning at the envelope rate `idle·λ·φ_max`:
        // candidate gaps are exponential at the peak rate; each candidate
        // is kept with probability φ(t)/φ_max. Exact for the
        // piecewise-constant profile, and consumes only (gap, uniform)
        // pairs from the shared stream — identical in both engine modes.
        let phi_max = self.profile.max_multiplier();
        let envelope = idle as f64 * self.rate * phi_max;
        let mut at = now;
        loop {
            at += SimDuration::from_secs_f64(rng.exp_mean(1.0 / envelope));
            if rng.unit_f64() * phi_max <= self.profile.multiplier_at(at) {
                break;
            }
        }
        // The caller's identity: uniform over the idle set, addressed as
        // "the k-th smallest idle ordinal" so both engines (and every
        // backend) agree on who it is without materializing the set.
        let k = rng.below(idle);
        let user = self.kth_idle(k);
        let tag = self.generation.invalidate();
        self.pending = Some((at, user));
        if let Some(reference) = &mut self.reference {
            reference.realize_and_check(&self.busy, self.n, self.rate, &self.profile, at, user);
        }
        Some(Arrival { at, user, tag })
    }

    /// Confirm a surfacing arrival event: if `tag` is live, mark its
    /// user busy and return who calls; a stale tag returns `None` (the
    /// event was logically cancelled — discard it without effect).
    pub fn claim(&mut self, tag: GenTag) -> Option<u64> {
        if !self.generation.is_current(tag) {
            return None;
        }
        let (_, user) = self
            .pending
            .take()
            .expect("live tag implies a pending arrival");
        self.mark_busy(user);
        self.generation.invalidate();
        Some(user)
    }

    /// A call ended (completed, abandoned, or blocked-and-gave-up): the
    /// user rejoins the idle set and outstanding arrival draws go stale
    /// — re-draw via [`PopulationArrivals::next_arrival`]. Memorylessness
    /// makes the re-draw exact. No-op if the user was not busy.
    pub fn call_ended(&mut self, user: u64) {
        if let Ok(pos) = self.busy.binary_search(&user) {
            self.busy.remove(pos);
            self.pending = None;
            self.generation.invalidate();
        }
    }

    fn mark_busy(&mut self, user: u64) {
        if let Err(pos) = self.busy.binary_search(&user) {
            self.busy.insert(pos, user);
        }
    }

    /// The `k`-th smallest idle ordinal (0-based), in O(active calls):
    /// walk the sorted busy list, shifting the candidate up past every
    /// busy ordinal at or below it.
    fn kth_idle(&self, k: u64) -> u64 {
        debug_assert!(k < self.idle());
        let mut user = k;
        for &b in &self.busy {
            if b <= user {
                user += 1;
            } else {
                break;
            }
        }
        user
    }
}

impl ReferenceEngine {
    /// Realize a full per-user clock table consistent with the coupled
    /// draw `(at, winner)` — the winner's clock at the drawn instant,
    /// every idle loser's clock beyond it per the conditional law given
    /// the minimum — then re-derive the arrival from the table's minimum
    /// and check it. This is the O(population) work and memory the
    /// aggregated engine replaces; the assertion is the superposition
    /// theorem, machine-checked per arrival.
    fn realize_and_check(
        &mut self,
        busy: &[u64],
        n: u64,
        rate: f64,
        profile: &DiurnalProfile,
        at: SimTime,
        winner: u64,
    ) {
        let at_s = at.as_secs_f64();
        // Conditional residual rate for losers at the arrival instant.
        let loser_rate = rate * profile.multiplier_at(at).max(f64::MIN_POSITIVE);
        let mut bi = 0usize;
        for user in 0..n {
            // Skip busy users (their clocks are meaningless until they
            // hang up); `busy` is sorted so this merge walk is O(n).
            if bi < busy.len() && busy[bi] == user {
                self.clocks[user as usize] = f64::INFINITY;
                bi += 1;
                continue;
            }
            self.clocks[user as usize] = if user == winner {
                at_s
            } else {
                at_s + self.decoy.exp_mean(1.0 / loser_rate)
            };
        }
        // Re-derive the arrival from per-user state: the minimum clock.
        let mut min_clock = f64::INFINITY;
        for &c in &self.clocks {
            min_clock = min_clock.min(c);
        }
        assert_eq!(
            min_clock.to_bits(),
            at_s.to_bits(),
            "reference per-user heap minimum diverged from the aggregated draw"
        );
        assert_eq!(
            self.clocks[winner as usize].to_bits(),
            at_s.to_bits(),
            "winner's clock must be the minimum"
        );
    }
}

/// Deterministic-phase registration expiry wheel.
///
/// Subscriber of rank `r` (within the homed set of `count` users)
/// re-REGISTERs at phases `r·expiry/count (mod expiry)` — a uniform
/// stagger, which is both what deployed fleets converge to and the
/// reason the wheel needs no per-user state: tick `t` of the wheel owes
/// exactly the contiguous rank range [`ChurnWheel::due_range`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnWheel {
    count: u64,
    buckets: u32,
    tick_ns: u64,
}

impl ChurnWheel {
    /// A wheel over `count` homed subscribers with `buckets` ticks per
    /// `expiry` period. Zero-subscriber wheels are legal (never due).
    #[must_use]
    pub fn new(count: u64, expiry: SimDuration, buckets: u32) -> Self {
        let buckets = buckets.max(1);
        ChurnWheel {
            count,
            buckets,
            tick_ns: (expiry.as_nanos() / u64::from(buckets)).max(1),
        }
    }

    /// The wheel's tick period.
    #[must_use]
    pub fn tick_period(&self) -> SimDuration {
        SimDuration::from_nanos(self.tick_ns)
    }

    /// Ranks due for re-REGISTER at tick `tick` (ticks count from 0 at
    /// t = 0; the range is empty only when the bucket owns no ranks).
    #[must_use]
    pub fn due_range(&self, tick: u64) -> std::ops::Range<u64> {
        let b = tick % u64::from(self.buckets);
        let lo = b * self.count / u64::from(self.buckets);
        let hi = (b + 1) * self.count / u64::from(self.buckets);
        lo..hi
    }

    /// Expected re-REGISTERs per second across the whole homed set.
    #[must_use]
    pub fn steady_rate(&self) -> f64 {
        self.count as f64 / (self.tick_ns as f64 * f64::from(self.buckets) / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StreamRng {
        StreamRng::seed_from_u64(seed)
    }

    #[test]
    fn profile_segments_and_envelope() {
        let p = DiurnalProfile::new(100.0, vec![0.5, 1.0, 2.0, 1.0]);
        assert_eq!(p.multiplier_at(SimTime::from_secs(10)), 0.5);
        assert_eq!(p.multiplier_at(SimTime::from_secs(30)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(60)), 2.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(99)), 1.0);
        // Periodicity.
        assert_eq!(p.multiplier_at(SimTime::from_secs(110)), 0.5);
        assert_eq!(p.max_multiplier(), 2.0);
        assert_eq!(DiurnalProfile::campus_day().multipliers.len(), 24);
        assert_eq!(DiurnalProfile::campus_day().max_multiplier(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn all_zero_profile_rejected() {
        let _ = DiurnalProfile::new(10.0, vec![0.0, 0.0]);
    }

    #[test]
    fn kth_idle_skips_busy_ordinals() {
        let cfg = PopulationConfig::new(10, 0.01);
        let mut eng = PopulationArrivals::new(&cfg, 1);
        eng.mark_busy(0);
        eng.mark_busy(3);
        eng.mark_busy(4);
        // Idle set: 1,2,5,6,7,8,9.
        assert_eq!(eng.kth_idle(0), 1);
        assert_eq!(eng.kth_idle(1), 2);
        assert_eq!(eng.kth_idle(2), 5);
        assert_eq!(eng.kth_idle(6), 9);
        assert_eq!(eng.idle(), 7);
        assert_eq!(eng.active(), 3);
    }

    #[test]
    fn claim_and_staleness_protocol() {
        let cfg = PopulationConfig::new(5, 0.1);
        let mut eng = PopulationArrivals::new(&cfg, 1);
        let mut r = rng(42);
        let a1 = eng.next_arrival(SimTime::ZERO, &mut r).unwrap();
        // Re-drawing supersedes: the first tag goes stale.
        let a2 = eng.next_arrival(SimTime::ZERO, &mut r).unwrap();
        assert!(!eng.is_live(a1.tag));
        assert!(eng.is_live(a2.tag));
        assert_eq!(eng.claim(a1.tag), None, "stale tag claims nothing");
        let user = eng.claim(a2.tag).expect("live tag claims the caller");
        assert_eq!(user, a2.user);
        assert_eq!(eng.active(), 1);
        assert!(!eng.is_live(a2.tag), "claiming invalidates the stamp");
        // Hanging up returns the user and invalidates again.
        let a3 = eng.next_arrival(SimTime::from_secs(1), &mut r).unwrap();
        eng.call_ended(user);
        assert!(!eng.is_live(a3.tag));
        assert_eq!(eng.active(), 0);
        // Ending an idle user is a no-op that does NOT invalidate.
        let a4 = eng.next_arrival(SimTime::from_secs(2), &mut r).unwrap();
        eng.call_ended(user);
        assert!(eng.is_live(a4.tag));
    }

    #[test]
    fn exhausted_population_pauses_arrivals() {
        let cfg = PopulationConfig::new(2, 1.0);
        let mut eng = PopulationArrivals::new(&cfg, 1);
        let mut r = rng(7);
        for _ in 0..2 {
            let a = eng.next_arrival(SimTime::ZERO, &mut r).unwrap();
            eng.claim(a.tag).unwrap();
        }
        assert_eq!(eng.idle(), 0);
        assert!(eng.next_arrival(SimTime::ZERO, &mut r).is_none());
        eng.call_ended(0);
        assert!(eng.next_arrival(SimTime::ZERO, &mut r).is_some());
    }

    /// The tentpole invariant: the reference engine consumes the same
    /// shared draws, so the (time, user) event sequence is bit-identical
    /// to the aggregated engine's — while its internal per-user clock
    /// table asserts the superposition argument on every arrival.
    #[test]
    fn aggregated_and_reference_draw_identical_sequences() {
        for seed in [1u64, 2, 3, 99] {
            let mut cfg = PopulationConfig::new(32, 0.05);
            cfg.profile = DiurnalProfile::new(40.0, vec![0.3, 1.0, 0.6, 0.1]);
            let mut agg = PopulationArrivals::new(&cfg, 1234);
            cfg.reference = true;
            let mut refe = PopulationArrivals::new(&cfg, 1234);
            let mut ra = rng(seed);
            let mut rr = rng(seed);
            let mut now = SimTime::ZERO;
            let mut busy: Vec<u64> = Vec::new();
            for step in 0..200 {
                let a = agg.next_arrival(now, &mut ra);
                let b = refe.next_arrival(now, &mut rr);
                assert_eq!(
                    a.map(|x| (x.at, x.user)),
                    b.map(|x| (x.at, x.user)),
                    "step {step}"
                );
                let Some(a) = a else {
                    // Population exhausted: free someone and continue.
                    let u = busy.remove(0);
                    agg.call_ended(u);
                    refe.call_ended(u);
                    continue;
                };
                let b = b.unwrap();
                now = a.at;
                assert_eq!(agg.claim(a.tag), refe.claim(b.tag));
                busy.push(a.user);
                // Periodically hang someone up (deterministically).
                if step % 3 == 0 && !busy.is_empty() {
                    let u = busy.remove(0);
                    agg.call_ended(u);
                    refe.call_ended(u);
                }
            }
        }
    }

    #[test]
    fn thinning_respects_the_profile_shape() {
        // Two equal segments at rates 1 : 4 must collect arrivals in
        // roughly that ratio over many periods.
        let mut cfg = PopulationConfig::new(1000, 0.001);
        cfg.profile = DiurnalProfile::new(100.0, vec![0.25, 1.0]);
        let mut eng = PopulationArrivals::new(&cfg, 1);
        let mut r = rng(2015);
        let mut now = SimTime::ZERO;
        let (mut low, mut high) = (0u64, 0u64);
        for _ in 0..4000 {
            let a = eng.next_arrival(now, &mut r).unwrap();
            now = a.at;
            // Count only (never claim): the idle set stays put, isolating
            // the thinning behaviour.
            if (now.as_secs_f64() / 100.0).fract() < 0.5 {
                low += 1;
            } else {
                high += 1;
            }
        }
        let ratio = high as f64 / low.max(1) as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "expected ≈4:1 high:low arrivals, got {high}:{low} ({ratio:.2})"
        );
    }

    #[test]
    fn mean_interarrival_tracks_idle_count() {
        // Flat profile, λ = 0.01/s: 100 idle users → mean gap 1 s;
        // 10 idle users → mean gap 10 s.
        for (n, expect) in [(100u64, 1.0f64), (10, 10.0)] {
            let cfg = PopulationConfig::new(n, 0.01);
            let mut eng = PopulationArrivals::new(&cfg, 1);
            let mut r = rng(5);
            let mut now = SimTime::ZERO;
            let mut sum = 0.0;
            let reps = 3000;
            for _ in 0..reps {
                let a = eng.next_arrival(now, &mut r).unwrap();
                sum += a.at.since(now).as_secs_f64();
                now = a.at;
            }
            let mean = sum / f64::from(reps);
            assert!(
                (mean - expect).abs() < expect * 0.1,
                "N={n}: mean gap {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn churn_wheel_partitions_the_population_exactly() {
        for (count, buckets) in [(1_000_000u64, 256u32), (10, 4), (3, 8), (0, 16), (97, 13)] {
            let w = ChurnWheel::new(count, SimDuration::from_secs(3600), buckets);
            let mut covered = 0u64;
            let mut prev_hi = 0u64;
            for t in 0..u64::from(buckets) {
                let r = w.due_range(t);
                assert_eq!(r.start, prev_hi, "contiguous buckets");
                prev_hi = r.end;
                covered += r.end - r.start;
            }
            assert_eq!(covered, count, "every rank due exactly once per period");
            // Next period wraps to the same partition.
            assert_eq!(w.due_range(u64::from(buckets)), w.due_range(0));
        }
        let w = ChurnWheel::new(1_000_000, SimDuration::from_secs(3600), 256);
        assert!((w.steady_rate() - 277.8).abs() < 1.0, "{}", w.steady_rate());
    }

    #[test]
    fn slices_partition_the_population_and_shard_of_inverts() {
        for (n, shards) in [(1_000_000u64, 8usize), (97, 13), (5, 8), (64, 1)] {
            let cfg = PopulationConfig::new(n, 0.01);
            let mut covered = 0u64;
            for k in 0..shards {
                let s = cfg.slice(k, shards);
                assert_eq!(s.first_user, covered, "contiguous slices");
                covered += s.subscribers;
                for r in s.first_user..s.first_user + s.subscribers {
                    assert_eq!(cfg.shard_of(r, shards), k, "rank {r}");
                }
            }
            assert_eq!(covered, n, "slices cover every rank exactly once");
        }
    }
}
