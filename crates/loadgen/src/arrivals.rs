//! Call arrival processes.
//!
//! The Erlang-B model assumes Poisson arrivals; the empirical method
//! realises them by sampling exponential inter-arrival gaps. Deterministic
//! (paced) arrivals reproduce SIPp's default fixed-rate mode, and a
//! two-state MMPP provides the bursty overload used in robustness tests.

use des::rng::Distributions;
use des::{SimDuration, SimTime, StreamRng};

/// An arrival process generating the next call instant.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson process with the given rate (calls/second).
    Poisson {
        /// Mean arrival rate in calls per second.
        rate: f64,
    },
    /// Fixed-gap arrivals (SIPp's `-r` pacing).
    Deterministic {
        /// Constant rate in calls per second.
        rate: f64,
    },
    /// Markov-modulated Poisson process alternating between two rates.
    Mmpp {
        /// Rate in the quiet state (calls/s).
        rate_low: f64,
        /// Rate in the burst state (calls/s).
        rate_high: f64,
        /// Mean sojourn in each state (seconds).
        mean_sojourn: f64,
        /// Currently in the burst state?
        in_high: bool,
        /// When the current state ends.
        state_until: SimTime,
    },
}

impl ArrivalProcess {
    /// Poisson at `rate` calls/second.
    #[must_use]
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        ArrivalProcess::Poisson { rate }
    }

    /// Deterministic at `rate` calls/second.
    #[must_use]
    pub fn deterministic(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        ArrivalProcess::Deterministic { rate }
    }

    /// MMPP alternating `rate_low`/`rate_high` with mean state sojourn
    /// `mean_sojourn` seconds.
    #[must_use]
    pub fn mmpp(rate_low: f64, rate_high: f64, mean_sojourn: f64) -> Self {
        assert!(rate_low >= 0.0 && rate_high > 0.0 && mean_sojourn > 0.0);
        ArrivalProcess::Mmpp {
            rate_low,
            rate_high,
            mean_sojourn,
            in_high: false,
            state_until: SimTime::ZERO,
        }
    }

    /// Time of the next arrival strictly after `now`.
    pub fn next_after(&mut self, now: SimTime, rng: &mut StreamRng) -> SimTime {
        match self {
            ArrivalProcess::Poisson { rate } => {
                now + SimDuration::from_secs_f64(rng.exp_mean(1.0 / *rate))
            }
            ArrivalProcess::Deterministic { rate } => now + SimDuration::from_secs_f64(1.0 / *rate),
            ArrivalProcess::Mmpp {
                rate_low,
                rate_high,
                mean_sojourn,
                in_high,
                state_until,
            } => {
                // Advance state machine past `now`, then draw from the
                // current state's rate (thinning-free approximation good
                // enough for bursty-load studies).
                let t = now;
                while t >= *state_until {
                    *in_high = !*in_high;
                    *state_until += SimDuration::from_secs_f64(rng.exp_mean(*mean_sojourn));
                }
                let rate = if *in_high { *rate_high } else { *rate_low };
                let rate = rate.max(1e-9);
                t + SimDuration::from_secs_f64(rng.exp_mean(1.0 / rate))
            }
        }
    }

    /// All arrivals in the window `[0, horizon)` — convenience for tests
    /// and workload pre-generation.
    pub fn arrivals_until(&mut self, horizon: SimTime, rng: &mut StreamRng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t = self.next_after(t, rng);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::seed_from_u64(7)
    }

    #[test]
    fn poisson_rate_matches() {
        // Table I cell A=240: λ = 2 calls/s over 180 s -> ~360 arrivals.
        let mut p = ArrivalProcess::poisson(2.0);
        let mut r = rng();
        let arrivals = p.arrivals_until(SimTime::from_secs(1800), &mut r);
        let per_sec = arrivals.len() as f64 / 1800.0;
        assert!((per_sec - 2.0).abs() < 0.1, "rate={per_sec}");
    }

    #[test]
    fn poisson_gaps_are_exponential() {
        let mut p = ArrivalProcess::poisson(1.0);
        let mut r = rng();
        let arrivals = p.arrivals_until(SimTime::from_secs(20_000), &mut r);
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| w[1].since(w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Exponential: CV = 1.
        let cv = var.sqrt() / mean;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        assert!((cv - 1.0).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn deterministic_is_evenly_spaced() {
        let mut p = ArrivalProcess::deterministic(5.0);
        let mut r = rng();
        let arrivals = p.arrivals_until(SimTime::from_secs(2), &mut r);
        assert_eq!(arrivals.len(), 9, "t=0.2..1.8");
        for w in arrivals.windows(2) {
            let gap = w[1].since(w[0]).as_secs_f64();
            assert!((gap - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_deterministic() {
        let mut p1 = ArrivalProcess::poisson(3.0);
        let mut p2 = ArrivalProcess::poisson(3.0);
        let a1 = p1.arrivals_until(SimTime::from_secs(100), &mut StreamRng::seed_from_u64(5));
        let a2 = p2.arrivals_until(SimTime::from_secs(100), &mut StreamRng::seed_from_u64(5));
        assert_eq!(a1, a2, "same seed, same schedule");
        assert!(a1.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mmpp_mean_rate_between_extremes() {
        let mut p = ArrivalProcess::mmpp(0.5, 8.0, 10.0);
        let mut r = rng();
        let arrivals = p.arrivals_until(SimTime::from_secs(5000), &mut r);
        let rate = arrivals.len() as f64 / 5000.0;
        assert!(rate > 0.5 && rate < 8.0, "rate={rate}");
        // Equal sojourns: mean should be near the midpoint 4.25.
        assert!((rate - 4.25).abs() < 0.8, "rate={rate}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare windowed counts' variance-to-mean ratio (index of
        // dispersion); MMPP > 1, Poisson ≈ 1.
        let dispersion = |arrivals: &[SimTime]| {
            let window = 10.0;
            let horizon = 5000.0;
            let n = (horizon / window) as usize;
            let mut counts = vec![0.0f64; n];
            for a in arrivals {
                let w = (a.as_secs_f64() / window) as usize;
                if w < n {
                    counts[w] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / n as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n as f64;
            var / mean
        };
        let mut pois = ArrivalProcess::poisson(4.25);
        let mut mmpp = ArrivalProcess::mmpp(0.5, 8.0, 10.0);
        let pa = pois.arrivals_until(SimTime::from_secs(5000), &mut StreamRng::seed_from_u64(1));
        let ma = mmpp.arrivals_until(SimTime::from_secs(5000), &mut StreamRng::seed_from_u64(1));
        let dp = dispersion(&pa);
        let dm = dispersion(&ma);
        assert!(dp < 1.5, "poisson dispersion {dp}");
        assert!(dm > 2.0 * dp, "mmpp dispersion {dm} vs poisson {dp}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::poisson(0.0);
    }
}
