//! The UAC (caller) scenario engine — SIPp's client side.
//!
//! Scenario, exactly as the paper's Fig. 2 ladder: send INVITE with an SDP
//! offer, collect 100/180, ACK the 200, stream RTP for the holding time,
//! send BYE, collect its 200. Blocked (486/503) and failed (other 4xx/5xx)
//! attempts are ACKed and recorded.
//!
//! With a [`RetryPolicy`] installed, a 503 is not terminal: the UAC honours
//! the server's `Retry-After`, waits at least a capped exponential backoff,
//! and re-INVITEs the same logical call. A call that completes after one or
//! more sheds is journalled [`CallOutcome::ShedThenOk`] so goodput under
//! overload control can be compared honestly against uncontrolled runs.

use crate::journal::{CallOutcome, Journal, MsgDirection};
use des::{FastMap, SimDuration, SimTime};
use netsim::NodeId;
use overload::Feedback;
use sipcore::headers::HeaderName;
use sipcore::message::{format_via, Request, SipMessage};
use sipcore::sdp::wire::SdpBody;
use sipcore::sdp::SdpCodec;
use sipcore::{AtomTable, Method, SipUri, StatusCode};
use std::collections::VecDeque;
use std::sync::Arc;

/// How a UAC reacts to `503 Service Unavailable` + `Retry-After`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Give up (outcome `Blocked`) after this many retries of one call.
    pub max_retries: u32,
    /// Floor of the exponential backoff (doubles per retry).
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_secs(2),
            max_backoff: SimDuration::from_secs(32),
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `retry_no` (0-based), honouring the
    /// server's `Retry-After` as a lower bound: the UAC waits the *longer*
    /// of the server's ask and its own backoff, capped at `max_backoff`.
    /// Never zero: a missing/malformed `Retry-After` combined with a
    /// zero-base policy still waits a capped default rather than
    /// retrying immediately (which would just hammer a shedding server).
    #[must_use]
    pub fn delay(&self, retry_no: u32, retry_after: Option<SimDuration>) -> SimDuration {
        let shift = retry_no.min(16);
        let backoff = self.base_backoff.times(1u64 << shift);
        let floor = retry_after.unwrap_or(SimDuration::ZERO);
        let chosen = if backoff > floor { backoff } else { floor };
        let capped = if chosen > self.max_backoff {
            self.max_backoff
        } else {
            chosen
        };
        if capped == SimDuration::ZERO {
            let fallback = SimDuration::from_secs(2);
            if self.max_backoff < fallback && self.max_backoff > SimDuration::ZERO {
                self.max_backoff
            } else {
                fallback
            }
        } else {
            capped
        }
    }
}

/// Parse a `Retry-After` header value tolerantly (RFC 3261 §20.33 allows
/// `18000;duration=3600` and `120 (I'm in a meeting)`): take the leading
/// integer, ignore parameters and comments, reject anything else.
#[must_use]
pub fn parse_retry_after(value: &str) -> Option<SimDuration> {
    let v = value.split(';').next().unwrap_or("");
    let v = v.split('(').next().unwrap_or("").trim();
    v.parse::<u64>().ok().map(SimDuration::from_secs)
}

/// A call waiting out its backoff before re-INVITE.
#[derive(Debug, Clone)]
struct PendingRetry {
    caller: String,
    callee: String,
    hold: SimDuration,
    shed_retries: u32,
}

/// A call intent deferred by the pacer (not yet INVITEd).
#[derive(Debug, Clone)]
struct QueuedCall {
    caller: String,
    callee: String,
    hold: SimDuration,
}

/// Which upstream throttling law the pacer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacerMode {
    /// Space INVITEs at least `1/rate` apart (rate-based feedback).
    Rate,
    /// Cap the number of concurrently open calls (window-based feedback).
    Window,
}

/// Upstream pacing state driven by downstream `X-Overload-Control`
/// feedback: the UAC-side half of the rate/window control loops. New call
/// intents that exceed the current allowance are queued FIFO and released
/// either on a [`UacEvent::PacerWake`] (rate mode) or when an open call
/// terminates (window mode). Retries of shed calls bypass the pacer —
/// their backoff is already pacing them.
#[derive(Debug, Clone)]
pub struct Pacer {
    mode: PacerMode,
    /// Current advertised max call rate, calls/sec (rate mode).
    rate_cps: f64,
    /// Current advertised max open calls (window mode).
    window: u32,
    /// Calls opened through the pacer and not yet terminal (window mode).
    in_flight: u32,
    /// Earliest time the next INVITE may leave (rate mode).
    next_allowed: SimTime,
    /// A `PacerWake` is already outstanding.
    wake_armed: bool,
    queue: VecDeque<QueuedCall>,
}

impl Pacer {
    /// Rate-mode pacer starting at `initial_cps` calls/sec.
    #[must_use]
    pub fn rate(initial_cps: f64) -> Pacer {
        Pacer {
            mode: PacerMode::Rate,
            rate_cps: initial_cps.max(0.01),
            window: u32::MAX,
            in_flight: 0,
            next_allowed: SimTime::ZERO,
            wake_armed: false,
            queue: VecDeque::new(),
        }
    }

    /// Window-mode pacer starting with `initial` allowed open calls.
    #[must_use]
    pub fn window(initial: u32) -> Pacer {
        Pacer {
            mode: PacerMode::Window,
            rate_cps: f64::INFINITY,
            window: initial.max(1),
            in_flight: 0,
            next_allowed: SimTime::ZERO,
            wake_armed: false,
            queue: VecDeque::new(),
        }
    }

    /// Adopt downstream feedback. A `rate=` update retunes a rate pacer, a
    /// `win=` update a window pacer; mismatched feedback kinds are ignored
    /// (the downstream law and the upstream pacer are configured in pairs).
    pub fn apply(&mut self, feedback: Feedback) {
        match (self.mode, feedback) {
            (PacerMode::Rate, Feedback::Rate(r)) => self.rate_cps = r.max(0.01),
            (PacerMode::Window, Feedback::Window(w)) => self.window = w.max(1),
            _ => {}
        }
    }

    /// Current INVITE spacing (rate mode).
    fn spacing(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate_cps)
    }

    /// Call intents currently deferred.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Current advertised rate (calls/sec).
    #[must_use]
    pub fn rate_cps(&self) -> f64 {
        self.rate_cps
    }

    /// Current advertised window (max open calls).
    #[must_use]
    pub fn window_size(&self) -> u32 {
        self.window
    }
}

/// Something the UAC asks the world to do or reports.
#[derive(Debug, Clone, PartialEq)]
pub enum UacEvent {
    /// Transmit a SIP message.
    SendSip {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: SipMessage,
    },
    /// A call was answered: start media and schedule the hangup.
    Answered {
        /// The call's Call-ID.
        call_id: String,
        /// Local media port for this call.
        local_rtp_port: u16,
        /// Peer (PBX) node to stream to.
        remote_node: NodeId,
        /// Peer media port (from the answer SDP).
        remote_rtp_port: u16,
        /// How long to hold before sending BYE.
        hangup_after: SimDuration,
    },
    /// A call reached a terminal outcome.
    Ended {
        /// The call's Call-ID.
        call_id: String,
        /// How it ended.
        outcome: CallOutcome,
    },
    /// A call was shed with 503; re-INVITE it via [`Uac::retry_call`] after
    /// `delay` (the world owns time, so it owns the timer too).
    RetryAfter {
        /// The shed call's Call-ID — pass it back to [`Uac::retry_call`].
        call_id: String,
        /// Minimum wait before the retry (Retry-After ∨ backoff, capped).
        delay: SimDuration,
    },
    /// The rate pacer deferred a call; call [`Uac::pacer_wake`] at `at` to
    /// release queued intents (the world owns time, so it owns the timer).
    PacerWake {
        /// When the next queued INVITE becomes eligible.
        at: SimTime,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UacState {
    Inviting,
    Answered,
    ByeSent,
}

#[derive(Debug, Clone)]
struct UacCall {
    state: UacState,
    invite: Request,
    local_rtp_port: u16,
    hold: SimDuration,
    caller: String,
    callee: String,
    /// How many times this logical call has been shed and retried.
    shed_retries: u32,
}

/// The UAC engine: many concurrent calls from one generator host.
pub struct Uac {
    /// This generator's node.
    pub node: NodeId,
    /// The PBX node all signalling goes to.
    pub pbx_node: NodeId,
    /// PBX hostname for request URIs.
    pub pbx_host: String,
    /// Instance tag embedded in Call-IDs — lets several UAC engines share
    /// one host (e.g. one engine per PBX in a server-farm experiment)
    /// while keeping their dialogs distinguishable.
    pub tag: u32,
    /// Accounting ledger.
    pub journal: Journal,
    /// Retry behaviour on 503 (`None` = a shed call is simply blocked,
    /// SIPp's default).
    pub retry_policy: Option<RetryPolicy>,
    /// Upstream pacing state for feedback-driven overload control
    /// (`None` = send every intent immediately, the SIPp default).
    pub pacer: Option<Pacer>,
    calls: FastMap<String, UacCall>,
    /// Shed calls waiting out their backoff, keyed by the shed Call-ID.
    pending_retries: FastMap<String, PendingRetry>,
    /// Registrations awaiting completion (digest flow): call-id → (uid,
    /// next CSeq to use on the authenticated retry).
    pending_registrations: FastMap<String, (String, u32)>,
    /// Registrations confirmed with a 200.
    pub registrations_confirmed: u64,
    next_serial: u64,
    next_port: u16,
    /// Interner for SDP origin users: the caller pool is finite, so after
    /// warmup every offer body's `o=` string is a refcount bump.
    sdp_origins: AtomTable,
    /// Shared `c=` connection string for offer bodies.
    sdp_host: Arc<str>,
}

impl Uac {
    /// A UAC on `node` talking to the PBX at `pbx_node`/`pbx_host`.
    #[must_use]
    pub fn new(node: NodeId, pbx_node: NodeId, pbx_host: &str) -> Self {
        Uac::with_tag(node, pbx_node, pbx_host, u32::from(node.0))
    }

    /// Like [`Uac::new`] with an explicit Call-ID instance tag.
    #[must_use]
    pub fn with_tag(node: NodeId, pbx_node: NodeId, pbx_host: &str, tag: u32) -> Self {
        Uac {
            node,
            pbx_node,
            pbx_host: pbx_host.to_owned(),
            tag,
            journal: Journal::new(),
            retry_policy: None,
            pacer: None,
            calls: FastMap::default(),
            pending_retries: FastMap::default(),
            pending_registrations: FastMap::default(),
            registrations_confirmed: 0,
            next_serial: 0,
            // Stagger port ranges per instance so several engines sharing
            // one host never collide on local media ports.
            next_port: 20_000 + ((tag as u16) % 16) * 2048,
            sdp_origins: AtomTable::new(),
            sdp_host: Arc::from("sipp-client"),
        }
    }

    /// Number of calls not yet terminally resolved.
    #[must_use]
    pub fn open_calls(&self) -> usize {
        self.calls.len()
    }

    /// Replace the SDP origin interner with a pre-seeded table (typically
    /// a clone of a process-wide base table holding the finite caller
    /// pool). Digest-safe at any point: interning is idempotent and only
    /// the *resolved strings* ever reach the wire, so a warm table
    /// changes setup cost, never message bytes. A caller outside the
    /// seeded pool simply interns cold, as before.
    pub fn preseed_sdp_origins(&mut self, table: AtomTable) {
        self.sdp_origins = table;
    }

    /// Build and send a REGISTER for `uid` (password per the directory's
    /// `pw-<uid>` convention).
    pub fn register(&mut self, uid: &str) -> Vec<UacEvent> {
        let req = Request::new(Method::Register, SipUri::server(&self.pbx_host))
            .header(
                HeaderName::Via,
                format_via("uac", 5060, &format!("z9hG4bKr{uid}")),
            )
            .header(
                HeaderName::From,
                format!("<sip:{uid}@{}>;tag=reg", self.pbx_host),
            )
            .header(HeaderName::To, format!("<sip:{uid}@{}>", self.pbx_host))
            .header(HeaderName::CallId, format!("reg-{uid}-{}", self.tag))
            .header(HeaderName::CSeq, "1 REGISTER")
            .header(HeaderName::Authorization, format!("Simple {uid} pw-{uid}"))
            .header(HeaderName::Expires, "3600");
        vec![self.send(req.into())]
    }

    /// Start an RFC 2617 digest registration for `uid`: send the initial
    /// REGISTER without credentials and answer the 401 challenge when it
    /// arrives (handled in [`Uac::on_sip`]).
    pub fn register_digest(&mut self, uid: &str) -> Vec<UacEvent> {
        let call_id = format!("dreg-{uid}-{}", self.tag);
        let req = self.build_register(uid, &call_id, 1, None);
        self.pending_registrations
            .insert(call_id, (uid.to_owned(), 2));
        vec![self.send(req.into())]
    }

    fn build_register(
        &self,
        uid: &str,
        call_id: &str,
        cseq: u32,
        authorization: Option<String>,
    ) -> Request {
        let mut req = Request::new(Method::Register, SipUri::server(&self.pbx_host))
            .header(
                HeaderName::Via,
                format_via("uac", 5060, &format!("z9hG4bKdr{uid}{cseq}")),
            )
            .header(
                HeaderName::From,
                format!("<sip:{uid}@{}>;tag=reg", self.pbx_host),
            )
            .header(HeaderName::To, format!("<sip:{uid}@{}>", self.pbx_host))
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, format!("{cseq} REGISTER"))
            .header(HeaderName::Expires, "3600");
        if let Some(auth) = authorization {
            req.headers.push(HeaderName::Authorization, auth);
        }
        req
    }

    /// Handle a response to a pending digest registration. Returns `None`
    /// when the response does not belong to one.
    fn on_register_response(&mut self, resp: &sipcore::Response) -> Option<Vec<UacEvent>> {
        let call_id = resp.call_id()?.to_owned();
        let (uid, next_cseq) = self.pending_registrations.get(&call_id)?.clone();
        if resp.status == StatusCode::UNAUTHORIZED {
            let www = resp.headers.get(&HeaderName::WwwAuthenticate)?;
            let challenge = sipcore::auth::DigestChallenge::parse(www)?;
            let uri = format!("sip:{}", self.pbx_host);
            let creds = sipcore::auth::DigestCredentials::answer(
                &challenge,
                &uid,
                &format!("pw-{uid}"),
                "REGISTER",
                &uri,
            );
            self.pending_registrations
                .insert(call_id.clone(), (uid.clone(), next_cseq + 1));
            let req = self.build_register(&uid, &call_id, next_cseq, Some(creds.to_header_value()));
            return Some(vec![self.send(req.into())]);
        }
        if resp.status.is_success() {
            self.pending_registrations.remove(&call_id);
            self.registrations_confirmed += 1;
            return Some(vec![]);
        }
        if resp.status.is_error() {
            self.pending_registrations.remove(&call_id);
            return Some(vec![]);
        }
        Some(vec![])
    }

    /// Place a call from `caller_uid` to `callee_ext`, holding for `hold`
    /// once answered. Returns the new Call-ID and the INVITE to transmit.
    /// With a [`Pacer`] installed, intents over the current allowance are
    /// deferred (the returned Call-ID is then empty — the INVITE goes out
    /// later, on a wake or a window release).
    pub fn start_call(
        &mut self,
        now: SimTime,
        caller_uid: &str,
        callee_ext: &str,
        hold: SimDuration,
    ) -> (String, Vec<UacEvent>) {
        self.journal.call_attempted();
        if let Some(pacer) = self.pacer.as_mut() {
            match pacer.mode {
                PacerMode::Rate => {
                    if now < pacer.next_allowed || !pacer.queue.is_empty() {
                        pacer.queue.push_back(QueuedCall {
                            caller: caller_uid.to_owned(),
                            callee: callee_ext.to_owned(),
                            hold,
                        });
                        let mut evs = Vec::new();
                        if !pacer.wake_armed {
                            pacer.wake_armed = true;
                            let at = if pacer.next_allowed > now {
                                pacer.next_allowed
                            } else {
                                now
                            };
                            evs.push(UacEvent::PacerWake { at });
                        }
                        return (String::new(), evs);
                    }
                    pacer.next_allowed = now + pacer.spacing();
                }
                PacerMode::Window => {
                    if pacer.in_flight >= pacer.window || !pacer.queue.is_empty() {
                        pacer.queue.push_back(QueuedCall {
                            caller: caller_uid.to_owned(),
                            callee: callee_ext.to_owned(),
                            hold,
                        });
                        return (String::new(), Vec::new());
                    }
                    pacer.in_flight += 1;
                }
            }
        }
        self.place_invite(now, caller_uid, callee_ext, hold, 0)
    }

    /// Release rate-paced intents that have become eligible (driven by a
    /// [`UacEvent::PacerWake`]). Sends at most one INVITE per wake and
    /// re-arms for the next queued intent.
    pub fn pacer_wake(&mut self, now: SimTime) -> Vec<UacEvent> {
        let Some(pacer) = self.pacer.as_mut() else {
            return vec![];
        };
        pacer.wake_armed = false;
        if pacer.mode != PacerMode::Rate {
            return vec![];
        }
        let Some(next) = pacer.queue.pop_front() else {
            return vec![];
        };
        pacer.next_allowed = now + pacer.spacing();
        let rearm_at = pacer.next_allowed;
        let more_queued = !pacer.queue.is_empty();
        if more_queued {
            pacer.wake_armed = true;
        }
        let (_, mut evs) = self.place_invite(now, &next.caller, &next.callee, next.hold, 0);
        if more_queued {
            evs.push(UacEvent::PacerWake { at: rearm_at });
        }
        evs
    }

    /// Window mode: one open call reached a terminal state — free its slot
    /// and release queued intents that now fit.
    fn pacer_note_terminal(&mut self, now: SimTime) -> Vec<UacEvent> {
        let mut release = Vec::new();
        match self.pacer.as_mut() {
            Some(pacer) if pacer.mode == PacerMode::Window => {
                pacer.in_flight = pacer.in_flight.saturating_sub(1);
                while pacer.in_flight < pacer.window {
                    let Some(q) = pacer.queue.pop_front() else {
                        break;
                    };
                    pacer.in_flight += 1;
                    release.push(q);
                }
            }
            _ => return vec![],
        }
        let mut out = Vec::new();
        for q in release {
            let (_, evs) = self.place_invite(now, &q.caller, &q.callee, q.hold, 0);
            out.extend(evs);
        }
        out
    }

    /// Re-INVITE a call previously shed with 503, after its backoff has
    /// elapsed (driven by a [`UacEvent::RetryAfter`]). `call_id` is the
    /// *shed* attempt's Call-ID; the retry gets a fresh one.
    pub fn retry_call(&mut self, now: SimTime, call_id: &str) -> Vec<UacEvent> {
        let Some(pending) = self.pending_retries.remove(call_id) else {
            return vec![];
        };
        self.journal.retries += 1;
        let (_, evs) = self.place_invite(
            now,
            &pending.caller,
            &pending.callee,
            pending.hold,
            pending.shed_retries,
        );
        evs
    }

    fn place_invite(
        &mut self,
        _now: SimTime,
        caller_uid: &str,
        callee_ext: &str,
        hold: SimDuration,
        shed_retries: u32,
    ) -> (String, Vec<UacEvent>) {
        let serial = self.next_serial;
        self.next_serial += 1;
        let call_id = format!("uac-{}-{serial}", self.tag);
        let local_rtp_port = self.next_port;
        self.next_port = self.next_port.wrapping_add(2).max(20_000);
        // Structured offer: the origin string is interned (the caller pool
        // is finite), the connection string shared — no SDP text is built
        // unless the signalling path materializes the wire.
        let origin = self.sdp_origins.intern(caller_uid);
        let sdp = SdpBody::new(
            self.sdp_origins.resolve_shared(origin),
            Arc::clone(&self.sdp_host),
            local_rtp_port,
            SdpCodec::Pcmu,
        );
        let invite = Request::new(Method::Invite, SipUri::new(callee_ext, &self.pbx_host))
            .header(
                HeaderName::Via,
                format_via("sipp-client", 5060, &format!("z9hG4bKinv{serial}")),
            )
            .header(
                HeaderName::From,
                format!("<sip:{caller_uid}@{}>;tag=uac{serial}", self.pbx_host),
            )
            .header(
                HeaderName::To,
                format!("<sip:{callee_ext}@{}>", self.pbx_host),
            )
            .header(HeaderName::CallId, call_id.clone())
            .header(HeaderName::CSeq, "1 INVITE")
            .header(HeaderName::MaxForwards, "70")
            .header(HeaderName::UserAgent, "loadgen-uac (SIPp-compatible)")
            .with_sdp(sdp);
        self.calls.insert(
            call_id.clone(),
            UacCall {
                state: UacState::Inviting,
                invite: invite.clone(),
                local_rtp_port,
                hold,
                caller: caller_uid.to_owned(),
                callee: callee_ext.to_owned(),
                shed_retries,
            },
        );
        let ev = self.send(invite.into());
        (call_id, vec![ev])
    }

    /// Hang up an answered call: send the BYE.
    pub fn hangup(&mut self, _now: SimTime, call_id: &str) -> Vec<UacEvent> {
        let Some(call) = self.calls.get_mut(call_id) else {
            return vec![];
        };
        if call.state != UacState::Answered {
            return vec![];
        }
        call.state = UacState::ByeSent;
        let bye = Request::new(Method::Bye, call.invite.uri.clone())
            .header(
                HeaderName::Via,
                format_via("sipp-client", 5060, &format!("z9hG4bKbye-{call_id}")),
            )
            .header(
                HeaderName::From,
                call.invite
                    .headers
                    .get(&HeaderName::From)
                    .unwrap_or("<sip:uac>")
                    .to_owned(),
            )
            .header(
                HeaderName::To,
                call.invite
                    .headers
                    .get(&HeaderName::To)
                    .unwrap_or("<sip:uas>")
                    .to_owned(),
            )
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        vec![self.send(bye.into())]
    }

    /// Handle an inbound SIP message.
    pub fn on_sip(&mut self, now: SimTime, msg: SipMessage) -> Vec<UacEvent> {
        self.journal.count_sip(&msg, MsgDirection::Received);
        let SipMessage::Response(resp) = msg else {
            return vec![]; // the UAC never receives requests in this scenario
        };
        // Downstream overload feedback rides 100 Trying and 503 responses;
        // adopt it before anything else so even responses to unknown calls
        // still retune the pacer.
        if let Some(pacer) = self.pacer.as_mut() {
            if let Some(v) = resp.headers.get(&HeaderName::OverloadControl) {
                if let Some(fb) = Feedback::parse(v) {
                    pacer.apply(fb);
                }
            }
        }
        if resp.cseq_method() == Some(Method::Register) {
            return self.on_register_response(&resp).unwrap_or_default();
        }
        let Some(call_id) = resp.call_id().map(str::to_owned) else {
            return vec![];
        };
        let Some(call) = self.calls.get_mut(&call_id) else {
            return vec![];
        };
        match resp.cseq_method() {
            Some(Method::Invite) => {
                if resp.status.is_provisional() {
                    return vec![]; // 100/180: progress only
                }
                if resp.status.is_success() && call.state == UacState::Inviting {
                    call.state = UacState::Answered;
                    // Lazy answer read: port straight off the body bytes
                    // (or a field read when the answer stayed structured).
                    let remote_rtp_port = resp.body.sdp_audio_port().unwrap_or(0);
                    let local_rtp_port = call.local_rtp_port;
                    let hold = call.hold;
                    let ack = self.build_ack(&call_id);
                    return vec![
                        self.send(ack.into()),
                        UacEvent::Answered {
                            call_id,
                            local_rtp_port,
                            remote_node: self.pbx_node,
                            remote_rtp_port,
                            hangup_after: hold,
                        },
                    ];
                }
                if resp.status.is_error() {
                    // A 503 shed may be retried rather than closed.
                    if resp.status == StatusCode::SERVICE_UNAVAILABLE {
                        if let Some(policy) = self.retry_policy {
                            let retry_no = call.shed_retries;
                            if retry_no < policy.max_retries {
                                let retry_after = resp
                                    .headers
                                    .get(&HeaderName::RetryAfter)
                                    .and_then(parse_retry_after);
                                let delay = policy.delay(retry_no, retry_after);
                                let ack = self.build_ack(&call_id);
                                let call = self.calls.remove(&call_id).expect("looked up above");
                                self.pending_retries.insert(
                                    call_id.clone(),
                                    PendingRetry {
                                        caller: call.caller,
                                        callee: call.callee,
                                        hold: call.hold,
                                        shed_retries: retry_no + 1,
                                    },
                                );
                                return vec![
                                    self.send(ack.into()),
                                    UacEvent::RetryAfter { call_id, delay },
                                ];
                            }
                        }
                    }
                    // ACK the failure and close the attempt.
                    let outcome = match resp.status {
                        StatusCode::BUSY_HERE | StatusCode::SERVICE_UNAVAILABLE => {
                            CallOutcome::Blocked
                        }
                        _ => CallOutcome::Failed,
                    };
                    let ack = self.build_ack(&call_id);
                    self.calls.remove(&call_id);
                    self.journal.call_finished(outcome);
                    let mut evs = vec![self.send(ack.into()), UacEvent::Ended { call_id, outcome }];
                    evs.extend(self.pacer_note_terminal(now));
                    return evs;
                }
                vec![]
            }
            Some(Method::Bye) if resp.status.is_final() => {
                let shed_retries = call.shed_retries;
                self.calls.remove(&call_id);
                let outcome = if shed_retries > 0 {
                    CallOutcome::ShedThenOk
                } else {
                    CallOutcome::Completed
                };
                self.journal.call_finished(outcome);
                let mut evs = vec![UacEvent::Ended { call_id, outcome }];
                evs.extend(self.pacer_note_terminal(now));
                evs
            }
            _ => vec![],
        }
    }

    /// Shed calls currently waiting out a backoff.
    #[must_use]
    pub fn pending_retry_count(&self) -> usize {
        self.pending_retries.len()
    }

    /// Close the books: any call still open — including shed calls whose
    /// backoff never elapsed — is abandoned.
    pub fn finish(&mut self) -> Vec<UacEvent> {
        let mut out = Vec::new();
        for (call_id, _) in std::mem::take(&mut self.calls) {
            self.journal.call_finished(CallOutcome::Abandoned);
            out.push(UacEvent::Ended {
                call_id,
                outcome: CallOutcome::Abandoned,
            });
        }
        for (call_id, _) in std::mem::take(&mut self.pending_retries) {
            self.journal.call_finished(CallOutcome::Abandoned);
            out.push(UacEvent::Ended {
                call_id,
                outcome: CallOutcome::Abandoned,
            });
        }
        // Pacer-deferred intents never even got an INVITE: abandoned too
        // (they were counted as attempts when offered).
        let deferred = self
            .pacer
            .as_mut()
            .map(|p| std::mem::take(&mut p.queue))
            .unwrap_or_default();
        for (i, _) in deferred.into_iter().enumerate() {
            self.journal.call_finished(CallOutcome::Abandoned);
            out.push(UacEvent::Ended {
                call_id: format!("uac-{}-queued{i}", self.tag),
                outcome: CallOutcome::Abandoned,
            });
        }
        out
    }

    fn build_ack(&self, call_id: &str) -> Request {
        let call = &self.calls[call_id];
        Request::new(Method::Ack, call.invite.uri.clone())
            .header(
                HeaderName::Via,
                call.invite
                    .headers
                    .get(&HeaderName::Via)
                    .unwrap_or("SIP/2.0/UDP uac")
                    .to_owned(),
            )
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "1 ACK")
            .header(
                HeaderName::From,
                call.invite
                    .headers
                    .get(&HeaderName::From)
                    .unwrap_or("<sip:uac>")
                    .to_owned(),
            )
            .header(
                HeaderName::To,
                call.invite
                    .headers
                    .get(&HeaderName::To)
                    .unwrap_or("<sip:uas>")
                    .to_owned(),
            )
    }

    fn send(&mut self, msg: SipMessage) -> UacEvent {
        self.journal.count_sip(&msg, MsgDirection::Sent);
        UacEvent::SendSip {
            to: self.pbx_node,
            msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipcore::sdp::SessionDescription;
    use sipcore::Response;

    const UAC_NODE: NodeId = NodeId(1);
    const PBX_NODE: NodeId = NodeId(3);

    fn uac() -> Uac {
        Uac::new(UAC_NODE, PBX_NODE, "pbx.unb.br")
    }

    fn sip_of(ev: &UacEvent) -> &SipMessage {
        match ev {
            UacEvent::SendSip { msg, .. } => msg,
            other => panic!("expected SendSip, got {other:?}"),
        }
    }

    fn respond(invite: &Request, status: StatusCode, sdp_port: Option<u16>) -> Response {
        let mut r = invite.make_response(status);
        if let Some(port) = sdp_port {
            r = r.with_body(
                "application/sdp",
                SessionDescription::new("pbx", "pbx.unb.br", port, SdpCodec::Pcmu).to_body(),
            );
        }
        r
    }

    #[test]
    fn happy_path_invite_ack_bye() {
        let mut u = uac();
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(120));
        assert_eq!(evs.len(), 1);
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        assert_eq!(invite.method, Method::Invite);
        assert_eq!(invite.call_id(), Some(cid.as_str()));
        assert!(SessionDescription::parse(&invite.body.to_vec()).is_some());
        assert_eq!(
            invite.body.sdp_origin_user(),
            Some("1001"),
            "offer origin is the caller uid"
        );
        assert_eq!(u.open_calls(), 1);

        // 100 and 180 produce nothing.
        assert!(u
            .on_sip(
                SimTime::ZERO,
                respond(&invite, StatusCode::TRYING, None).into()
            )
            .is_empty());
        assert!(u
            .on_sip(
                SimTime::ZERO,
                respond(&invite, StatusCode::RINGING, None).into()
            )
            .is_empty());

        // 200 with SDP: ACK + Answered.
        let evs = u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::OK, Some(10_000)).into(),
        );
        assert_eq!(evs.len(), 2);
        assert_eq!(sip_of(&evs[0]).as_request().unwrap().method, Method::Ack);
        match &evs[1] {
            UacEvent::Answered {
                call_id,
                remote_rtp_port,
                remote_node,
                hangup_after,
                ..
            } => {
                assert_eq!(call_id, &cid);
                assert_eq!(*remote_rtp_port, 10_000);
                assert_eq!(*remote_node, PBX_NODE);
                assert_eq!(*hangup_after, SimDuration::from_secs(120));
            }
            other => panic!("{other:?}"),
        }

        // Hang up: BYE goes out.
        let evs = u.hangup(SimTime::from_secs(120), &cid);
        assert_eq!(evs.len(), 1);
        let bye = sip_of(&evs[0]).as_request().unwrap().clone();
        assert_eq!(bye.method, Method::Bye);
        assert_eq!(bye.headers.get(&HeaderName::CSeq), Some("2 BYE"));

        // 200 for the BYE closes the call.
        let evs = u.on_sip(
            SimTime::from_secs(120),
            respond(&bye, StatusCode::OK, None).into(),
        );
        assert_eq!(
            evs,
            vec![UacEvent::Ended {
                call_id: cid,
                outcome: CallOutcome::Completed
            }]
        );
        assert_eq!(u.open_calls(), 0);
        assert_eq!(u.journal.outcome_count(CallOutcome::Completed), 1);
    }

    #[test]
    fn busy_is_blocked_and_acked() {
        let mut u = uac();
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(120));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let evs = u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::BUSY_HERE, None).into(),
        );
        assert_eq!(evs.len(), 2);
        assert_eq!(sip_of(&evs[0]).as_request().unwrap().method, Method::Ack);
        assert_eq!(
            evs[1],
            UacEvent::Ended {
                call_id: cid,
                outcome: CallOutcome::Blocked
            }
        );
        assert_eq!(u.journal.outcome_count(CallOutcome::Blocked), 1);
        assert!((u.journal.blocking_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_unavailable_also_blocked_404_failed() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None).into(),
        );
        assert_eq!(u.journal.outcome_count(CallOutcome::Blocked), 1);

        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "9999", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::NOT_FOUND, None).into(),
        );
        assert_eq!(u.journal.outcome_count(CallOutcome::Failed), 1);
    }

    #[test]
    fn hangup_before_answer_is_noop() {
        let mut u = uac();
        let (cid, _) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        assert!(u.hangup(SimTime::ZERO, &cid).is_empty());
        assert!(u.hangup(SimTime::ZERO, "no-such-call").is_empty());
    }

    #[test]
    fn duplicate_200_does_not_double_answer() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let ok = respond(&invite, StatusCode::OK, Some(10_000));
        let first = u.on_sip(SimTime::ZERO, ok.clone().into());
        assert_eq!(first.len(), 2);
        let second = u.on_sip(SimTime::ZERO, ok.into());
        assert!(second.is_empty(), "retransmitted 200 absorbed");
    }

    #[test]
    fn register_message_shape() {
        let mut u = uac();
        let evs = u.register("1001");
        let req = sip_of(&evs[0]).as_request().unwrap();
        assert_eq!(req.method, Method::Register);
        assert_eq!(
            req.headers.get(&HeaderName::Authorization),
            Some("Simple 1001 pw-1001")
        );
    }

    #[test]
    fn finish_abandons_open_calls() {
        let mut u = uac();
        u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        u.start_call(SimTime::ZERO, "1002", "2002", SimDuration::from_secs(1));
        let evs = u.finish();
        assert_eq!(evs.len(), 2);
        assert_eq!(u.journal.outcome_count(CallOutcome::Abandoned), 2);
        assert_eq!(u.open_calls(), 0);
    }

    #[test]
    fn retry_policy_delay_honours_retry_after_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: SimDuration::from_secs(2),
            max_backoff: SimDuration::from_secs(10),
        };
        // Backoff doubles: 2, 4, 8, then the cap.
        assert_eq!(p.delay(0, None), SimDuration::from_secs(2));
        assert_eq!(p.delay(1, None), SimDuration::from_secs(4));
        assert_eq!(p.delay(2, None), SimDuration::from_secs(8));
        assert_eq!(p.delay(3, None), SimDuration::from_secs(10), "capped");
        // Retry-After is a floor: the UAC never retries earlier than asked.
        assert_eq!(
            p.delay(0, Some(SimDuration::from_secs(5))),
            SimDuration::from_secs(5)
        );
        // ...but backoff dominates once it is larger.
        assert_eq!(
            p.delay(2, Some(SimDuration::from_secs(5))),
            SimDuration::from_secs(8)
        );
    }

    #[test]
    fn shed_503_is_retried_and_completes_as_shed_then_ok() {
        let mut u = uac();
        u.retry_policy = Some(RetryPolicy::default());
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(60));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();

        // PBX sheds with 503 + Retry-After: 3.
        let mut shed = respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None);
        shed.headers.push(HeaderName::RetryAfter, "3");
        let evs = u.on_sip(SimTime::ZERO, shed.into());
        assert_eq!(evs.len(), 2);
        assert_eq!(sip_of(&evs[0]).as_request().unwrap().method, Method::Ack);
        match &evs[1] {
            UacEvent::RetryAfter { call_id, delay } => {
                assert_eq!(call_id, &cid);
                // max(Retry-After 3, base backoff 2) = 3.
                assert_eq!(*delay, SimDuration::from_secs(3));
            }
            other => panic!("expected RetryAfter, got {other:?}"),
        }
        assert_eq!(u.open_calls(), 0);
        assert_eq!(u.pending_retry_count(), 1);
        assert_eq!(
            u.journal.outcome_count(CallOutcome::Blocked),
            0,
            "not terminal yet"
        );

        // Backoff elapses; retry goes out as a fresh INVITE.
        let evs = u.retry_call(SimTime::from_secs(3), &cid);
        assert_eq!(evs.len(), 1);
        let retry_invite = sip_of(&evs[0]).as_request().unwrap().clone();
        assert_eq!(retry_invite.method, Method::Invite);
        assert_ne!(retry_invite.call_id(), Some(cid.as_str()), "fresh Call-ID");
        assert_eq!(u.journal.retries, 1);
        assert_eq!(u.journal.attempted, 1, "retry is the same logical call");

        // This time the call goes through and completes.
        let ok = respond(&retry_invite, StatusCode::OK, Some(10_000));
        let evs = u.on_sip(SimTime::from_secs(4), ok.into());
        assert!(matches!(evs[1], UacEvent::Answered { .. }));
        let retry_cid = retry_invite.call_id().unwrap().to_owned();
        let evs = u.hangup(SimTime::from_secs(64), &retry_cid);
        let bye = sip_of(&evs[0]).as_request().unwrap().clone();
        let evs = u.on_sip(
            SimTime::from_secs(64),
            respond(&bye, StatusCode::OK, None).into(),
        );
        assert_eq!(
            evs,
            vec![UacEvent::Ended {
                call_id: retry_cid,
                outcome: CallOutcome::ShedThenOk
            }]
        );
        assert_eq!(u.journal.outcome_count(CallOutcome::ShedThenOk), 1);
        assert_eq!(u.journal.outcome_count(CallOutcome::Completed), 0);
    }

    #[test]
    fn retries_exhausted_become_blocked() {
        let mut u = uac();
        u.retry_policy = Some(RetryPolicy {
            max_retries: 1,
            base_backoff: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(8),
        });
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(60));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let evs = u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None).into(),
        );
        assert!(matches!(evs[1], UacEvent::RetryAfter { .. }));
        let evs = u.retry_call(SimTime::from_secs(1), &cid);
        let retry_invite = sip_of(&evs[0]).as_request().unwrap().clone();
        // Shed again: the retry budget (1) is spent, so this is terminal.
        let evs = u.on_sip(
            SimTime::from_secs(1),
            respond(&retry_invite, StatusCode::SERVICE_UNAVAILABLE, None).into(),
        );
        assert_eq!(
            evs[1],
            UacEvent::Ended {
                call_id: retry_invite.call_id().unwrap().to_owned(),
                outcome: CallOutcome::Blocked
            }
        );
        assert_eq!(u.journal.outcome_count(CallOutcome::Blocked), 1);
        assert_eq!(u.pending_retry_count(), 0);
    }

    #[test]
    fn without_policy_503_stays_blocked() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let mut shed = respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None);
        shed.headers.push(HeaderName::RetryAfter, "2");
        let evs = u.on_sip(SimTime::ZERO, shed.into());
        assert!(matches!(
            evs[1],
            UacEvent::Ended {
                outcome: CallOutcome::Blocked,
                ..
            }
        ));
        assert_eq!(u.journal.retries, 0);
    }

    #[test]
    fn finish_abandons_pending_retries_too() {
        let mut u = uac();
        u.retry_policy = Some(RetryPolicy::default());
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None).into(),
        );
        assert_eq!(u.pending_retry_count(), 1);
        let evs = u.finish();
        assert_eq!(evs.len(), 1);
        assert_eq!(u.journal.outcome_count(CallOutcome::Abandoned), 1);
        assert_eq!(u.pending_retry_count(), 0);
    }

    /// Satellite: Retry-After tolerance. Params and comments are ignored,
    /// garbage is rejected, and a rejected header never yields an
    /// immediate retry — the capped default backoff applies instead.
    #[test]
    fn retry_after_parsing_is_tolerant_and_never_immediate() {
        assert_eq!(parse_retry_after("3"), Some(SimDuration::from_secs(3)));
        assert_eq!(
            parse_retry_after("  18000 "),
            Some(SimDuration::from_secs(18000))
        );
        assert_eq!(
            parse_retry_after("18000;duration=3600"),
            Some(SimDuration::from_secs(18000))
        );
        assert_eq!(
            parse_retry_after("120 (I'm in a meeting)"),
            Some(SimDuration::from_secs(120))
        );
        for bad in ["", "abc", "-5", "3.7", "soon;duration=1"] {
            assert_eq!(parse_retry_after(bad), None, "{bad:?} must not parse");
        }
        // A zero-base policy with no usable Retry-After must still wait.
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::from_secs(32),
        };
        assert_eq!(
            p.delay(0, None),
            SimDuration::from_secs(2),
            "capped default"
        );
        assert!(p.delay(0, parse_retry_after("junk")) > SimDuration::ZERO);
        // An explicit Retry-After still floors it.
        assert_eq!(
            p.delay(0, parse_retry_after("5;duration=60")),
            SimDuration::from_secs(5)
        );
        // A tiny max_backoff bounds even the fallback.
        let tight = RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::from_millis(500),
        };
        assert_eq!(tight.delay(0, None), SimDuration::from_millis(500));
    }

    /// End-to-end through the UAC: a malformed Retry-After on a 503 does
    /// not produce an immediate (zero-delay) retry.
    #[test]
    fn malformed_retry_after_gets_backoff_not_immediate_retry() {
        let mut u = uac();
        u.retry_policy = Some(RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::from_secs(8),
        });
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(60));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let mut shed = respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None);
        shed.headers.push(HeaderName::RetryAfter, "later, maybe");
        let evs = u.on_sip(SimTime::ZERO, shed.into());
        match &evs[1] {
            UacEvent::RetryAfter { delay, .. } => {
                assert!(*delay > SimDuration::ZERO, "retry must not be immediate");
            }
            other => panic!("expected RetryAfter, got {other:?}"),
        }
    }

    #[test]
    fn rate_pacer_defers_and_releases_on_wake() {
        let mut u = uac();
        u.pacer = Some(Pacer::rate(2.0)); // one INVITE per 500 ms
                                          // First intent goes out immediately.
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(10));
        assert!(!cid.is_empty());
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0], UacEvent::SendSip { .. }));
        // Second intent inside the spacing window: deferred, wake armed.
        let (cid2, evs) = u.start_call(
            SimTime::from_millis(100),
            "1002",
            "2002",
            SimDuration::from_secs(10),
        );
        assert!(cid2.is_empty(), "deferred intent has no Call-ID yet");
        assert_eq!(evs.len(), 1);
        let at = match &evs[0] {
            UacEvent::PacerWake { at } => *at,
            other => panic!("expected PacerWake, got {other:?}"),
        };
        assert_eq!(at, SimTime::from_millis(500));
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 1);
        // Third intent: queued behind the second, no duplicate wake.
        let (_, evs) = u.start_call(
            SimTime::from_millis(200),
            "1003",
            "2003",
            SimDuration::from_secs(10),
        );
        assert!(evs.is_empty(), "wake already armed");
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 2);
        // Both counted as offered load at intent time.
        assert_eq!(u.journal.attempted, 3);
        // Wake at 500 ms: one INVITE out, re-armed for the third.
        let evs = u.pacer_wake(SimTime::from_millis(500));
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], UacEvent::SendSip { .. }));
        match &evs[1] {
            UacEvent::PacerWake { at } => assert_eq!(*at, SimTime::from_millis(1000)),
            other => panic!("expected re-arm, got {other:?}"),
        }
        // Second wake drains the queue with no further re-arm.
        let evs = u.pacer_wake(SimTime::from_millis(1000));
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0], UacEvent::SendSip { .. }));
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 0);
        assert_eq!(u.open_calls(), 3);
    }

    #[test]
    fn rate_pacer_adopts_downstream_feedback() {
        let mut u = uac();
        u.pacer = Some(Pacer::rate(10.0));
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(10));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        // The PBX's 100 Trying advertises a lower rate.
        let mut trying = respond(&invite, StatusCode::TRYING, None);
        trying
            .headers
            .push(HeaderName::OverloadControl, "rate=1.000");
        u.on_sip(SimTime::ZERO, trying.into());
        assert!((u.pacer.as_ref().unwrap().rate_cps() - 1.0).abs() < 1e-9);
        // Malformed feedback is ignored.
        let mut bad = respond(&invite, StatusCode::TRYING, None);
        bad.headers.push(HeaderName::OverloadControl, "rate=???");
        u.on_sip(SimTime::ZERO, bad.into());
        assert!((u.pacer.as_ref().unwrap().rate_cps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_pacer_caps_open_calls_and_releases_on_terminal() {
        let mut u = uac();
        u.pacer = Some(Pacer::window(2));
        let (cid1, evs1) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(10));
        let (_cid2, evs2) = u.start_call(SimTime::ZERO, "1002", "2002", SimDuration::from_secs(10));
        assert_eq!(evs1.len() + evs2.len(), 2, "window of 2 admits both");
        // Third intent: over the window, deferred silently.
        let (cid3, evs3) = u.start_call(SimTime::ZERO, "1003", "2003", SimDuration::from_secs(10));
        assert!(cid3.is_empty() && evs3.is_empty());
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 1);
        // First call fails; its slot frees and the queued intent goes out.
        let invite1 = sip_of(&evs1[0]).as_request().unwrap().clone();
        let evs = u.on_sip(
            SimTime::from_secs(1),
            respond(&invite1, StatusCode::NOT_FOUND, None).into(),
        );
        // ACK + Ended for cid1, then the released INVITE for the intent.
        assert_eq!(evs.len(), 3);
        assert!(matches!(
            &evs[1],
            UacEvent::Ended { call_id, .. } if call_id == &cid1
        ));
        let released = sip_of(&evs[2]).as_request().unwrap();
        assert_eq!(released.method, Method::Invite);
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 0);
        // Window feedback shrinks the allowance for future admissions.
        let mut resp = respond(&invite1, StatusCode::TRYING, None);
        resp.headers.push(HeaderName::OverloadControl, "win=1");
        u.on_sip(SimTime::from_secs(1), resp.into());
        assert_eq!(u.pacer.as_ref().unwrap().window_size(), 1);
        let (cid4, evs4) = u.start_call(
            SimTime::from_secs(2),
            "1004",
            "2004",
            SimDuration::from_secs(10),
        );
        assert!(cid4.is_empty() && evs4.is_empty(), "shrunk window defers");
    }

    #[test]
    fn finish_abandons_pacer_deferred_intents() {
        let mut u = uac();
        u.pacer = Some(Pacer::window(1));
        u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(10));
        u.start_call(SimTime::ZERO, "1002", "2002", SimDuration::from_secs(10));
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 1);
        let evs = u.finish();
        // One open call + one deferred intent, both abandoned.
        assert_eq!(evs.len(), 2);
        assert_eq!(u.journal.outcome_count(CallOutcome::Abandoned), 2);
        assert_eq!(u.pacer.as_ref().unwrap().queued(), 0);
    }

    #[test]
    fn journal_counts_both_directions() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(
            SimTime::ZERO,
            respond(&invite, StatusCode::TRYING, None).into(),
        );
        assert_eq!(u.journal.request_count(Method::Invite), 1);
        assert_eq!(u.journal.response_count(StatusCode::TRYING), 1);
    }
}
