//! The UAC (caller) scenario engine — SIPp's client side.
//!
//! Scenario, exactly as the paper's Fig. 2 ladder: send INVITE with an SDP
//! offer, collect 100/180, ACK the 200, stream RTP for the holding time,
//! send BYE, collect its 200. Blocked (486/503) and failed (other 4xx/5xx)
//! attempts are ACKed and recorded.

use crate::journal::{CallOutcome, Journal, MsgDirection};
use des::{SimDuration, SimTime};
use netsim::NodeId;
use sipcore::headers::HeaderName;
use sipcore::message::{format_via, Request, SipMessage};
use sipcore::sdp::{SdpCodec, SessionDescription};
use sipcore::{Method, SipUri, StatusCode};
use std::collections::HashMap;

/// Something the UAC asks the world to do or reports.
#[derive(Debug, Clone, PartialEq)]
pub enum UacEvent {
    /// Transmit a SIP message.
    SendSip {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: SipMessage,
    },
    /// A call was answered: start media and schedule the hangup.
    Answered {
        /// The call's Call-ID.
        call_id: String,
        /// Local media port for this call.
        local_rtp_port: u16,
        /// Peer (PBX) node to stream to.
        remote_node: NodeId,
        /// Peer media port (from the answer SDP).
        remote_rtp_port: u16,
        /// How long to hold before sending BYE.
        hangup_after: SimDuration,
    },
    /// A call reached a terminal outcome.
    Ended {
        /// The call's Call-ID.
        call_id: String,
        /// How it ended.
        outcome: CallOutcome,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UacState {
    Inviting,
    Answered,
    ByeSent,
}

#[derive(Debug, Clone)]
struct UacCall {
    state: UacState,
    invite: Request,
    local_rtp_port: u16,
    hold: SimDuration,
}

/// The UAC engine: many concurrent calls from one generator host.
pub struct Uac {
    /// This generator's node.
    pub node: NodeId,
    /// The PBX node all signalling goes to.
    pub pbx_node: NodeId,
    /// PBX hostname for request URIs.
    pub pbx_host: String,
    /// Instance tag embedded in Call-IDs — lets several UAC engines share
    /// one host (e.g. one engine per PBX in a server-farm experiment)
    /// while keeping their dialogs distinguishable.
    pub tag: u32,
    /// Accounting ledger.
    pub journal: Journal,
    calls: HashMap<String, UacCall>,
    /// Registrations awaiting completion (digest flow): call-id → (uid,
    /// next CSeq to use on the authenticated retry).
    pending_registrations: HashMap<String, (String, u32)>,
    /// Registrations confirmed with a 200.
    pub registrations_confirmed: u64,
    next_serial: u64,
    next_port: u16,
}

impl Uac {
    /// A UAC on `node` talking to the PBX at `pbx_node`/`pbx_host`.
    #[must_use]
    pub fn new(node: NodeId, pbx_node: NodeId, pbx_host: &str) -> Self {
        Uac::with_tag(node, pbx_node, pbx_host, u32::from(node.0))
    }

    /// Like [`Uac::new`] with an explicit Call-ID instance tag.
    #[must_use]
    pub fn with_tag(node: NodeId, pbx_node: NodeId, pbx_host: &str, tag: u32) -> Self {
        Uac {
            node,
            pbx_node,
            pbx_host: pbx_host.to_owned(),
            tag,
            journal: Journal::new(),
            calls: HashMap::new(),
            pending_registrations: HashMap::new(),
            registrations_confirmed: 0,
            next_serial: 0,
            // Stagger port ranges per instance so several engines sharing
            // one host never collide on local media ports.
            next_port: 20_000 + ((tag as u16) % 16) * 2048,
        }
    }

    /// Number of calls not yet terminally resolved.
    #[must_use]
    pub fn open_calls(&self) -> usize {
        self.calls.len()
    }

    /// Build and send a REGISTER for `uid` (password per the directory's
    /// `pw-<uid>` convention).
    pub fn register(&mut self, uid: &str) -> Vec<UacEvent> {
        let req = Request::new(Method::Register, SipUri::server(&self.pbx_host))
            .header(HeaderName::Via, format_via("uac", 5060, &format!("z9hG4bKr{uid}")))
            .header(HeaderName::From, format!("<sip:{uid}@{}>;tag=reg", self.pbx_host))
            .header(HeaderName::To, format!("<sip:{uid}@{}>", self.pbx_host))
            .header(HeaderName::CallId, format!("reg-{uid}-{}", self.tag))
            .header(HeaderName::CSeq, "1 REGISTER")
            .header(HeaderName::Authorization, format!("Simple {uid} pw-{uid}"))
            .header(HeaderName::Expires, "3600");
        vec![self.send(req.into())]
    }

    /// Start an RFC 2617 digest registration for `uid`: send the initial
    /// REGISTER without credentials and answer the 401 challenge when it
    /// arrives (handled in [`Uac::on_sip`]).
    pub fn register_digest(&mut self, uid: &str) -> Vec<UacEvent> {
        let call_id = format!("dreg-{uid}-{}", self.tag);
        let req = self.build_register(uid, &call_id, 1, None);
        self.pending_registrations
            .insert(call_id, (uid.to_owned(), 2));
        vec![self.send(req.into())]
    }

    fn build_register(
        &self,
        uid: &str,
        call_id: &str,
        cseq: u32,
        authorization: Option<String>,
    ) -> Request {
        let mut req = Request::new(Method::Register, SipUri::server(&self.pbx_host))
            .header(HeaderName::Via, format_via("uac", 5060, &format!("z9hG4bKdr{uid}{cseq}")))
            .header(HeaderName::From, format!("<sip:{uid}@{}>;tag=reg", self.pbx_host))
            .header(HeaderName::To, format!("<sip:{uid}@{}>", self.pbx_host))
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, format!("{cseq} REGISTER"))
            .header(HeaderName::Expires, "3600");
        if let Some(auth) = authorization {
            req.headers.push(HeaderName::Authorization, auth);
        }
        req
    }

    /// Handle a response to a pending digest registration. Returns `None`
    /// when the response does not belong to one.
    fn on_register_response(&mut self, resp: &sipcore::Response) -> Option<Vec<UacEvent>> {
        let call_id = resp.call_id()?.to_owned();
        let (uid, next_cseq) = self.pending_registrations.get(&call_id)?.clone();
        if resp.status == StatusCode::UNAUTHORIZED {
            let www = resp.headers.get(&HeaderName::WwwAuthenticate)?;
            let challenge = sipcore::auth::DigestChallenge::parse(www)?;
            let uri = format!("sip:{}", self.pbx_host);
            let creds = sipcore::auth::DigestCredentials::answer(
                &challenge,
                &uid,
                &format!("pw-{uid}"),
                "REGISTER",
                &uri,
            );
            self.pending_registrations
                .insert(call_id.clone(), (uid.clone(), next_cseq + 1));
            let req = self.build_register(&uid, &call_id, next_cseq, Some(creds.to_header_value()));
            return Some(vec![self.send(req.into())]);
        }
        if resp.status.is_success() {
            self.pending_registrations.remove(&call_id);
            self.registrations_confirmed += 1;
            return Some(vec![]);
        }
        if resp.status.is_error() {
            self.pending_registrations.remove(&call_id);
            return Some(vec![]);
        }
        Some(vec![])
    }

    /// Place a call from `caller_uid` to `callee_ext`, holding for `hold`
    /// once answered. Returns the new Call-ID and the INVITE to transmit.
    pub fn start_call(
        &mut self,
        _now: SimTime,
        caller_uid: &str,
        callee_ext: &str,
        hold: SimDuration,
    ) -> (String, Vec<UacEvent>) {
        let serial = self.next_serial;
        self.next_serial += 1;
        let call_id = format!("uac-{}-{serial}", self.tag);
        let local_rtp_port = self.next_port;
        self.next_port = self.next_port.wrapping_add(2).max(20_000);
        let sdp = SessionDescription::new(caller_uid, "sipp-client", local_rtp_port, SdpCodec::Pcmu);
        let invite = Request::new(Method::Invite, SipUri::new(callee_ext, &self.pbx_host))
            .header(
                HeaderName::Via,
                format_via("sipp-client", 5060, &format!("z9hG4bKinv{serial}")),
            )
            .header(
                HeaderName::From,
                format!("<sip:{caller_uid}@{}>;tag=uac{serial}", self.pbx_host),
            )
            .header(HeaderName::To, format!("<sip:{callee_ext}@{}>", self.pbx_host))
            .header(HeaderName::CallId, call_id.clone())
            .header(HeaderName::CSeq, "1 INVITE")
            .header(HeaderName::MaxForwards, "70")
            .header(HeaderName::UserAgent, "loadgen-uac (SIPp-compatible)")
            .with_body("application/sdp", sdp.to_body());
        self.calls.insert(
            call_id.clone(),
            UacCall {
                state: UacState::Inviting,
                invite: invite.clone(),
                local_rtp_port,
                hold,
            },
        );
        self.journal.call_attempted();
        let ev = self.send(invite.into());
        (call_id, vec![ev])
    }

    /// Hang up an answered call: send the BYE.
    pub fn hangup(&mut self, _now: SimTime, call_id: &str) -> Vec<UacEvent> {
        let Some(call) = self.calls.get_mut(call_id) else {
            return vec![];
        };
        if call.state != UacState::Answered {
            return vec![];
        }
        call.state = UacState::ByeSent;
        let bye = Request::new(Method::Bye, call.invite.uri.clone())
            .header(
                HeaderName::Via,
                format_via("sipp-client", 5060, &format!("z9hG4bKbye-{call_id}")),
            )
            .header(
                HeaderName::From,
                call.invite
                    .headers
                    .get(&HeaderName::From)
                    .unwrap_or("<sip:uac>")
                    .to_owned(),
            )
            .header(
                HeaderName::To,
                call.invite
                    .headers
                    .get(&HeaderName::To)
                    .unwrap_or("<sip:uas>")
                    .to_owned(),
            )
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        vec![self.send(bye.into())]
    }

    /// Handle an inbound SIP message.
    pub fn on_sip(&mut self, _now: SimTime, msg: SipMessage) -> Vec<UacEvent> {
        self.journal.count_sip(&msg, MsgDirection::Received);
        let SipMessage::Response(resp) = msg else {
            return vec![]; // the UAC never receives requests in this scenario
        };
        if resp.cseq_method() == Some(Method::Register) {
            return self.on_register_response(&resp).unwrap_or_default();
        }
        let Some(call_id) = resp.call_id().map(str::to_owned) else {
            return vec![];
        };
        let Some(call) = self.calls.get_mut(&call_id) else {
            return vec![];
        };
        match resp.cseq_method() {
            Some(Method::Invite) => {
                if resp.status.is_provisional() {
                    return vec![]; // 100/180: progress only
                }
                if resp.status.is_success() && call.state == UacState::Inviting {
                    call.state = UacState::Answered;
                    let remote_rtp_port = SessionDescription::parse(&resp.body)
                        .map(|s| s.audio_port)
                        .unwrap_or(0);
                    let local_rtp_port = call.local_rtp_port;
                    let hold = call.hold;
                    let ack = self.build_ack(&call_id);
                    return vec![
                        self.send(ack.into()),
                        UacEvent::Answered {
                            call_id,
                            local_rtp_port,
                            remote_node: self.pbx_node,
                            remote_rtp_port,
                            hangup_after: hold,
                        },
                    ];
                }
                if resp.status.is_error() {
                    // ACK the failure and close the attempt.
                    let outcome = match resp.status {
                        StatusCode::BUSY_HERE | StatusCode::SERVICE_UNAVAILABLE => {
                            CallOutcome::Blocked
                        }
                        _ => CallOutcome::Failed,
                    };
                    let ack = self.build_ack(&call_id);
                    self.calls.remove(&call_id);
                    self.journal.call_finished(outcome);
                    return vec![
                        self.send(ack.into()),
                        UacEvent::Ended { call_id, outcome },
                    ];
                }
                vec![]
            }
            Some(Method::Bye) if resp.status.is_final() => {
                self.calls.remove(&call_id);
                self.journal.call_finished(CallOutcome::Completed);
                vec![UacEvent::Ended {
                    call_id,
                    outcome: CallOutcome::Completed,
                }]
            }
            _ => vec![],
        }
    }

    /// Close the books: any call still open is abandoned.
    pub fn finish(&mut self) -> Vec<UacEvent> {
        let mut out = Vec::new();
        for (call_id, _) in std::mem::take(&mut self.calls) {
            self.journal.call_finished(CallOutcome::Abandoned);
            out.push(UacEvent::Ended {
                call_id,
                outcome: CallOutcome::Abandoned,
            });
        }
        out
    }

    fn build_ack(&self, call_id: &str) -> Request {
        let call = &self.calls[call_id];
        Request::new(Method::Ack, call.invite.uri.clone())
            .header(
                HeaderName::Via,
                call.invite
                    .headers
                    .get(&HeaderName::Via)
                    .unwrap_or("SIP/2.0/UDP uac")
                    .to_owned(),
            )
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "1 ACK")
            .header(
                HeaderName::From,
                call.invite
                    .headers
                    .get(&HeaderName::From)
                    .unwrap_or("<sip:uac>")
                    .to_owned(),
            )
            .header(
                HeaderName::To,
                call.invite
                    .headers
                    .get(&HeaderName::To)
                    .unwrap_or("<sip:uas>")
                    .to_owned(),
            )
    }

    fn send(&mut self, msg: SipMessage) -> UacEvent {
        self.journal.count_sip(&msg, MsgDirection::Sent);
        UacEvent::SendSip {
            to: self.pbx_node,
            msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipcore::Response;

    const UAC_NODE: NodeId = NodeId(1);
    const PBX_NODE: NodeId = NodeId(3);

    fn uac() -> Uac {
        Uac::new(UAC_NODE, PBX_NODE, "pbx.unb.br")
    }

    fn sip_of(ev: &UacEvent) -> &SipMessage {
        match ev {
            UacEvent::SendSip { msg, .. } => msg,
            other => panic!("expected SendSip, got {other:?}"),
        }
    }

    fn respond(invite: &Request, status: StatusCode, sdp_port: Option<u16>) -> Response {
        let mut r = invite.make_response(status);
        if let Some(port) = sdp_port {
            r = r.with_body(
                "application/sdp",
                SessionDescription::new("pbx", "pbx.unb.br", port, SdpCodec::Pcmu).to_body(),
            );
        }
        r
    }

    #[test]
    fn happy_path_invite_ack_bye() {
        let mut u = uac();
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(120));
        assert_eq!(evs.len(), 1);
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        assert_eq!(invite.method, Method::Invite);
        assert_eq!(invite.call_id(), Some(cid.as_str()));
        assert!(SessionDescription::parse(&invite.body).is_some());
        assert_eq!(u.open_calls(), 1);

        // 100 and 180 produce nothing.
        assert!(u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::TRYING, None).into()).is_empty());
        assert!(u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::RINGING, None).into()).is_empty());

        // 200 with SDP: ACK + Answered.
        let evs = u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::OK, Some(10_000)).into());
        assert_eq!(evs.len(), 2);
        assert_eq!(sip_of(&evs[0]).as_request().unwrap().method, Method::Ack);
        match &evs[1] {
            UacEvent::Answered {
                call_id,
                remote_rtp_port,
                remote_node,
                hangup_after,
                ..
            } => {
                assert_eq!(call_id, &cid);
                assert_eq!(*remote_rtp_port, 10_000);
                assert_eq!(*remote_node, PBX_NODE);
                assert_eq!(*hangup_after, SimDuration::from_secs(120));
            }
            other => panic!("{other:?}"),
        }

        // Hang up: BYE goes out.
        let evs = u.hangup(SimTime::from_secs(120), &cid);
        assert_eq!(evs.len(), 1);
        let bye = sip_of(&evs[0]).as_request().unwrap().clone();
        assert_eq!(bye.method, Method::Bye);
        assert_eq!(bye.headers.get(&HeaderName::CSeq), Some("2 BYE"));

        // 200 for the BYE closes the call.
        let evs = u.on_sip(SimTime::from_secs(120), respond(&bye, StatusCode::OK, None).into());
        assert_eq!(
            evs,
            vec![UacEvent::Ended {
                call_id: cid,
                outcome: CallOutcome::Completed
            }]
        );
        assert_eq!(u.open_calls(), 0);
        assert_eq!(u.journal.outcome_count(CallOutcome::Completed), 1);
    }

    #[test]
    fn busy_is_blocked_and_acked() {
        let mut u = uac();
        let (cid, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(120));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let evs = u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::BUSY_HERE, None).into());
        assert_eq!(evs.len(), 2);
        assert_eq!(sip_of(&evs[0]).as_request().unwrap().method, Method::Ack);
        assert_eq!(
            evs[1],
            UacEvent::Ended {
                call_id: cid,
                outcome: CallOutcome::Blocked
            }
        );
        assert_eq!(u.journal.outcome_count(CallOutcome::Blocked), 1);
        assert!((u.journal.blocking_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn service_unavailable_also_blocked_404_failed() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::SERVICE_UNAVAILABLE, None).into());
        assert_eq!(u.journal.outcome_count(CallOutcome::Blocked), 1);

        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "9999", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::NOT_FOUND, None).into());
        assert_eq!(u.journal.outcome_count(CallOutcome::Failed), 1);
    }

    #[test]
    fn hangup_before_answer_is_noop() {
        let mut u = uac();
        let (cid, _) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        assert!(u.hangup(SimTime::ZERO, &cid).is_empty());
        assert!(u.hangup(SimTime::ZERO, "no-such-call").is_empty());
    }

    #[test]
    fn duplicate_200_does_not_double_answer() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        let ok = respond(&invite, StatusCode::OK, Some(10_000));
        let first = u.on_sip(SimTime::ZERO, ok.clone().into());
        assert_eq!(first.len(), 2);
        let second = u.on_sip(SimTime::ZERO, ok.into());
        assert!(second.is_empty(), "retransmitted 200 absorbed");
    }

    #[test]
    fn register_message_shape() {
        let mut u = uac();
        let evs = u.register("1001");
        let req = sip_of(&evs[0]).as_request().unwrap();
        assert_eq!(req.method, Method::Register);
        assert_eq!(
            req.headers.get(&HeaderName::Authorization),
            Some("Simple 1001 pw-1001")
        );
    }

    #[test]
    fn finish_abandons_open_calls() {
        let mut u = uac();
        u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        u.start_call(SimTime::ZERO, "1002", "2002", SimDuration::from_secs(1));
        let evs = u.finish();
        assert_eq!(evs.len(), 2);
        assert_eq!(u.journal.outcome_count(CallOutcome::Abandoned), 2);
        assert_eq!(u.open_calls(), 0);
    }

    #[test]
    fn journal_counts_both_directions() {
        let mut u = uac();
        let (_, evs) = u.start_call(SimTime::ZERO, "1001", "2001", SimDuration::from_secs(1));
        let invite = sip_of(&evs[0]).as_request().unwrap().clone();
        u.on_sip(SimTime::ZERO, respond(&invite, StatusCode::TRYING, None).into());
        assert_eq!(u.journal.request_count(Method::Invite), 1);
        assert_eq!(u.journal.response_count(StatusCode::TRYING), 1);
    }
}
