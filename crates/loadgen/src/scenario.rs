//! A SIPp-style scenario engine.
//!
//! SIPp's defining feature is the *scenario*: an XML script of messages to
//! send, messages to expect (some optional), and pauses, executed per
//! call. This module provides the same model as typed steps, with the two
//! built-in scenarios the paper's testbed runs (`uac` and `uas`) plus
//! room for custom flows (early-cancel, re-register, …).
//!
//! A [`ScenarioRunner`] owns one call's progress through the script: feed
//! it inbound messages and pause completions, collect outbound messages
//! and the terminal verdict.

use des::{SimDuration, SimTime};
use sipcore::headers::{with_tag, HeaderName};
use sipcore::message::{format_via, Request, Response, SipMessage};
use sipcore::sdp::{SdpCodec, SessionDescription};
use sipcore::{Method, SipUri, StatusCode};

/// One step of a scenario script.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Send an INVITE with an SDP offer.
    SendInvite,
    /// Send the ACK for the last final response.
    SendAck,
    /// Send a BYE.
    SendBye,
    /// Send a CANCEL for the pending INVITE.
    SendCancel,
    /// Send a response to the last received request.
    SendResponse {
        /// Status to answer with.
        status: StatusCode,
        /// Attach an SDP answer.
        with_sdp: bool,
    },
    /// Wait for a response of the given class (1 = 1xx, 2 = 2xx…).
    Expect {
        /// Status class expected (hundreds digit).
        class: u16,
        /// Optional steps are skipped when a later message arrives first
        /// (SIPp's `optional="true"`).
        optional: bool,
    },
    /// Wait for a request of the given method.
    ExpectRequest(Method),
    /// Pause the scenario (the conversation itself, a pickup delay…).
    Pause(SimDuration),
}

/// A named script.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (diagnostics).
    pub name: &'static str,
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Scenario {
    /// SIPp's standard `uac` flow, matching the paper's Fig. 2 ladder:
    /// INVITE, collect 100/180 (optional), 200, ACK, talk for `hold`,
    /// BYE, collect its 200.
    #[must_use]
    pub fn uac(hold: SimDuration) -> Self {
        Scenario {
            name: "uac",
            steps: vec![
                Step::SendInvite,
                Step::Expect {
                    class: 1,
                    optional: true,
                },
                Step::Expect {
                    class: 1,
                    optional: true,
                },
                Step::Expect {
                    class: 2,
                    optional: false,
                },
                Step::SendAck,
                Step::Pause(hold),
                Step::SendBye,
                Step::Expect {
                    class: 2,
                    optional: false,
                },
            ],
        }
    }

    /// SIPp's standard `uas` flow: expect INVITE, ring, answer, expect
    /// ACK, wait for the BYE, confirm it.
    #[must_use]
    pub fn uas() -> Self {
        Scenario {
            name: "uas",
            steps: vec![
                Step::ExpectRequest(Method::Invite),
                Step::SendResponse {
                    status: StatusCode::RINGING,
                    with_sdp: false,
                },
                Step::SendResponse {
                    status: StatusCode::OK,
                    with_sdp: true,
                },
                Step::ExpectRequest(Method::Ack),
                Step::ExpectRequest(Method::Bye),
                Step::SendResponse {
                    status: StatusCode::OK,
                    with_sdp: false,
                },
            ],
        }
    }

    /// An impatient caller: INVITE, then CANCEL after `patience` without
    /// an answer (expects the 200-to-CANCEL and the 487).
    #[must_use]
    pub fn uac_early_cancel(patience: SimDuration) -> Self {
        Scenario {
            name: "uac-early-cancel",
            steps: vec![
                Step::SendInvite,
                Step::Expect {
                    class: 1,
                    optional: true,
                },
                Step::Pause(patience),
                Step::SendCancel,
                Step::Expect {
                    class: 2,
                    optional: true,
                }, // 200 CANCEL
                Step::Expect {
                    class: 4,
                    optional: false,
                }, // 487
                Step::SendAck,
            ],
        }
    }
}

/// What the runner asks the world to do / reports.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutput {
    /// Transmit this message.
    Send(SipMessage),
    /// Arm a pause timer; call [`ScenarioRunner::pause_done`] when over.
    StartPause(SimDuration),
    /// The script ran to completion.
    Completed,
    /// The script cannot continue (unexpected message).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

/// Identity/addressing context for one call.
#[derive(Debug, Clone)]
pub struct CallContext {
    /// Caller identity (user part).
    pub local_user: String,
    /// Callee extension.
    pub remote_user: String,
    /// SIP domain (the PBX).
    pub domain: String,
    /// Call-ID to use.
    pub call_id: String,
    /// Local media port for SDP bodies.
    pub local_rtp_port: u16,
}

/// Executes one scenario instance for one call.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenario: Scenario,
    ctx: CallContext,
    cursor: usize,
    cseq: u32,
    /// The INVITE we sent (for ACK/CANCEL construction).
    sent_invite: Option<Request>,
    /// Last final response received (for ACK construction).
    last_final: Option<Response>,
    /// Last request received (for response construction, UAS side).
    last_request: Option<Request>,
    local_tag: String,
    finished: bool,
}

impl ScenarioRunner {
    /// A runner at the start of `scenario` for call `ctx`.
    #[must_use]
    pub fn new(scenario: Scenario, ctx: CallContext) -> Self {
        let local_tag = format!("tag-{}", ctx.call_id);
        ScenarioRunner {
            scenario,
            ctx,
            cursor: 0,
            cseq: 0,
            sent_invite: None,
            last_final: None,
            last_request: None,
            local_tag,
            finished: false,
        }
    }

    /// True once the script completed or failed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Scenario step index (diagnostics).
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Begin execution: runs send-steps until the first wait point.
    pub fn start(&mut self, now: SimTime) -> Vec<ScenarioOutput> {
        self.advance(now)
    }

    /// A message for this call arrived.
    pub fn on_message(&mut self, now: SimTime, msg: &SipMessage) -> Vec<ScenarioOutput> {
        if self.finished {
            return vec![];
        }
        // Find the wait step this message satisfies, skipping optional
        // expectations (SIPp semantics).
        let mut idx = self.cursor;
        loop {
            match self.scenario.steps.get(idx) {
                Some(Step::Expect { class, optional }) => {
                    if let SipMessage::Response(resp) = msg {
                        if resp.status.0 / 100 == *class {
                            self.cursor = idx + 1;
                            if resp.status.is_final() {
                                self.last_final = Some(resp.clone());
                            }
                            return self.advance(now);
                        }
                    }
                    if *optional {
                        idx += 1; // fall through to the next expectation
                        continue;
                    }
                    return self.fail(format!("expected {class}xx at step {idx}, got {msg:?}"));
                }
                Some(Step::ExpectRequest(method)) => {
                    if let SipMessage::Request(req) = msg {
                        if req.method == *method {
                            self.cursor = idx + 1;
                            self.last_request = Some(req.clone());
                            return self.advance(now);
                        }
                    }
                    return self.fail(format!("expected {method} at step {idx}, got {msg:?}"));
                }
                Some(Step::Pause(_)) | Some(_) | None => {
                    // A message while not waiting (e.g. a retransmission):
                    // absorb quietly.
                    return vec![];
                }
            }
        }
    }

    /// A pause armed by [`ScenarioOutput::StartPause`] elapsed.
    pub fn pause_done(&mut self, now: SimTime) -> Vec<ScenarioOutput> {
        if self.finished {
            return vec![];
        }
        if matches!(self.scenario.steps.get(self.cursor), Some(Step::Pause(_))) {
            self.cursor += 1;
            return self.advance(now);
        }
        vec![]
    }

    /// Execute consecutive send-steps until a wait point, the end, or a
    /// pause.
    fn advance(&mut self, _now: SimTime) -> Vec<ScenarioOutput> {
        let mut out = Vec::new();
        loop {
            match self.scenario.steps.get(self.cursor).cloned() {
                None => {
                    self.finished = true;
                    out.push(ScenarioOutput::Completed);
                    return out;
                }
                Some(Step::SendInvite) => {
                    let req = self.build_invite();
                    self.sent_invite = Some(req.clone());
                    out.push(ScenarioOutput::Send(req.into()));
                    self.cursor += 1;
                }
                Some(Step::SendAck) => {
                    let ack = self.build_in_dialog(Method::Ack, false);
                    out.push(ScenarioOutput::Send(ack.into()));
                    self.cursor += 1;
                }
                Some(Step::SendBye) => {
                    let bye = self.build_in_dialog(Method::Bye, true);
                    out.push(ScenarioOutput::Send(bye.into()));
                    self.cursor += 1;
                }
                Some(Step::SendCancel) => {
                    let cancel = self.build_in_dialog(Method::Cancel, false);
                    out.push(ScenarioOutput::Send(cancel.into()));
                    self.cursor += 1;
                }
                Some(Step::SendResponse { status, with_sdp }) => {
                    match self.build_response(status, with_sdp) {
                        Some(resp) => out.push(ScenarioOutput::Send(resp.into())),
                        None => {
                            out.extend(self.fail("SendResponse with no request pending".into()));
                            return out;
                        }
                    }
                    self.cursor += 1;
                }
                Some(Step::Pause(d)) => {
                    out.push(ScenarioOutput::StartPause(d));
                    return out;
                }
                Some(Step::Expect { .. }) | Some(Step::ExpectRequest(_)) => {
                    return out; // wait for input
                }
            }
        }
    }

    fn fail(&mut self, reason: String) -> Vec<ScenarioOutput> {
        self.finished = true;
        vec![ScenarioOutput::Failed { reason }]
    }

    fn next_cseq(&mut self) -> u32 {
        self.cseq += 1;
        self.cseq
    }

    fn build_invite(&mut self) -> Request {
        let cseq = self.next_cseq();
        let sdp = SessionDescription::new(
            &self.ctx.local_user,
            "scenario-host",
            self.ctx.local_rtp_port,
            SdpCodec::Pcmu,
        );
        Request::new(
            Method::Invite,
            SipUri::new(&self.ctx.remote_user, &self.ctx.domain),
        )
        .header(
            HeaderName::Via,
            format_via(
                "scenario-host",
                5060,
                &format!("z9hG4bKsc-{}-{cseq}", self.ctx.call_id),
            ),
        )
        .header(
            HeaderName::From,
            format!(
                "<sip:{}@{}>;tag={}",
                self.ctx.local_user, self.ctx.domain, self.local_tag
            ),
        )
        .header(
            HeaderName::To,
            format!("<sip:{}@{}>", self.ctx.remote_user, self.ctx.domain),
        )
        .header(HeaderName::CallId, self.ctx.call_id.clone())
        .header(HeaderName::CSeq, format!("{cseq} INVITE"))
        .header(HeaderName::MaxForwards, "70")
        .with_body("application/sdp", sdp.to_body())
    }

    fn build_in_dialog(&mut self, method: Method, bump_cseq: bool) -> Request {
        let invite = self.sent_invite.clone().expect("in-dialog after INVITE");
        let cseq = if bump_cseq {
            self.next_cseq()
        } else {
            self.cseq
        };
        // To (with the peer's tag) comes from the last final response when
        // present.
        let to = self
            .last_final
            .as_ref()
            .and_then(|r| r.headers.get(&HeaderName::To).map(str::to_owned))
            .or_else(|| invite.headers.get(&HeaderName::To).map(str::to_owned))
            .unwrap_or_else(|| "<sip:peer>".to_owned());
        Request::new(method, invite.uri.clone())
            .header(
                HeaderName::Via,
                format_via(
                    "scenario-host",
                    5060,
                    &format!("z9hG4bKsc-{}-{}-{method}", self.ctx.call_id, cseq),
                ),
            )
            .header(
                HeaderName::From,
                invite
                    .headers
                    .get(&HeaderName::From)
                    .unwrap_or("<sip:me>")
                    .to_owned(),
            )
            .header(HeaderName::To, to)
            .header(HeaderName::CallId, self.ctx.call_id.clone())
            .header(HeaderName::CSeq, format!("{cseq} {method}"))
    }

    fn build_response(&mut self, status: StatusCode, with_sdp: bool) -> Option<Response> {
        let req = self.last_request.as_ref()?;
        let mut resp = req.make_response(status);
        let to = resp
            .headers
            .get(&HeaderName::To)
            .unwrap_or("<sip:me>")
            .to_owned();
        if sipcore::headers::tag_of(&to).is_none() {
            resp.headers
                .set(HeaderName::To, with_tag(&to, &self.local_tag));
        }
        if with_sdp {
            let sdp = SessionDescription::new(
                &self.ctx.local_user,
                "scenario-host",
                self.ctx.local_rtp_port,
                SdpCodec::Pcmu,
            );
            resp = resp.with_body("application/sdp", sdp.to_body());
        }
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(call_id: &str) -> CallContext {
        CallContext {
            local_user: "1001".to_owned(),
            remote_user: "1502".to_owned(),
            domain: "pbx.unb.br".to_owned(),
            call_id: call_id.to_owned(),
            local_rtp_port: 6000,
        }
    }

    fn sent(outs: &[ScenarioOutput]) -> Vec<&SipMessage> {
        outs.iter()
            .filter_map(|o| match o {
                ScenarioOutput::Send(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    /// Wire a uac runner to a uas runner directly and let them converse.
    #[test]
    fn uac_uas_scenarios_complete_the_fig2_ladder() {
        let hold = SimDuration::from_secs(120);
        let mut uac = ScenarioRunner::new(Scenario::uac(hold), ctx("duet"));
        let mut uas = ScenarioRunner::new(Scenario::uas(), ctx("duet"));
        let now = SimTime::ZERO;
        let mut wire_count = 0u32;

        let mut to_uas: Vec<SipMessage> = Vec::new();
        let mut to_uac: Vec<SipMessage> = Vec::new();

        let outs = uac.start(now);
        to_uas.extend(sent(&outs).into_iter().cloned());
        let _ = uas.start(now); // uas starts by waiting

        let mut pause_pending = false;
        let mut guard = 0;
        while (!uac.finished() || !uas.finished()) && guard < 50 {
            guard += 1;
            if to_uas.is_empty() && to_uac.is_empty() {
                // Nothing in flight: release the pause if one is armed
                // (only the UAC pauses in this duet).
                if pause_pending {
                    pause_pending = false;
                    let outs = uac.pause_done(now);
                    to_uas.extend(sent(&outs).into_iter().cloned());
                } else {
                    break;
                }
            }
            for msg in std::mem::take(&mut to_uas) {
                wire_count += 1;
                for out in uas.on_message(now, &msg) {
                    match out {
                        ScenarioOutput::Send(m) => to_uac.push(m),
                        ScenarioOutput::Failed { reason } => panic!("uas failed: {reason}"),
                        _ => {}
                    }
                }
            }
            for msg in std::mem::take(&mut to_uac) {
                wire_count += 1;
                let outs = uac.on_message(now, &msg);
                for out in outs {
                    match out {
                        ScenarioOutput::Send(m) => to_uas.push(m),
                        ScenarioOutput::StartPause(d) => {
                            assert_eq!(d, hold);
                            pause_pending = true;
                        }
                        ScenarioOutput::Failed { reason } => panic!("uac failed: {reason}"),
                        ScenarioOutput::Completed => {}
                    }
                }
            }
        }
        assert!(uac.finished(), "uac at step {}", uac.cursor());
        assert!(uas.finished(), "uas at step {}", uas.cursor());
        // Direct wiring (no B2BUA in between): INVITE, 180, 200, ACK,
        // BYE, 200 = 6 messages.
        assert_eq!(wire_count, 6);
    }

    #[test]
    fn optional_provisionals_may_be_skipped() {
        // A 200 arriving with no 100/180 first must still satisfy the uac
        // scenario (both provisionals are optional).
        let mut uac = ScenarioRunner::new(Scenario::uac(SimDuration::from_secs(1)), ctx("fast"));
        let outs = uac.start(SimTime::ZERO);
        let invite = sent(&outs)[0].as_request().unwrap().clone();
        let outs = uac.on_message(SimTime::ZERO, &invite.make_response(StatusCode::OK).into());
        let msgs = sent(&outs);
        assert_eq!(msgs.len(), 1, "ACK comes straight out");
        assert_eq!(msgs[0].as_request().unwrap().method, Method::Ack);
        assert!(outs
            .iter()
            .any(|o| matches!(o, ScenarioOutput::StartPause(_))));
    }

    #[test]
    fn unexpected_final_fails_the_script() {
        // A 486 where a 2xx is required fails the scenario (the journal
        // layer records the blocked call).
        let mut uac = ScenarioRunner::new(Scenario::uac(SimDuration::from_secs(1)), ctx("busy"));
        let outs = uac.start(SimTime::ZERO);
        let invite = sent(&outs)[0].as_request().unwrap().clone();
        let outs = uac.on_message(
            SimTime::ZERO,
            &invite.make_response(StatusCode::BUSY_HERE).into(),
        );
        assert!(
            matches!(&outs[0], ScenarioOutput::Failed { reason } if reason.contains("expected 2xx"))
        );
        assert!(uac.finished());
    }

    #[test]
    fn early_cancel_scenario_flow() {
        let mut uac = ScenarioRunner::new(
            Scenario::uac_early_cancel(SimDuration::from_secs(5)),
            ctx("cancel"),
        );
        let outs = uac.start(SimTime::ZERO);
        let invite = sent(&outs)[0].as_request().unwrap().clone();
        // Ringing arrives, then the pause runs out.
        let outs = uac.on_message(
            SimTime::ZERO,
            &invite.make_response(StatusCode::RINGING).into(),
        );
        assert!(outs
            .iter()
            .any(|o| matches!(o, ScenarioOutput::StartPause(_))));
        let outs = uac.pause_done(SimTime::from_secs(5));
        let msgs = sent(&outs);
        assert_eq!(msgs[0].as_request().unwrap().method, Method::Cancel);
        // 200-to-CANCEL (optional 2xx), then the 487, then the ACK.
        let cancel = msgs[0].as_request().unwrap().clone();
        uac.on_message(
            SimTime::from_secs(5),
            &cancel.make_response(StatusCode::OK).into(),
        );
        let outs = uac.on_message(
            SimTime::from_secs(5),
            &invite.make_response(StatusCode::REQUEST_TERMINATED).into(),
        );
        let msgs = sent(&outs);
        assert_eq!(msgs[0].as_request().unwrap().method, Method::Ack);
        assert!(uac.finished());
        assert!(!outs
            .iter()
            .any(|o| matches!(o, ScenarioOutput::Failed { .. })));
    }

    #[test]
    fn uas_requires_the_right_method() {
        let mut uas = ScenarioRunner::new(Scenario::uas(), ctx("strict"));
        uas.start(SimTime::ZERO);
        let bye = Request::new(Method::Bye, SipUri::new("x", "pbx.unb.br"))
            .header(HeaderName::CallId, "strict".to_owned())
            .header(HeaderName::CSeq, "1 BYE");
        let outs = uas.on_message(SimTime::ZERO, &bye.into());
        assert!(matches!(&outs[0], ScenarioOutput::Failed { .. }));
    }

    #[test]
    fn retransmissions_while_not_waiting_are_absorbed() {
        let mut uac = ScenarioRunner::new(Scenario::uac(SimDuration::from_secs(9)), ctx("retx"));
        let outs = uac.start(SimTime::ZERO);
        let invite = sent(&outs)[0].as_request().unwrap().clone();
        let ok: SipMessage = invite.make_response(StatusCode::OK).into();
        let _ = uac.on_message(SimTime::ZERO, &ok);
        // Now paused (the conversation); a retransmitted 200 does nothing.
        let outs = uac.on_message(SimTime::ZERO, &ok);
        assert!(outs.is_empty());
        assert!(!uac.finished());
    }

    #[test]
    fn cseq_discipline_in_dialog() {
        let mut uac = ScenarioRunner::new(Scenario::uac(SimDuration::from_secs(1)), ctx("cseq"));
        let outs = uac.start(SimTime::ZERO);
        let invite = sent(&outs)[0].as_request().unwrap().clone();
        assert_eq!(invite.cseq_number(), Some(1));
        let outs = uac.on_message(SimTime::ZERO, &invite.make_response(StatusCode::OK).into());
        let ack = sent(&outs)[0].as_request().unwrap().clone();
        assert_eq!(ack.cseq_number(), Some(1), "ACK shares the INVITE CSeq");
        let outs = uac.pause_done(SimTime::from_secs(1));
        let bye = sent(&outs)[0].as_request().unwrap().clone();
        assert_eq!(bye.cseq_number(), Some(2), "BYE bumps the CSeq");
    }
}
