//! The UAS (callee) scenario engine — SIPp's server side.
//!
//! Scenario: on INVITE answer 180 Ringing immediately, then 200 OK with an
//! SDP answer (after an optional pickup delay), absorb the ACK, stream
//! media, and answer the BYE with 200.

use crate::journal::{Journal, MsgDirection};
use des::{FastMap, SimDuration, SimTime};
use netsim::NodeId;
use sipcore::headers::{with_tag, HeaderName};
use sipcore::message::{Request, SipMessage};
use sipcore::sdp::wire::SdpBody;
use sipcore::sdp::SdpCodec;
use sipcore::{Method, StatusCode};
use std::sync::Arc;

/// Something the UAS asks the world to do or reports.
#[derive(Debug, Clone, PartialEq)]
pub enum UasEvent {
    /// Transmit a SIP message.
    SendSip {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: SipMessage,
    },
    /// The 200 OK should be sent at `at` (pickup delay pending); the world
    /// schedules a timer and then calls [`Uas::answer`].
    AnswerDue {
        /// The call to answer.
        call_id: String,
        /// When to answer.
        at: SimTime,
    },
    /// ACK received — media may flow on these coordinates.
    MediaReady {
        /// The call's Call-ID (callee-leg).
        call_id: String,
        /// Local media port this UAS listens on.
        local_rtp_port: u16,
        /// Peer node (the PBX relay).
        remote_node: NodeId,
        /// Peer media port (from the INVITE's SDP offer).
        remote_rtp_port: u16,
    },
    /// The far end hung up; media for this call should stop.
    Ended {
        /// The call's Call-ID.
        call_id: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UasState {
    Ringing,
    AnswerSent,
    Confirmed,
}

#[derive(Debug, Clone)]
struct UasCall {
    state: UasState,
    invite: Request,
    peer: NodeId,
    local_rtp_port: u16,
    remote_rtp_port: u16,
    /// Codec offered in the INVITE's SDP, echoed back in the answer.
    codec: SdpCodec,
    to_tag: String,
}

/// The UAS engine.
pub struct Uas {
    /// This receiver's node.
    pub node: NodeId,
    /// Time between 180 and 200 (0 = answer immediately, the SIPp default).
    pub pickup_delay: SimDuration,
    /// Accounting ledger.
    pub journal: Journal,
    calls: FastMap<String, UasCall>,
    next_port: u16,
    next_tag: u64,
    /// Shared `o=`/`c=` endpoint string for answer bodies — built once,
    /// refcount-bumped per answer.
    sdp_host: Arc<str>,
}

impl Uas {
    /// A UAS on `node` answering after `pickup_delay`.
    #[must_use]
    pub fn new(node: NodeId, pickup_delay: SimDuration) -> Self {
        Uas {
            node,
            pickup_delay,
            journal: Journal::new(),
            calls: FastMap::default(),
            next_port: 30_000,
            next_tag: 0,
            sdp_host: Arc::from("sipp-server"),
        }
    }

    /// Calls currently ringing or in progress.
    #[must_use]
    pub fn open_calls(&self) -> usize {
        self.calls.len()
    }

    /// Handle an inbound SIP message from `from`.
    pub fn on_sip(&mut self, now: SimTime, from: NodeId, msg: SipMessage) -> Vec<UasEvent> {
        self.journal.count_sip(&msg, MsgDirection::Received);
        let SipMessage::Request(req) = msg else {
            return vec![]; // (200-to-BYE when we hang up is not modelled here)
        };
        match req.method {
            Method::Invite => self.on_invite(now, from, req),
            Method::Ack => self.on_ack(&req),
            Method::Bye => self.on_bye(&req),
            Method::Cancel => self.on_cancel(&req),
            _ => vec![],
        }
    }

    fn on_invite(&mut self, now: SimTime, from: NodeId, req: Request) -> Vec<UasEvent> {
        let Some(call_id) = req.call_id().map(str::to_owned) else {
            return vec![];
        };
        if self.calls.contains_key(&call_id) {
            return vec![]; // retransmission: absorb
        }
        // Lazy view over the offer: port and codec straight off the wire,
        // no owned parse (and direct field reads on a structured body).
        let remote_rtp_port = req.body.sdp_audio_port().unwrap_or(0);
        let codec = req.body.sdp_codec().unwrap_or(SdpCodec::Pcmu);
        let local_rtp_port = self.next_port;
        self.next_port = self.next_port.wrapping_add(2).max(30_000);
        let tag = format!("uas{}", self.next_tag);
        self.next_tag += 1;

        let mut ringing = req.make_response(StatusCode::RINGING);
        let to = ringing
            .headers
            .get(&HeaderName::To)
            .unwrap_or("<sip:uas>")
            .to_owned();
        ringing.headers.set(HeaderName::To, with_tag(&to, &tag));

        self.calls.insert(
            call_id.clone(),
            UasCall {
                state: UasState::Ringing,
                invite: req,
                peer: from,
                local_rtp_port,
                remote_rtp_port,
                codec,
                to_tag: tag,
            },
        );

        let mut events = vec![self.send(from, ringing.into())];
        if self.pickup_delay == SimDuration::ZERO {
            events.extend(self.answer(now, &call_id));
        } else {
            events.push(UasEvent::AnswerDue {
                call_id,
                at: now + self.pickup_delay,
            });
        }
        events
    }

    /// Emit the 200 OK for a ringing call (immediately from
    /// [`Uas::on_sip`] or later when the world's pickup timer fires).
    pub fn answer(&mut self, _now: SimTime, call_id: &str) -> Vec<UasEvent> {
        let Some(call) = self.calls.get_mut(call_id) else {
            return vec![];
        };
        if call.state != UasState::Ringing {
            return vec![];
        }
        call.state = UasState::AnswerSent;
        // Echo the offered codec in the answer; the body stays structured
        // (two refcount bumps), serialized only if the path needs wire.
        let sdp = SdpBody::new(
            Arc::clone(&self.sdp_host),
            Arc::clone(&self.sdp_host),
            call.local_rtp_port,
            call.codec,
        );
        let mut ok = call.invite.make_response(StatusCode::OK);
        let to = ok
            .headers
            .get(&HeaderName::To)
            .unwrap_or("<sip:uas>")
            .to_owned();
        ok.headers.set(HeaderName::To, with_tag(&to, &call.to_tag));
        let ok = ok.with_sdp(sdp);
        let peer = call.peer;
        vec![self.send(peer, ok.into())]
    }

    fn on_ack(&mut self, req: &Request) -> Vec<UasEvent> {
        let Some(call_id) = req.call_id().map(str::to_owned) else {
            return vec![];
        };
        let Some(call) = self.calls.get_mut(&call_id) else {
            return vec![];
        };
        if call.state != UasState::AnswerSent {
            return vec![];
        }
        call.state = UasState::Confirmed;
        vec![UasEvent::MediaReady {
            call_id,
            local_rtp_port: call.local_rtp_port,
            remote_node: call.peer,
            remote_rtp_port: call.remote_rtp_port,
        }]
    }

    fn on_bye(&mut self, req: &Request) -> Vec<UasEvent> {
        let Some(call_id) = req.call_id().map(str::to_owned) else {
            return vec![];
        };
        let ok = req.make_response(StatusCode::OK);
        match self.calls.remove(&call_id) {
            Some(call) => {
                vec![self.send(call.peer, ok.into()), UasEvent::Ended { call_id }]
            }
            None => vec![], // unknown call: nothing to answer to (no peer)
        }
    }

    fn on_cancel(&mut self, req: &Request) -> Vec<UasEvent> {
        let Some(call_id) = req.call_id().map(str::to_owned) else {
            return vec![];
        };
        match self.calls.remove(&call_id) {
            Some(call) => {
                let ok = req.make_response(StatusCode::OK);
                vec![self.send(call.peer, ok.into()), UasEvent::Ended { call_id }]
            }
            None => vec![],
        }
    }

    fn send(&mut self, to: NodeId, msg: SipMessage) -> UasEvent {
        self.journal.count_sip(&msg, MsgDirection::Sent);
        UasEvent::SendSip { to, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipcore::message::format_via;
    use sipcore::sdp::SessionDescription;
    use sipcore::SipUri;

    const UAS_NODE: NodeId = NodeId(2);
    const PBX_NODE: NodeId = NodeId(3);

    fn invite(call_id: &str) -> Request {
        let sdp = SessionDescription::new("asterisk", "pbx", 10_002, SdpCodec::Pcmu);
        Request::new(Method::Invite, SipUri::new("2001", "pbx.unb.br"))
            .header(HeaderName::Via, format_via("pbx", 5060, "z9hG4bKx"))
            .header(HeaderName::From, "<sip:1001@pbx.unb.br>;tag=pbx")
            .header(HeaderName::To, "<sip:2001@pbx.unb.br>")
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "1 INVITE")
            .with_body("application/sdp", sdp.to_body())
    }

    fn sip_of(ev: &UasEvent) -> &SipMessage {
        match ev {
            UasEvent::SendSip { msg, .. } => msg,
            other => panic!("expected SendSip, got {other:?}"),
        }
    }

    #[test]
    fn immediate_answer_sends_180_then_200() {
        let mut u = Uas::new(UAS_NODE, SimDuration::ZERO);
        let evs = u.on_sip(SimTime::ZERO, PBX_NODE, invite("c1").into());
        assert_eq!(evs.len(), 2);
        let ringing = sip_of(&evs[0]).as_response().unwrap();
        assert_eq!(ringing.status, StatusCode::RINGING);
        assert!(
            sipcore::headers::tag_of(ringing.headers.get(&HeaderName::To).unwrap()).is_some(),
            "UAS adds a To tag"
        );
        let ok = sip_of(&evs[1]).as_response().unwrap();
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(ok.body.sdp_audio_port(), Some(30_000));
        // The structured answer serializes exactly as the eager builder
        // would — the Content-Length header already reflects it.
        let eager =
            SessionDescription::new("sipp-server", "sipp-server", 30_000, SdpCodec::Pcmu).to_body();
        assert_eq!(ok.body.to_vec(), eager);
        assert_eq!(
            ok.headers.get(&HeaderName::ContentLength),
            Some(eager.len().to_string().as_str())
        );
        assert_eq!(u.open_calls(), 1);
    }

    #[test]
    fn answer_echoes_offered_codec() {
        let mut u = Uas::new(UAS_NODE, SimDuration::ZERO);
        let sdp = SessionDescription::new("asterisk", "pbx", 10_002, SdpCodec::Pcma);
        let inv = Request::new(Method::Invite, SipUri::new("2001", "pbx.unb.br"))
            .header(HeaderName::Via, format_via("pbx", 5060, "z9hG4bKa"))
            .header(HeaderName::From, "<sip:1001@pbx.unb.br>;tag=pbx")
            .header(HeaderName::To, "<sip:2001@pbx.unb.br>")
            .header(HeaderName::CallId, "alaw-1")
            .header(HeaderName::CSeq, "1 INVITE")
            .with_body("application/sdp", sdp.to_body());
        let evs = u.on_sip(SimTime::ZERO, PBX_NODE, inv.into());
        let ok = sip_of(&evs[1]).as_response().unwrap();
        assert_eq!(
            ok.body.sdp_codec(),
            Some(SdpCodec::Pcma),
            "answer carries the offered codec, not a hardcoded PCMU"
        );
    }

    #[test]
    fn delayed_answer_emits_answer_due() {
        let mut u = Uas::new(UAS_NODE, SimDuration::from_secs(2));
        let evs = u.on_sip(SimTime::from_secs(10), PBX_NODE, invite("c2").into());
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[1],
            UasEvent::AnswerDue {
                call_id: "c2".to_owned(),
                at: SimTime::from_secs(12)
            }
        );
        // World fires the timer.
        let evs = u.answer(SimTime::from_secs(12), "c2");
        assert_eq!(evs.len(), 1);
        assert_eq!(
            sip_of(&evs[0]).as_response().unwrap().status,
            StatusCode::OK
        );
        // Double answer is absorbed.
        assert!(u.answer(SimTime::from_secs(12), "c2").is_empty());
        assert!(u.answer(SimTime::from_secs(12), "nope").is_empty());
    }

    #[test]
    fn ack_triggers_media_ready() {
        let mut u = Uas::new(UAS_NODE, SimDuration::ZERO);
        u.on_sip(SimTime::ZERO, PBX_NODE, invite("c3").into());
        let ack = Request::new(Method::Ack, SipUri::new("2001", "pbx.unb.br"))
            .header(HeaderName::CallId, "c3".to_owned())
            .header(HeaderName::CSeq, "1 ACK");
        let evs = u.on_sip(SimTime::ZERO, PBX_NODE, ack.clone().into());
        assert_eq!(
            evs,
            vec![UasEvent::MediaReady {
                call_id: "c3".to_owned(),
                local_rtp_port: 30_000,
                remote_node: PBX_NODE,
                remote_rtp_port: 10_002,
            }]
        );
        // Duplicate ACK absorbed.
        assert!(u.on_sip(SimTime::ZERO, PBX_NODE, ack.into()).is_empty());
    }

    #[test]
    fn bye_gets_200_and_ends_call() {
        let mut u = Uas::new(UAS_NODE, SimDuration::ZERO);
        u.on_sip(SimTime::ZERO, PBX_NODE, invite("c4").into());
        let bye = Request::new(Method::Bye, SipUri::new("2001", "pbx.unb.br"))
            .header(HeaderName::CallId, "c4".to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        let evs = u.on_sip(SimTime::from_secs(100), PBX_NODE, bye.into());
        assert_eq!(evs.len(), 2);
        assert_eq!(
            sip_of(&evs[0]).as_response().unwrap().status,
            StatusCode::OK
        );
        assert_eq!(
            evs[1],
            UasEvent::Ended {
                call_id: "c4".to_owned()
            }
        );
        assert_eq!(u.open_calls(), 0);
        // BYE for unknown call produces nothing.
        let bye2 = Request::new(Method::Bye, SipUri::new("2001", "pbx.unb.br"))
            .header(HeaderName::CallId, "ghost".to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        assert!(u.on_sip(SimTime::ZERO, PBX_NODE, bye2.into()).is_empty());
    }

    #[test]
    fn cancel_ends_ringing_call() {
        let mut u = Uas::new(UAS_NODE, SimDuration::from_secs(30));
        u.on_sip(SimTime::ZERO, PBX_NODE, invite("c5").into());
        let cancel = Request::new(Method::Cancel, SipUri::new("2001", "pbx.unb.br"))
            .header(HeaderName::CallId, "c5".to_owned())
            .header(HeaderName::CSeq, "1 CANCEL");
        let evs = u.on_sip(SimTime::from_secs(1), PBX_NODE, cancel.into());
        assert_eq!(evs.len(), 2);
        assert_eq!(u.open_calls(), 0);
    }

    #[test]
    fn retransmitted_invite_absorbed() {
        let mut u = Uas::new(UAS_NODE, SimDuration::ZERO);
        let first = u.on_sip(SimTime::ZERO, PBX_NODE, invite("c6").into());
        assert_eq!(first.len(), 2);
        let second = u.on_sip(SimTime::ZERO, PBX_NODE, invite("c6").into());
        assert!(second.is_empty());
        assert_eq!(u.open_calls(), 1);
    }

    #[test]
    fn distinct_calls_get_distinct_ports() {
        let mut u = Uas::new(UAS_NODE, SimDuration::ZERO);
        let e1 = u.on_sip(SimTime::ZERO, PBX_NODE, invite("p1").into());
        let e2 = u.on_sip(SimTime::ZERO, PBX_NODE, invite("p2").into());
        let p1 = sip_of(&e1[1])
            .as_response()
            .unwrap()
            .body
            .sdp_audio_port()
            .unwrap();
        let p2 = sip_of(&e2[1])
            .as_response()
            .unwrap()
            .body
            .sdp_audio_port()
            .unwrap();
        assert_ne!(p1, p2);
    }
}
