//! Per-run accounting: call outcomes and SIP message counts.
//!
//! This is the ledger behind the paper's Table I rows — INVITE / 100 TRY /
//! RING / OK / ACK / BYE / error-message counts plus blocked-call
//! percentages come straight out of a [`Journal`].

use serde::{Deserialize, Serialize};
use sipcore::{Method, SipMessage, StatusCode};
use std::collections::BTreeMap;

/// Final outcome of one attempted call, from the generator's standpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallOutcome {
    /// Answered and completed with a normal BYE handshake.
    Completed,
    /// Refused with 486/503 — the "blocked call" of the capacity study.
    Blocked,
    /// Shed with 503 + Retry-After at least once, then completed on a
    /// retry — overload control deferring work rather than losing it.
    ShedThenOk,
    /// Failed with another error class (404, 500…).
    Failed,
    /// No final response before the experiment ended.
    Abandoned,
}

/// Whether a counted message was sent or received by the instrumented side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgDirection {
    /// Message left this agent.
    Sent,
    /// Message arrived at this agent.
    Received,
}

/// The accounting ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Journal {
    /// Calls attempted (INVITEs placed; a retried call counts once).
    pub attempted: u64,
    /// Retry INVITEs sent after a 503 + Retry-After.
    pub retries: u64,
    /// Outcome tallies.
    outcomes: BTreeMap<String, u64>,
    /// SIP request counts by method name (sent + received).
    requests: BTreeMap<String, u64>,
    /// SIP response counts by status code (sent + received).
    responses: BTreeMap<u16, u64>,
    /// RTP packets sent by this side.
    pub rtp_sent: u64,
    /// RTP packets received by this side.
    pub rtp_received: u64,
}

impl Journal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Journal::default()
    }

    /// Record a placed call.
    pub fn call_attempted(&mut self) {
        self.attempted += 1;
    }

    /// Record a call outcome.
    pub fn call_finished(&mut self, outcome: CallOutcome) {
        *self.outcomes.entry(format!("{outcome:?}")).or_insert(0) += 1;
    }

    /// Count of calls with the given outcome.
    #[must_use]
    pub fn outcome_count(&self, outcome: CallOutcome) -> u64 {
        self.outcomes
            .get(&format!("{outcome:?}"))
            .copied()
            .unwrap_or(0)
    }

    /// Observed blocking probability: blocked / attempted.
    #[must_use]
    pub fn blocking_probability(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        self.outcome_count(CallOutcome::Blocked) as f64 / self.attempted as f64
    }

    /// Record one SIP message passing this agent (either direction).
    pub fn count_sip(&mut self, msg: &SipMessage, _dir: MsgDirection) {
        match msg {
            SipMessage::Request(r) => {
                *self
                    .requests
                    .entry(r.method.as_str().to_owned())
                    .or_insert(0) += 1;
            }
            SipMessage::Response(r) => {
                *self.responses.entry(r.status.0).or_insert(0) += 1;
            }
        }
    }

    /// Requests counted for a method.
    #[must_use]
    pub fn request_count(&self, method: Method) -> u64 {
        self.requests.get(method.as_str()).copied().unwrap_or(0)
    }

    /// Responses counted for a status code.
    #[must_use]
    pub fn response_count(&self, status: StatusCode) -> u64 {
        self.responses.get(&status.0).copied().unwrap_or(0)
    }

    /// Total error-class (≥400) responses counted.
    #[must_use]
    pub fn error_responses(&self) -> u64 {
        self.responses
            .iter()
            .filter(|(code, _)| **code >= 400)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Total SIP messages counted.
    #[must_use]
    pub fn total_sip(&self) -> u64 {
        self.requests.values().sum::<u64>() + self.responses.values().sum::<u64>()
    }

    /// Merge another journal (e.g. UAC + UAS sides).
    pub fn merge(&mut self, other: &Journal) {
        self.attempted += other.attempted;
        self.retries += other.retries;
        for (k, v) in &other.outcomes {
            *self.outcomes.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.requests {
            *self.requests.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.responses {
            *self.responses.entry(*k).or_insert(0) += v;
        }
        self.rtp_sent += other.rtp_sent;
        self.rtp_received += other.rtp_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipcore::{Request, Response, SipUri};

    #[test]
    fn outcome_accounting() {
        let mut j = Journal::new();
        for _ in 0..10 {
            j.call_attempted();
        }
        for _ in 0..7 {
            j.call_finished(CallOutcome::Completed);
        }
        for _ in 0..2 {
            j.call_finished(CallOutcome::Blocked);
        }
        j.call_finished(CallOutcome::Failed);
        assert_eq!(j.attempted, 10);
        assert_eq!(j.outcome_count(CallOutcome::Completed), 7);
        assert_eq!(j.outcome_count(CallOutcome::Blocked), 2);
        assert_eq!(j.outcome_count(CallOutcome::Failed), 1);
        assert_eq!(j.outcome_count(CallOutcome::Abandoned), 0);
        assert!((j.blocking_probability() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_journal_blocking_zero() {
        assert_eq!(Journal::new().blocking_probability(), 0.0);
        assert_eq!(Journal::new().total_sip(), 0);
    }

    #[test]
    fn sip_message_tallies() {
        let mut j = Journal::new();
        let invite = Request::new(Method::Invite, SipUri::new("a", "h"));
        let bye = Request::new(Method::Bye, SipUri::new("a", "h"));
        j.count_sip(&invite.clone().into(), MsgDirection::Sent);
        j.count_sip(&invite.into(), MsgDirection::Received);
        j.count_sip(&bye.into(), MsgDirection::Sent);
        j.count_sip(
            &Response::new(StatusCode::TRYING).into(),
            MsgDirection::Received,
        );
        j.count_sip(
            &Response::new(StatusCode::OK).into(),
            MsgDirection::Received,
        );
        j.count_sip(
            &Response::new(StatusCode::BUSY_HERE).into(),
            MsgDirection::Received,
        );
        j.count_sip(
            &Response::new(StatusCode::SERVICE_UNAVAILABLE).into(),
            MsgDirection::Received,
        );
        assert_eq!(j.request_count(Method::Invite), 2);
        assert_eq!(j.request_count(Method::Bye), 1);
        assert_eq!(j.request_count(Method::Ack), 0);
        assert_eq!(j.response_count(StatusCode::TRYING), 1);
        assert_eq!(j.response_count(StatusCode::OK), 1);
        assert_eq!(j.error_responses(), 2);
        assert_eq!(j.total_sip(), 7);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Journal::new();
        let mut b = Journal::new();
        a.call_attempted();
        a.call_finished(CallOutcome::Completed);
        a.rtp_sent = 100;
        b.call_attempted();
        b.call_finished(CallOutcome::Blocked);
        b.rtp_received = 50;
        b.count_sip(
            &Request::new(Method::Invite, SipUri::new("a", "h")).into(),
            MsgDirection::Sent,
        );
        a.merge(&b);
        assert_eq!(a.attempted, 2);
        assert_eq!(a.outcome_count(CallOutcome::Completed), 1);
        assert_eq!(a.outcome_count(CallOutcome::Blocked), 1);
        assert_eq!(a.rtp_sent, 100);
        assert_eq!(a.rtp_received, 50);
        assert_eq!(a.request_count(Method::Invite), 1);
    }
}
