//! Adaptive playout (jitter) buffer.
//!
//! Receivers do not play packets as they arrive; they delay the first
//! packet of a talkspurt by a target amount and then play at a fixed
//! 20 ms cadence, absorbing network jitter. Packets that miss their
//! deadline are concealed (see [`crate::plc`]); packets that arrive after
//! their slot has played are late drops. The E-model's effective loss is
//! network loss *plus* these late drops, and its delay includes the buffer
//! depth — this module is where those two quantities actually arise.

use crate::jitter::JitterEstimator;
use crate::packet::RtpHeader;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frame period in seconds (20 ms, fixed by the G.711 media plane).
const FRAME_S: f64 = 0.020;

/// What happened at one playout slot or insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlayoutEvent {
    /// A frame played from the buffer (payload attached).
    Played(Vec<u8>),
    /// The slot's packet had not arrived: conceal.
    Concealed,
}

/// Counters over the buffer's lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PlayoutStats {
    /// Frames played from real packets.
    pub played: u64,
    /// Slots concealed (packet missing at its deadline).
    pub concealed: u64,
    /// Packets discarded because their slot had already played.
    pub late_drops: u64,
    /// Duplicate packets discarded.
    pub duplicates: u64,
}

/// The adaptive playout buffer for one stream.
#[derive(Debug, Clone)]
pub struct PlayoutBuffer {
    min_delay_s: f64,
    max_delay_s: f64,
    target_delay_s: f64,
    jitter: JitterEstimator,
    /// Pending frames keyed by frame index (extended from seq numbers).
    pending: BTreeMap<i64, Vec<u8>>,
    /// Sequence number of the first packet (frame index 0).
    base_seq: Option<u16>,
    /// Wall time frame 0 plays.
    base_play_time: f64,
    /// Next frame index due to play.
    next_index: i64,
    /// Highest frame index seen (for extension).
    highest_index: i64,
    stats: PlayoutStats,
    /// Pending retarget to apply at the next talkspurt start.
    retarget: Option<f64>,
}

impl PlayoutBuffer {
    /// A buffer with the given initial/minimum and maximum target delays
    /// (seconds). Typical VoIP defaults: 40 ms initial, 120 ms cap.
    #[must_use]
    pub fn new(min_delay_s: f64, max_delay_s: f64) -> Self {
        assert!(min_delay_s >= 0.0 && max_delay_s >= min_delay_s);
        PlayoutBuffer {
            min_delay_s,
            max_delay_s,
            target_delay_s: min_delay_s,
            jitter: JitterEstimator::new(8000.0),
            pending: BTreeMap::new(),
            base_seq: None,
            base_play_time: 0.0,
            next_index: 0,
            highest_index: 0,
            stats: PlayoutStats::default(),
            retarget: None,
        }
    }

    /// The standard 40 ms / 120 ms configuration.
    #[must_use]
    pub fn standard() -> Self {
        PlayoutBuffer::new(0.040, 0.120)
    }

    /// Current target delay in seconds.
    #[must_use]
    pub fn target_delay_s(&self) -> f64 {
        self.target_delay_s
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PlayoutStats {
        self.stats
    }

    /// Effective loss seen by the decoder: concealed slots over total slots.
    #[must_use]
    pub fn effective_loss(&self) -> f64 {
        let total = self.stats.played + self.stats.concealed;
        if total == 0 {
            0.0
        } else {
            self.stats.concealed as f64 / total as f64
        }
    }

    /// Offer an arriving packet to the buffer.
    pub fn insert(&mut self, arrival_s: f64, header: &RtpHeader, payload: Vec<u8>) {
        self.jitter.record(arrival_s, header.timestamp);
        let index = match self.base_seq {
            None => {
                self.base_seq = Some(header.sequence);
                self.base_play_time = arrival_s + self.target_delay_s;
                0
            }
            Some(base) => {
                // Signed 16-bit distance handles wrap in either direction.
                let delta = header.sequence.wrapping_sub(base) as i16;
                // Extend around the highest index seen so long streams
                // (> 32k packets) keep extending upward.
                let mut idx = i64::from(delta);
                while idx < self.highest_index - 0x8000 {
                    idx += 0x1_0000;
                }
                idx
            }
        };
        self.highest_index = self.highest_index.max(index);

        // A marker bit opens a talkspurt: apply any pending retarget by
        // re-basing the playout clock for this and subsequent frames.
        if header.marker && index > 0 {
            if let Some(new_target) = self.retarget.take() {
                self.target_delay_s = new_target;
                self.base_play_time = arrival_s + new_target - index as f64 * FRAME_S;
            }
        }

        if index < self.next_index {
            self.stats.late_drops += 1;
            return;
        }
        if self.pending.insert(index, payload).is_some() {
            self.stats.duplicates += 1;
        }
    }

    /// Drain every slot whose deadline has passed at wall time `now`.
    ///
    /// Slots are only concealed up to the highest sequence number seen —
    /// a gap is only knowable once a later packet has arrived; trailing
    /// silence is the end of the stream, not loss.
    pub fn pull_due(&mut self, now: f64) -> Vec<PlayoutEvent> {
        let mut out = Vec::new();
        if self.base_seq.is_none() {
            return out;
        }
        while self.next_index <= self.highest_index && self.play_time(self.next_index) <= now {
            match self.pending.remove(&self.next_index) {
                Some(payload) => {
                    self.stats.played += 1;
                    out.push(PlayoutEvent::Played(payload));
                }
                None => {
                    self.stats.concealed += 1;
                    out.push(PlayoutEvent::Concealed);
                }
            }
            self.next_index += 1;
        }
        // Underrun adaptation: if this drain concealed anything, ask for a
        // deeper buffer at the next talkspurt (bounded by the cap).
        if out.contains(&PlayoutEvent::Concealed) {
            let deeper = (self.target_delay_s + 0.010).min(self.max_delay_s);
            // Also fold in the measured jitter: 2J + one frame is the
            // classic rule.
            let by_jitter = (2.0 * self.jitter.jitter_ms() / 1000.0 + FRAME_S)
                .clamp(self.min_delay_s, self.max_delay_s);
            self.retarget = Some(deeper.max(by_jitter));
        }
        out
    }

    fn play_time(&self, index: i64) -> f64 {
        self.base_play_time + index as f64 * FRAME_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(seq: u16, marker: bool) -> RtpHeader {
        RtpHeader {
            marker,
            payload_type: 0,
            sequence: seq,
            timestamp: u32::from(seq) * 160,
            ssrc: 1,
        }
    }

    fn feed_in_order(buf: &mut PlayoutBuffer, n: u16, delay: f64) -> Vec<PlayoutEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let t = f64::from(i) * FRAME_S + delay;
            buf.insert(t, &header(i, i == 0), vec![i as u8]);
            events.extend(buf.pull_due(t));
        }
        // Drain the tail.
        events.extend(buf.pull_due(f64::from(n) * FRAME_S + delay + 1.0));
        events
    }

    #[test]
    fn clean_stream_plays_everything() {
        let mut buf = PlayoutBuffer::standard();
        let events = feed_in_order(&mut buf, 100, 0.010);
        let played = events
            .iter()
            .filter(|e| matches!(e, PlayoutEvent::Played(_)))
            .count();
        assert_eq!(played, 100);
        assert_eq!(buf.stats().concealed, 0);
        assert_eq!(buf.stats().late_drops, 0);
        assert_eq!(buf.effective_loss(), 0.0);
        // Payloads come out in order.
        let first = events.iter().find_map(|e| match e {
            PlayoutEvent::Played(p) => Some(p[0]),
            PlayoutEvent::Concealed => None,
        });
        assert_eq!(first, Some(0));
    }

    #[test]
    fn missing_packet_is_concealed() {
        let mut buf = PlayoutBuffer::standard();
        for i in 0..10u16 {
            if i == 5 {
                continue; // lost
            }
            let t = f64::from(i) * FRAME_S;
            buf.insert(t, &header(i, i == 0), vec![i as u8]);
        }
        let events = buf.pull_due(10.0);
        assert_eq!(events.len(), 10);
        assert_eq!(events[5], PlayoutEvent::Concealed);
        assert_eq!(buf.stats().concealed, 1);
        assert!((buf.effective_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn late_packet_is_dropped() {
        let mut buf = PlayoutBuffer::new(0.040, 0.120);
        buf.insert(0.000, &header(0, true), vec![0]);
        buf.insert(0.045, &header(2, false), vec![2]); // 1 is missing
                                                       // Slots 0 (t=0.040), 1 (0.060), 2 (0.080) all play.
        let events = buf.pull_due(0.085);
        assert_eq!(events.len(), 3);
        assert_eq!(events[1], PlayoutEvent::Concealed, "slot 1 had no packet");
        assert_eq!(buf.stats().concealed, 1);
        // Packet 1 finally arrives — its slot already played.
        buf.insert(0.090, &header(1, false), vec![1]);
        assert_eq!(buf.stats().late_drops, 1);
    }

    #[test]
    fn duplicates_are_counted_once() {
        let mut buf = PlayoutBuffer::standard();
        buf.insert(0.0, &header(0, true), vec![7]);
        buf.insert(0.001, &header(0, false), vec![7]);
        assert_eq!(buf.stats().duplicates, 1);
        let events = buf.pull_due(1.0);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn reordered_packets_still_play_in_order() {
        let mut buf = PlayoutBuffer::standard();
        buf.insert(0.000, &header(0, true), vec![0]);
        buf.insert(0.002, &header(2, false), vec![2]);
        buf.insert(0.004, &header(1, false), vec![1]);
        let events = buf.pull_due(1.0);
        let order: Vec<u8> = events
            .iter()
            .filter_map(|e| match e {
                PlayoutEvent::Played(p) => Some(p[0]),
                PlayoutEvent::Concealed => None,
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(buf.stats().concealed, 0);
    }

    #[test]
    fn underrun_deepens_buffer_at_next_talkspurt() {
        let mut buf = PlayoutBuffer::new(0.020, 0.120);
        let t0_target = buf.target_delay_s();
        // A burst of jitter causes an underrun: packets 1..3 are severely
        // delayed; packet 4's arrival reveals the gap.
        buf.insert(0.000, &header(0, true), vec![0]);
        buf.insert(0.095, &header(4, false), vec![4]);
        let _ = buf.pull_due(0.100); // slots 0..4 due; only 0 and 4 present
        assert!(buf.stats().concealed > 0);
        // Next talkspurt (marker) applies the retarget.
        buf.insert(0.200, &header(10, true), vec![10]);
        assert!(
            buf.target_delay_s() > t0_target,
            "deepened: {} -> {}",
            t0_target,
            buf.target_delay_s()
        );
        assert!(buf.target_delay_s() <= 0.120, "bounded by the cap");
    }

    #[test]
    fn sequence_wraparound_keeps_playing() {
        let mut buf = PlayoutBuffer::standard();
        let mut played = 0;
        for k in 0..100u32 {
            let seq = (65_530u32 + k) as u16; // wraps after 6 packets
            let t = f64::from(k) * FRAME_S;
            buf.insert(t, &header(seq, k == 0), vec![k as u8]);
            played += buf
                .pull_due(t)
                .iter()
                .filter(|e| matches!(e, PlayoutEvent::Played(_)))
                .count();
        }
        played += buf
            .pull_due(10.0)
            .iter()
            .filter(|e| matches!(e, PlayoutEvent::Played(_)))
            .count();
        assert_eq!(played, 100, "no packets lost to the wrap");
        assert_eq!(buf.stats().late_drops, 0);
    }

    #[test]
    fn pull_before_first_packet_is_empty() {
        let mut buf = PlayoutBuffer::standard();
        assert!(buf.pull_due(100.0).is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_delays_rejected() {
        let _ = PlayoutBuffer::new(0.1, 0.05);
    }
}
