//! Adaptive playout (jitter) buffer.
//!
//! Receivers do not play packets as they arrive; they delay the first
//! packet of a talkspurt by a target amount and then play at a fixed
//! 20 ms cadence, absorbing network jitter. Packets that miss their
//! deadline are concealed (see [`crate::plc`]); packets that arrive after
//! their slot has played are late drops. The E-model's effective loss is
//! network loss *plus* these late drops, and its delay includes the buffer
//! depth — this module is where those two quantities actually arise.
//!
//! Storage is a fixed-capacity ring indexed by frame number: slot
//! `index % RING_CAPACITY` holds the (shared, never-copied) payload for
//! frame `index`. Because frames play strictly in order, the ring can
//! only hold indices in `[next_index, next_index + RING_CAPACITY)`, so a
//! slot is unambiguous — no tree, no rebalancing, and `pull_due` is O(due
//! slots). Payloads are `Arc<[u8]>`, keeping the packetizer → relay →
//! playout → scoring path zero-copy end to end.

use crate::jitter::JitterEstimator;
use crate::packet::RtpHeader;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Frame period in seconds (20 ms, fixed by the G.711 media plane).
const FRAME_S: f64 = 0.020;

/// Ring capacity in frames: the reorder/jitter horizon the buffer can
/// hold, ≈ 20.5 s of audio. A packet further than this ahead of the
/// playout point cannot be stored and counts as an overflow drop; real
/// jitter is three orders of magnitude smaller.
const RING_CAPACITY: usize = 1024;

/// What happened at one playout slot or insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlayoutEvent {
    /// A frame played from the buffer (shared payload attached).
    Played(Arc<[u8]>),
    /// The slot's packet had not arrived: conceal.
    Concealed,
}

/// Counters over the buffer's lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PlayoutStats {
    /// Frames played from real packets.
    pub played: u64,
    /// Slots concealed (packet missing at its deadline).
    pub concealed: u64,
    /// Packets discarded because their slot had already played.
    pub late_drops: u64,
    /// Duplicate packets discarded.
    pub duplicates: u64,
    /// Packets discarded because they were further than the ring horizon
    /// ahead of the playout point.
    pub overflow_drops: u64,
}

/// The adaptive playout buffer for one stream.
#[derive(Debug, Clone)]
pub struct PlayoutBuffer {
    min_delay_s: f64,
    max_delay_s: f64,
    target_delay_s: f64,
    jitter: JitterEstimator,
    /// Ring of pending frames; frame `index` lives in slot
    /// `index % RING_CAPACITY`.
    slots: Box<[Option<Arc<[u8]>>]>,
    /// Sequence number of the first packet (frame index 0).
    base_seq: Option<u16>,
    /// Wall time frame 0 plays.
    base_play_time: f64,
    /// Next frame index due to play.
    next_index: i64,
    /// Highest frame index seen (for extension).
    highest_index: i64,
    stats: PlayoutStats,
    /// Pending retarget to apply at the next talkspurt start.
    retarget: Option<f64>,
}

impl PlayoutBuffer {
    /// A buffer with the given initial/minimum and maximum target delays
    /// (seconds). Typical VoIP defaults: 40 ms initial, 120 ms cap.
    #[must_use]
    pub fn new(min_delay_s: f64, max_delay_s: f64) -> Self {
        assert!(min_delay_s >= 0.0 && max_delay_s >= min_delay_s);
        PlayoutBuffer {
            min_delay_s,
            max_delay_s,
            target_delay_s: min_delay_s,
            jitter: JitterEstimator::new(8000.0),
            slots: vec![None; RING_CAPACITY].into_boxed_slice(),
            base_seq: None,
            base_play_time: 0.0,
            next_index: 0,
            highest_index: 0,
            stats: PlayoutStats::default(),
            retarget: None,
        }
    }

    /// The standard 40 ms / 120 ms configuration.
    #[must_use]
    pub fn standard() -> Self {
        PlayoutBuffer::new(0.040, 0.120)
    }

    /// Current target delay in seconds.
    #[must_use]
    pub fn target_delay_s(&self) -> f64 {
        self.target_delay_s
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PlayoutStats {
        self.stats
    }

    /// Effective loss seen by the decoder: concealed slots over total slots.
    #[must_use]
    pub fn effective_loss(&self) -> f64 {
        let total = self.stats.played + self.stats.concealed;
        if total == 0 {
            0.0
        } else {
            self.stats.concealed as f64 / total as f64
        }
    }

    /// Offer an arriving packet to the buffer. The payload is shared —
    /// passing a `Vec<u8>` converts it once; passing an `Arc<[u8]>` from
    /// the zero-copy relay path just bumps the refcount.
    pub fn insert(&mut self, arrival_s: f64, header: &RtpHeader, payload: impl Into<Arc<[u8]>>) {
        self.jitter.record(arrival_s, header.timestamp);
        let index = match self.base_seq {
            None => {
                self.base_seq = Some(header.sequence);
                self.base_play_time = arrival_s + self.target_delay_s;
                0
            }
            Some(base) => {
                // Signed 16-bit distance handles wrap in either direction.
                let delta = header.sequence.wrapping_sub(base) as i16;
                // Extend around the highest index seen so long streams
                // (> 32k packets) keep extending upward.
                let mut idx = i64::from(delta);
                while idx < self.highest_index - 0x8000 {
                    idx += 0x1_0000;
                }
                idx
            }
        };
        self.highest_index = self.highest_index.max(index);

        // A marker bit opens a talkspurt: apply any pending retarget by
        // re-basing the playout clock for this and subsequent frames.
        if header.marker && index > 0 {
            if let Some(new_target) = self.retarget.take() {
                self.target_delay_s = new_target;
                self.base_play_time = arrival_s + new_target - index as f64 * FRAME_S;
            }
        }

        if index < self.next_index {
            self.stats.late_drops += 1;
            return;
        }
        if index - self.next_index >= RING_CAPACITY as i64 {
            self.stats.overflow_drops += 1;
            return;
        }
        let slot = &mut self.slots[(index as u64 % RING_CAPACITY as u64) as usize];
        if slot.replace(payload.into()).is_some() {
            self.stats.duplicates += 1;
        }
    }

    /// Drain every slot whose deadline has passed at wall time `now`.
    ///
    /// Slots are only concealed up to the highest sequence number seen —
    /// a gap is only knowable once a later packet has arrived; trailing
    /// silence is the end of the stream, not loss.
    pub fn pull_due(&mut self, now: f64) -> Vec<PlayoutEvent> {
        let mut out = Vec::new();
        if self.base_seq.is_none() {
            return out;
        }
        while self.next_index <= self.highest_index && self.play_time(self.next_index) <= now {
            let slot = (self.next_index as u64 % RING_CAPACITY as u64) as usize;
            match self.slots[slot].take() {
                Some(payload) => {
                    self.stats.played += 1;
                    out.push(PlayoutEvent::Played(payload));
                }
                None => {
                    self.stats.concealed += 1;
                    out.push(PlayoutEvent::Concealed);
                }
            }
            self.next_index += 1;
        }
        // Underrun adaptation: if this drain concealed anything, ask for a
        // deeper buffer at the next talkspurt (bounded by the cap).
        if out.contains(&PlayoutEvent::Concealed) {
            let deeper = (self.target_delay_s + 0.010).min(self.max_delay_s);
            // Also fold in the measured jitter: 2J + one frame is the
            // classic rule.
            let by_jitter = (2.0 * self.jitter.jitter_ms() / 1000.0 + FRAME_S)
                .clamp(self.min_delay_s, self.max_delay_s);
            self.retarget = Some(deeper.max(by_jitter));
        }
        out
    }

    fn play_time(&self, index: i64) -> f64 {
        self.base_play_time + index as f64 * FRAME_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(seq: u16, marker: bool) -> RtpHeader {
        RtpHeader {
            marker,
            payload_type: 0,
            sequence: seq,
            timestamp: u32::from(seq) * 160,
            ssrc: 1,
        }
    }

    fn feed_in_order(buf: &mut PlayoutBuffer, n: u16, delay: f64) -> Vec<PlayoutEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let t = f64::from(i) * FRAME_S + delay;
            buf.insert(t, &header(i, i == 0), vec![i as u8]);
            events.extend(buf.pull_due(t));
        }
        // Drain the tail.
        events.extend(buf.pull_due(f64::from(n) * FRAME_S + delay + 1.0));
        events
    }

    #[test]
    fn clean_stream_plays_everything() {
        let mut buf = PlayoutBuffer::standard();
        let events = feed_in_order(&mut buf, 100, 0.010);
        let played = events
            .iter()
            .filter(|e| matches!(e, PlayoutEvent::Played(_)))
            .count();
        assert_eq!(played, 100);
        assert_eq!(buf.stats().concealed, 0);
        assert_eq!(buf.stats().late_drops, 0);
        assert_eq!(buf.effective_loss(), 0.0);
        // Payloads come out in order.
        let first = events.iter().find_map(|e| match e {
            PlayoutEvent::Played(p) => Some(p[0]),
            PlayoutEvent::Concealed => None,
        });
        assert_eq!(first, Some(0));
    }

    #[test]
    fn missing_packet_is_concealed() {
        let mut buf = PlayoutBuffer::standard();
        for i in 0..10u16 {
            if i == 5 {
                continue; // lost
            }
            let t = f64::from(i) * FRAME_S;
            buf.insert(t, &header(i, i == 0), vec![i as u8]);
        }
        let events = buf.pull_due(10.0);
        assert_eq!(events.len(), 10);
        assert_eq!(events[5], PlayoutEvent::Concealed);
        assert_eq!(buf.stats().concealed, 1);
        assert!((buf.effective_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn late_packet_is_dropped() {
        let mut buf = PlayoutBuffer::new(0.040, 0.120);
        buf.insert(0.000, &header(0, true), vec![0]);
        buf.insert(0.045, &header(2, false), vec![2]); // 1 is missing
                                                       // Slots 0 (t=0.040), 1 (0.060), 2 (0.080) all play.
        let events = buf.pull_due(0.085);
        assert_eq!(events.len(), 3);
        assert_eq!(events[1], PlayoutEvent::Concealed, "slot 1 had no packet");
        assert_eq!(buf.stats().concealed, 1);
        // Packet 1 finally arrives — its slot already played.
        buf.insert(0.090, &header(1, false), vec![1]);
        assert_eq!(buf.stats().late_drops, 1);
    }

    #[test]
    fn duplicates_are_counted_once() {
        let mut buf = PlayoutBuffer::standard();
        buf.insert(0.0, &header(0, true), vec![7]);
        buf.insert(0.001, &header(0, false), vec![7]);
        assert_eq!(buf.stats().duplicates, 1);
        let events = buf.pull_due(1.0);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn reordered_packets_still_play_in_order() {
        let mut buf = PlayoutBuffer::standard();
        buf.insert(0.000, &header(0, true), vec![0]);
        buf.insert(0.002, &header(2, false), vec![2]);
        buf.insert(0.004, &header(1, false), vec![1]);
        let events = buf.pull_due(1.0);
        let order: Vec<u8> = events
            .iter()
            .filter_map(|e| match e {
                PlayoutEvent::Played(p) => Some(p[0]),
                PlayoutEvent::Concealed => None,
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(buf.stats().concealed, 0);
    }

    #[test]
    fn underrun_deepens_buffer_at_next_talkspurt() {
        let mut buf = PlayoutBuffer::new(0.020, 0.120);
        let t0_target = buf.target_delay_s();
        // A burst of jitter causes an underrun: packets 1..3 are severely
        // delayed; packet 4's arrival reveals the gap.
        buf.insert(0.000, &header(0, true), vec![0]);
        buf.insert(0.095, &header(4, false), vec![4]);
        let _ = buf.pull_due(0.100); // slots 0..4 due; only 0 and 4 present
        assert!(buf.stats().concealed > 0);
        // Next talkspurt (marker) applies the retarget.
        buf.insert(0.200, &header(10, true), vec![10]);
        assert!(
            buf.target_delay_s() > t0_target,
            "deepened: {} -> {}",
            t0_target,
            buf.target_delay_s()
        );
        assert!(buf.target_delay_s() <= 0.120, "bounded by the cap");
    }

    #[test]
    fn sequence_wraparound_keeps_playing() {
        let mut buf = PlayoutBuffer::standard();
        let mut played = 0;
        for k in 0..100u32 {
            let seq = (65_530u32 + k) as u16; // wraps after 6 packets
            let t = f64::from(k) * FRAME_S;
            buf.insert(t, &header(seq, k == 0), vec![k as u8]);
            played += buf
                .pull_due(t)
                .iter()
                .filter(|e| matches!(e, PlayoutEvent::Played(_)))
                .count();
        }
        played += buf
            .pull_due(10.0)
            .iter()
            .filter(|e| matches!(e, PlayoutEvent::Played(_)))
            .count();
        assert_eq!(played, 100, "no packets lost to the wrap");
        assert_eq!(buf.stats().late_drops, 0);
    }

    #[test]
    fn pull_before_first_packet_is_empty() {
        let mut buf = PlayoutBuffer::standard();
        assert!(buf.pull_due(100.0).is_empty());
    }

    #[test]
    fn far_future_packet_overflows_instead_of_growing() {
        let mut buf = PlayoutBuffer::standard();
        buf.insert(0.0, &header(0, true), vec![0]);
        // 2000 frames ahead is beyond the 1024-frame ring horizon.
        buf.insert(0.001, &header(2000, false), vec![1]);
        assert_eq!(buf.stats().overflow_drops, 1);
        // The in-horizon stream is unaffected.
        buf.insert(0.020, &header(1, false), vec![2]);
        let played = buf
            .pull_due(0.1)
            .iter()
            .filter(|e| matches!(e, PlayoutEvent::Played(_)))
            .count();
        assert_eq!(played, 2);
    }

    #[test]
    #[should_panic]
    fn invalid_delays_rejected() {
        let _ = PlayoutBuffer::new(0.1, 0.05);
    }
}

#[cfg(test)]
mod trace_equivalence {
    //! Property test: the ring buffer emits the identical `PlayoutEvent`
    //! sequence (and counters) as the original `BTreeMap<i64, Vec<u8>>`
    //! implementation under arbitrary reorder / duplication / loss traces
    //! whose span stays under the ring horizon.

    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// The pre-ring implementation, kept verbatim as the model.
    struct ModelBuffer {
        min_delay_s: f64,
        max_delay_s: f64,
        target_delay_s: f64,
        jitter: JitterEstimator,
        pending: BTreeMap<i64, Vec<u8>>,
        base_seq: Option<u16>,
        base_play_time: f64,
        next_index: i64,
        highest_index: i64,
        stats: PlayoutStats,
        retarget: Option<f64>,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum ModelEvent {
        Played(Vec<u8>),
        Concealed,
    }

    impl ModelBuffer {
        fn new(min_delay_s: f64, max_delay_s: f64) -> Self {
            ModelBuffer {
                min_delay_s,
                max_delay_s,
                target_delay_s: min_delay_s,
                jitter: JitterEstimator::new(8000.0),
                pending: BTreeMap::new(),
                base_seq: None,
                base_play_time: 0.0,
                next_index: 0,
                highest_index: 0,
                stats: PlayoutStats::default(),
                retarget: None,
            }
        }

        fn insert(&mut self, arrival_s: f64, header: &RtpHeader, payload: Vec<u8>) {
            self.jitter.record(arrival_s, header.timestamp);
            let index = match self.base_seq {
                None => {
                    self.base_seq = Some(header.sequence);
                    self.base_play_time = arrival_s + self.target_delay_s;
                    0
                }
                Some(base) => {
                    let delta = header.sequence.wrapping_sub(base) as i16;
                    let mut idx = i64::from(delta);
                    while idx < self.highest_index - 0x8000 {
                        idx += 0x1_0000;
                    }
                    idx
                }
            };
            self.highest_index = self.highest_index.max(index);
            if header.marker && index > 0 {
                if let Some(new_target) = self.retarget.take() {
                    self.target_delay_s = new_target;
                    self.base_play_time = arrival_s + new_target - index as f64 * FRAME_S;
                }
            }
            if index < self.next_index {
                self.stats.late_drops += 1;
                return;
            }
            if self.pending.insert(index, payload).is_some() {
                self.stats.duplicates += 1;
            }
        }

        fn pull_due(&mut self, now: f64) -> Vec<ModelEvent> {
            let mut out = Vec::new();
            if self.base_seq.is_none() {
                return out;
            }
            while self.next_index <= self.highest_index
                && self.base_play_time + self.next_index as f64 * FRAME_S <= now
            {
                match self.pending.remove(&self.next_index) {
                    Some(payload) => {
                        self.stats.played += 1;
                        out.push(ModelEvent::Played(payload));
                    }
                    None => {
                        self.stats.concealed += 1;
                        out.push(ModelEvent::Concealed);
                    }
                }
                self.next_index += 1;
            }
            if out.contains(&ModelEvent::Concealed) {
                let deeper = (self.target_delay_s + 0.010).min(self.max_delay_s);
                let by_jitter = (2.0 * self.jitter.jitter_ms() / 1000.0 + FRAME_S)
                    .clamp(self.min_delay_s, self.max_delay_s);
                self.retarget = Some(deeper.max(by_jitter));
            }
            out
        }
    }

    fn header(seq: u16, marker: bool) -> RtpHeader {
        RtpHeader {
            marker,
            payload_type: 0,
            sequence: seq,
            timestamp: u32::from(seq) * 160,
            ssrc: 1,
        }
    }

    /// One generated packet of a trace before arrival-order sorting.
    #[derive(Debug, Clone)]
    struct TracePacket {
        seq_offset: u16,
        arrival_s: f64,
        marker: bool,
        duplicate: bool,
        lost: bool,
    }

    proptest! {
        #[test]
        fn ring_matches_btreemap_model(
            // Starting sequence number (exercises wrap) plus, per packet:
            // arrival jitter wide enough to reorder across frames, a marker
            // candidate, a 1-in-20 duplicate draw and a 1-in-10 loss draw.
            start_seq in any::<u16>(),
            raw in proptest::collection::vec(
                (0.0f64..0.080, any::<bool>(), 0u8..20, 0u8..10),
                1..80,
            ),
        ) {
            let mut pkts: Vec<TracePacket> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (jit, marker, dup, lost))| TracePacket {
                    seq_offset: i as u16,
                    arrival_s: i as f64 * FRAME_S + jit,
                    marker: i == 0 || (marker && i % 7 == 0),
                    duplicate: dup == 0,
                    lost: i != 0 && lost == 0,
                })
                .collect();
            // Arrival order, not send order — jitter induces reordering.
            pkts.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).unwrap());
            let mut ring = PlayoutBuffer::standard();
            let mut model = ModelBuffer::new(0.040, 0.120);
            let mut ring_events = Vec::new();
            let mut model_events = Vec::new();
            let feed = |ring: &mut PlayoutBuffer,
                            model: &mut ModelBuffer,
                            p: &TracePacket| {
                let seq = start_seq.wrapping_add(p.seq_offset);
                let h = header(seq, p.marker);
                let payload = vec![p.seq_offset as u8, (p.seq_offset >> 8) as u8];
                ring.insert(p.arrival_s, &h, payload.clone());
                model.insert(p.arrival_s, &h, payload);
            };
            let mut last_t = 0.0f64;
            for p in &pkts {
                if p.lost {
                    continue;
                }
                feed(&mut ring, &mut model, p);
                if p.duplicate {
                    feed(&mut ring, &mut model, p);
                }
                ring_events.extend(ring.pull_due(p.arrival_s));
                model_events.extend(model.pull_due(p.arrival_s));
                last_t = p.arrival_s;
            }
            ring_events.extend(ring.pull_due(last_t + 2.0));
            model_events.extend(model.pull_due(last_t + 2.0));

            prop_assert_eq!(ring_events.len(), model_events.len());
            for (r, m) in ring_events.iter().zip(&model_events) {
                match (r, m) {
                    (PlayoutEvent::Played(a), ModelEvent::Played(b)) => {
                        prop_assert_eq!(&a[..], &b[..]);
                    }
                    (PlayoutEvent::Concealed, ModelEvent::Concealed) => {}
                    _ => prop_assert!(false, "event kind mismatch: {:?} vs {:?}", r, m),
                }
            }
            prop_assert_eq!(ring.stats().played, model.stats.played);
            prop_assert_eq!(ring.stats().concealed, model.stats.concealed);
            prop_assert_eq!(ring.stats().late_drops, model.stats.late_drops);
            prop_assert_eq!(ring.stats().duplicates, model.stats.duplicates);
            prop_assert_eq!(ring.stats().overflow_drops, 0);
            prop_assert!((ring.target_delay_s() - model.target_delay_s).abs() < 1e-12);
        }
    }
}
