//! RTP packet header (RFC 3550 §5.1).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |V=2|P|X|  CC   |M|     PT      |       sequence number         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                           timestamp                           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |           synchronization source (SSRC) identifier            |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! CSRC lists, padding and extensions are not used by the evaluation's
//! media plane and are rejected on decode if flagged.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Length of the fixed RTP header in bytes.
pub const RTP_HEADER_LEN: usize = 12;

/// The RTP protocol version carried in every header.
pub const RTP_VERSION: u8 = 2;

/// Decoded RTP fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpHeader {
    /// Marker bit (set on the first packet of a talkspurt).
    pub marker: bool,
    /// Payload type (0 = PCMU, 8 = PCMA).
    pub payload_type: u8,
    /// Sequence number (increments by one per packet, wraps).
    pub sequence: u16,
    /// Media timestamp in sampling-clock units (8 kHz for G.711).
    pub timestamp: u32,
    /// Synchronisation source identifier.
    pub ssrc: u32,
}

/// A full RTP packet: header plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpPacket {
    /// Fixed header.
    pub header: RtpHeader,
    /// Codec payload (160 bytes for 20 ms of G.711).
    pub payload: Vec<u8>,
}

/// An RTP packet whose payload is shared rather than owned.
///
/// This is the zero-copy representation the simulator moves through the
/// network and the PBX relay: cloning a datagram bumps the [`Arc`]
/// refcount instead of copying the 160 payload bytes, and the decoded
/// header rides alongside so hops never re-parse wire bytes. Use
/// [`RtpDatagram::encode`] only at true materialisation points (pcap
/// capture).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpDatagram {
    /// Fixed header (kept decoded; copy-cheap).
    pub header: RtpHeader,
    /// Shared codec payload (160 bytes for 20 ms of G.711).
    pub payload: Arc<[u8]>,
}

impl RtpDatagram {
    /// Total wire size in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        RTP_HEADER_LEN + self.payload.len()
    }

    /// Materialise header + payload into one owned buffer (pcap only —
    /// this is the copy the relay path avoids).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        out
    }
}

impl From<RtpPacket> for RtpDatagram {
    fn from(p: RtpPacket) -> Self {
        RtpDatagram {
            header: p.header,
            payload: p.payload.into(),
        }
    }
}

/// Why an RTP buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtpError {
    /// Fewer than 12 bytes.
    TooShort,
    /// Version field is not 2.
    BadVersion,
    /// Padding/extension/CSRC present (unsupported in this media plane).
    UnsupportedFeatures,
}

impl core::fmt::Display for RtpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtpError::TooShort => write!(f, "buffer shorter than the RTP header"),
            RtpError::BadVersion => write!(f, "RTP version is not 2"),
            RtpError::UnsupportedFeatures => {
                write!(f, "padding/extension/CSRC not supported")
            }
        }
    }
}

impl std::error::Error for RtpError {}

impl RtpHeader {
    /// Encode into the 12-byte wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; RTP_HEADER_LEN] {
        let mut b = [0u8; RTP_HEADER_LEN];
        b[0] = RTP_VERSION << 6; // P=0, X=0, CC=0
        b[1] = (u8::from(self.marker) << 7) | (self.payload_type & 0x7F);
        b[2..4].copy_from_slice(&self.sequence.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b[8..12].copy_from_slice(&self.ssrc.to_be_bytes());
        b
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<RtpHeader, RtpError> {
        if buf.len() < RTP_HEADER_LEN {
            return Err(RtpError::TooShort);
        }
        if buf[0] >> 6 != RTP_VERSION {
            return Err(RtpError::BadVersion);
        }
        let padding = buf[0] & 0x20 != 0;
        let extension = buf[0] & 0x10 != 0;
        let cc = buf[0] & 0x0F;
        if padding || extension || cc != 0 {
            return Err(RtpError::UnsupportedFeatures);
        }
        Ok(RtpHeader {
            marker: buf[1] & 0x80 != 0,
            payload_type: buf[1] & 0x7F,
            sequence: u16::from_be_bytes([buf[2], buf[3]]),
            timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ssrc: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
        })
    }
}

impl RtpPacket {
    /// Encode header + payload into one buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RTP_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decode a buffer into header + payload.
    pub fn decode(buf: &[u8]) -> Result<RtpPacket, RtpError> {
        let header = RtpHeader::decode(buf)?;
        Ok(RtpPacket {
            header,
            payload: buf[RTP_HEADER_LEN..].to_vec(),
        })
    }

    /// Total wire size in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        RTP_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RtpHeader {
        RtpHeader {
            marker: true,
            payload_type: 0,
            sequence: 4660,
            timestamp: 0x0102_0304,
            ssrc: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn header_encode_layout() {
        let b = sample_header().encode();
        assert_eq!(b[0], 0x80, "V=2, no padding/ext/cc");
        assert_eq!(b[1], 0x80, "marker set, PT=0 (PCMU)");
        assert_eq!(u16::from_be_bytes([b[2], b[3]]), 4660);
        assert_eq!(&b[4..8], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(&b[8..12], &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn header_round_trip() {
        let h = sample_header();
        assert_eq!(RtpHeader::decode(&h.encode()).unwrap(), h);
        let h2 = RtpHeader {
            marker: false,
            payload_type: 8,
            sequence: u16::MAX,
            timestamp: u32::MAX,
            ssrc: 0,
        };
        assert_eq!(RtpHeader::decode(&h2.encode()).unwrap(), h2);
    }

    #[test]
    fn packet_round_trip() {
        let p = RtpPacket {
            header: sample_header(),
            payload: (0..160).map(|i| i as u8).collect(),
        };
        assert_eq!(p.wire_len(), 172);
        let wire = p.encode();
        assert_eq!(wire.len(), 172);
        assert_eq!(RtpPacket::decode(&wire).unwrap(), p);
    }

    #[test]
    fn decode_rejects_short_and_bad_version() {
        assert_eq!(RtpHeader::decode(&[0x80; 11]), Err(RtpError::TooShort));
        let mut b = sample_header().encode();
        b[0] = 0x40; // version 1
        assert_eq!(RtpHeader::decode(&b), Err(RtpError::BadVersion));
    }

    #[test]
    fn decode_rejects_unsupported_features() {
        for flag in [0x20u8, 0x10, 0x01] {
            let mut b = sample_header().encode();
            b[0] |= flag;
            assert_eq!(
                RtpHeader::decode(&b),
                Err(RtpError::UnsupportedFeatures),
                "flag {flag:#x}"
            );
        }
    }

    #[test]
    fn empty_payload_is_fine() {
        let p = RtpPacket {
            header: sample_header(),
            payload: vec![],
        };
        assert_eq!(RtpPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn error_display() {
        assert!(RtpError::TooShort.to_string().contains("short"));
        assert!(RtpError::BadVersion.to_string().contains("version"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// decode ∘ encode = id for all header field values.
        #[test]
        fn header_round_trip_all_fields(
            marker in any::<bool>(),
            pt in 0u8..128,
            seq in any::<u16>(),
            ts in any::<u32>(),
            ssrc in any::<u32>(),
        ) {
            let h = RtpHeader { marker, payload_type: pt, sequence: seq, timestamp: ts, ssrc };
            prop_assert_eq!(RtpHeader::decode(&h.encode()).unwrap(), h);
        }

        /// The decoder never panics on arbitrary bytes.
        #[test]
        fn decoder_total(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = RtpPacket::decode(&buf);
        }
    }
}
