//! ITU-T G.711 companding: μ-law (PCMU) and A-law (PCMA).
//!
//! This is the codec the paper selects for its compatibility with the
//! campus telephone network. The algorithm follows the classic
//! segment-based reference (CCITT G.711 / Sun `g711.c` lineage): 16-bit
//! linear PCM is reduced to 14 bits (μ-law) or 13 bits (A-law), biased,
//! and mapped to a sign + 3-bit segment + 4-bit mantissa byte. Companded
//! bytes are bit-inverted per the standard (μ-law fully, A-law with the
//! 0x55 alternating mask).
//!
//! The public entry points are table-driven: a 64 Ki `u8` encode LUT and
//! a 256-entry `i16` decode LUT per law, all built at compile time from
//! the scalar algorithm in [`reference`]. A table lookup replaces the
//! segment search and branch chain of the scalar code, which matters on
//! the full-media path where every 20 ms frame is 160 companding
//! operations per direction. The [`ulaw_encode_into`]-style slice kernels
//! compand whole frames into caller buffers with no per-sample call
//! overhead and no allocation; the `*_slice` helpers keep the old
//! allocating signatures on top of them. Exhaustive tests check every
//! `i16` (encode) and every code byte (decode) against [`reference`].

/// Branch-free scalar reference implementation.
///
/// This module is the oracle: the exact segment-search algorithm the
/// crate has always used, kept as `const fn`s so the lookup tables are
/// derived from it at compile time and so tests can compare the fast
/// path against it exhaustively. Simulation code should use the
/// table-driven functions in the parent module instead.
pub mod reference {
    /// μ-law bias (in the 14-bit domain the reference algorithm works in,
    /// applied as `0x84 >> 2 = 33`).
    const ULAW_BIAS: i32 = 0x84;
    /// μ-law clip in the 14-bit magnitude domain.
    const ULAW_CLIP: i32 = 8159;

    const SEG_UEND: [i32; 8] = [0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF];
    const SEG_AEND: [i32; 8] = [0x1F, 0x3F, 0x7F, 0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF];

    #[inline]
    const fn segment(val: i32, table: &[i32; 8]) -> usize {
        let mut seg = 0;
        while seg < 8 {
            if val <= table[seg] {
                return seg;
            }
            seg += 1;
        }
        8
    }

    /// Encode one 16-bit linear PCM sample to a μ-law byte.
    #[inline]
    #[must_use]
    pub const fn ulaw_encode(pcm: i16) -> u8 {
        let mut val = (pcm as i32) >> 2; // 16 -> 14 bits
        let mask: u8 = if val < 0 {
            val = -val;
            0x7F
        } else {
            0xFF
        };
        if val > ULAW_CLIP {
            val = ULAW_CLIP;
        }
        val += ULAW_BIAS >> 2;
        let seg = segment(val, &SEG_UEND);
        if seg >= 8 {
            0x7F ^ mask
        } else {
            let uval = ((seg as u8) << 4) | (((val >> (seg + 1)) & 0x0F) as u8);
            uval ^ mask
        }
    }

    /// Decode one μ-law byte to a 16-bit linear PCM sample.
    #[inline]
    #[must_use]
    pub const fn ulaw_decode(code: u8) -> i16 {
        let u = !code;
        let mut t = (((u as i32) & 0x0F) << 3) + ULAW_BIAS;
        t <<= ((u as i32) & 0x70) >> 4;
        let v = if u & 0x80 != 0 {
            ULAW_BIAS - t
        } else {
            t - ULAW_BIAS
        };
        v as i16
    }

    /// Encode one 16-bit linear PCM sample to an A-law byte.
    #[inline]
    #[must_use]
    pub const fn alaw_encode(pcm: i16) -> u8 {
        let mut val = (pcm as i32) >> 3; // 16 -> 13 bits
        let mask: u8 = if val >= 0 {
            0xD5
        } else {
            val = -val - 1;
            0x55
        };
        let seg = segment(val, &SEG_AEND);
        if seg >= 8 {
            0x7F ^ mask
        } else {
            let mut aval = (seg as u8) << 4;
            aval |= if seg < 2 {
                ((val >> 1) & 0x0F) as u8
            } else {
                ((val >> seg) & 0x0F) as u8
            };
            aval ^ mask
        }
    }

    /// Decode one A-law byte to a 16-bit linear PCM sample.
    #[inline]
    #[must_use]
    pub const fn alaw_decode(code: u8) -> i16 {
        let a = code ^ 0x55;
        let mut t = ((a as i32) & 0x0F) << 4;
        let seg = ((a as i32) & 0x70) >> 4;
        match seg {
            0 => t += 8,
            1 => t += 0x108,
            _ => {
                t += 0x108;
                t <<= seg - 1;
            }
        }
        let v = if a & 0x80 != 0 { t } else { -t };
        v as i16
    }
}

/// One encode table per law: every 16-bit PCM value to its companded
/// byte, indexed by the sample reinterpreted as `u16`. 64 KiB each,
/// built in const context from [`reference`].
static ULAW_ENC: [u8; 65536] = build_encode_table(true);
static ALAW_ENC: [u8; 65536] = build_encode_table(false);

/// One decode table per law: all 256 code bytes to linear PCM.
const ULAW_DEC: [i16; 256] = build_decode_table(true);
const ALAW_DEC: [i16; 256] = build_decode_table(false);

const fn build_encode_table(mu: bool) -> [u8; 65536] {
    let mut table = [0u8; 65536];
    let mut i = 0usize;
    while i < 65536 {
        let pcm = i as u16 as i16;
        table[i] = if mu {
            reference::ulaw_encode(pcm)
        } else {
            reference::alaw_encode(pcm)
        };
        i += 1;
    }
    table
}

const fn build_decode_table(mu: bool) -> [i16; 256] {
    let mut table = [0i16; 256];
    let mut i = 0usize;
    while i < 256 {
        table[i] = if mu {
            reference::ulaw_decode(i as u8)
        } else {
            reference::alaw_decode(i as u8)
        };
        i += 1;
    }
    table
}

/// Touch every companding table so later encode/decode calls never pay
/// a first-use cost.
///
/// The tables are compile-time `static`s — there is nothing to *build*
/// at runtime — but 130 KiB of read-only data still faults in page by
/// page on first touch. A sweep calls this once before fanning
/// replications out so the cold cost lands in setup, not inside the
/// first timed run on each worker. Returns a checksum over the tables
/// (a fixed, documented constant in practice) so the reads cannot be
/// optimised away.
pub fn warm() -> u64 {
    let mut acc = 0u64;
    for i in (0..65536).step_by(512) {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(u64::from(ULAW_ENC[i]))
            .wrapping_add(u64::from(ALAW_ENC[i]));
    }
    for i in 0..256 {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(ULAW_DEC[i] as u16 as u64)
            .wrapping_add(ALAW_DEC[i] as u16 as u64);
    }
    acc
}

/// Encode one 16-bit linear PCM sample to a μ-law byte (table lookup).
#[inline]
#[must_use]
pub fn ulaw_encode(pcm: i16) -> u8 {
    ULAW_ENC[pcm as u16 as usize]
}

/// Decode one μ-law byte to a 16-bit linear PCM sample (table lookup).
#[inline]
#[must_use]
pub fn ulaw_decode(code: u8) -> i16 {
    ULAW_DEC[code as usize]
}

/// Encode one 16-bit linear PCM sample to an A-law byte (table lookup).
#[inline]
#[must_use]
pub fn alaw_encode(pcm: i16) -> u8 {
    ALAW_ENC[pcm as u16 as usize]
}

/// Decode one A-law byte to a 16-bit linear PCM sample (table lookup).
#[inline]
#[must_use]
pub fn alaw_decode(code: u8) -> i16 {
    ALAW_DEC[code as usize]
}

#[inline]
fn encode_into(table: &[u8; 65536], pcm: &[i16], out: &mut [u8]) {
    assert_eq!(
        pcm.len(),
        out.len(),
        "output buffer must match input length"
    );
    for (dst, &s) in out.iter_mut().zip(pcm) {
        *dst = table[s as u16 as usize];
    }
}

#[inline]
fn decode_into(table: &[i16; 256], codes: &[u8], out: &mut [i16]) {
    assert_eq!(
        codes.len(),
        out.len(),
        "output buffer must match input length"
    );
    for (dst, &c) in out.iter_mut().zip(codes) {
        *dst = table[c as usize];
    }
}

/// Compand a PCM block to μ-law into a caller-provided buffer.
///
/// The frame kernel of the media plane: no allocation, one table probe
/// per sample, branch-free over the whole block.
///
/// # Panics
/// If `out.len() != pcm.len()`.
#[inline]
pub fn ulaw_encode_into(pcm: &[i16], out: &mut [u8]) {
    encode_into(&ULAW_ENC, pcm, out);
}

/// Expand a μ-law block to PCM into a caller-provided buffer.
///
/// # Panics
/// If `out.len() != codes.len()`.
#[inline]
pub fn ulaw_decode_into(codes: &[u8], out: &mut [i16]) {
    decode_into(&ULAW_DEC, codes, out);
}

/// Compand a PCM block to A-law into a caller-provided buffer.
///
/// # Panics
/// If `out.len() != pcm.len()`.
#[inline]
pub fn alaw_encode_into(pcm: &[i16], out: &mut [u8]) {
    encode_into(&ALAW_ENC, pcm, out);
}

/// Expand an A-law block to PCM into a caller-provided buffer.
///
/// # Panics
/// If `out.len() != codes.len()`.
#[inline]
pub fn alaw_decode_into(codes: &[u8], out: &mut [i16]) {
    decode_into(&ALAW_DEC, codes, out);
}

/// Encode a PCM block to μ-law.
#[must_use]
pub fn ulaw_encode_slice(pcm: &[i16]) -> Vec<u8> {
    let mut out = vec![0u8; pcm.len()];
    ulaw_encode_into(pcm, &mut out);
    out
}

/// Decode a μ-law block to PCM.
#[must_use]
pub fn ulaw_decode_slice(codes: &[u8]) -> Vec<i16> {
    let mut out = vec![0i16; codes.len()];
    ulaw_decode_into(codes, &mut out);
    out
}

/// Encode a PCM block to A-law.
#[must_use]
pub fn alaw_encode_slice(pcm: &[i16]) -> Vec<u8> {
    let mut out = vec![0u8; pcm.len()];
    alaw_encode_into(pcm, &mut out);
    out
}

/// Decode an A-law block to PCM.
#[must_use]
pub fn alaw_decode_slice(codes: &[u8]) -> Vec<i16> {
    let mut out = vec![0i16; codes.len()];
    alaw_decode_into(codes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_is_deterministic_and_nonzero() {
        let a = warm();
        assert_eq!(a, warm(), "pure function of the const tables");
        assert_ne!(a, 0);
    }

    #[test]
    fn lut_encode_matches_reference_exhaustively() {
        // Every one of the 65 536 i16 inputs, both laws.
        for raw in 0..=u16::MAX {
            let pcm = raw as i16;
            assert_eq!(
                ulaw_encode(pcm),
                reference::ulaw_encode(pcm),
                "ulaw pcm={pcm}"
            );
            assert_eq!(
                alaw_encode(pcm),
                reference::alaw_encode(pcm),
                "alaw pcm={pcm}"
            );
        }
    }

    #[test]
    fn lut_decode_matches_reference_exhaustively() {
        for code in 0..=u8::MAX {
            assert_eq!(
                ulaw_decode(code),
                reference::ulaw_decode(code),
                "ulaw code={code:#04x}"
            );
            assert_eq!(
                alaw_decode(code),
                reference::alaw_decode(code),
                "alaw code={code:#04x}"
            );
        }
    }

    #[test]
    fn into_kernels_match_scalar_exhaustively() {
        // Run the block kernels over the full i16 domain in frame-sized
        // chunks so the chunked path is what gets exercised.
        let pcm: Vec<i16> = (0..=u16::MAX).map(|raw| raw as i16).collect();
        let mut ucodes = vec![0u8; pcm.len()];
        let mut acodes = vec![0u8; pcm.len()];
        for (chunk, out) in pcm.chunks(160).zip(ucodes.chunks_mut(160)) {
            ulaw_encode_into(chunk, out);
        }
        for (chunk, out) in pcm.chunks(160).zip(acodes.chunks_mut(160)) {
            alaw_encode_into(chunk, out);
        }
        for i in 0..pcm.len() {
            assert_eq!(ucodes[i], reference::ulaw_encode(pcm[i]));
            assert_eq!(acodes[i], reference::alaw_encode(pcm[i]));
        }
        let codes: Vec<u8> = (0..=u8::MAX).collect();
        let mut upcm = vec![0i16; 256];
        let mut apcm = vec![0i16; 256];
        ulaw_decode_into(&codes, &mut upcm);
        alaw_decode_into(&codes, &mut apcm);
        for i in 0..256 {
            assert_eq!(upcm[i], reference::ulaw_decode(codes[i]));
            assert_eq!(apcm[i], reference::alaw_decode(codes[i]));
        }
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn encode_into_rejects_mismatched_buffers() {
        let mut out = [0u8; 4];
        ulaw_encode_into(&[0i16; 8], &mut out);
    }

    #[test]
    fn ulaw_reference_points() {
        // Zero encodes to 0xFF (positive zero) and both zero codes decode
        // to silence.
        assert_eq!(ulaw_encode(0), 0xFF);
        assert_eq!(ulaw_decode(0xFF), 0);
        assert_eq!(ulaw_decode(0x7F), 0);
        // Extremes map to the top segment codes.
        assert_eq!(ulaw_encode(i16::MAX), 0x80);
        assert_eq!(ulaw_encode(i16::MIN), 0x00);
        // And decode back near full scale.
        assert!(ulaw_decode(0x80) > 31_000);
        assert!(ulaw_decode(0x00) < -31_000);
    }

    #[test]
    fn alaw_reference_points() {
        assert_eq!(alaw_encode(0), 0xD5);
        assert_eq!(
            alaw_decode(0xD5),
            8,
            "A-law has no true zero; +8 is positive zero level"
        );
        assert_eq!(alaw_decode(0x55), -8);
        // Top segment codes: 0x7F xor the sign mask.
        let top_pos = alaw_encode(i16::MAX);
        let top_neg = alaw_encode(i16::MIN);
        assert_eq!(top_pos, 0xAA);
        assert_eq!(top_neg, 0x2A);
        assert!(alaw_decode(top_pos) > 30_000);
        assert!(alaw_decode(top_neg) < -30_000);
    }

    #[test]
    fn ulaw_code_idempotence() {
        // encode(decode(c)) == c for every code except negative zero 0x7F,
        // which decodes to 0 and re-encodes as positive zero 0xFF.
        for c in 0u16..=255 {
            let c = c as u8;
            let back = ulaw_encode(ulaw_decode(c));
            if c == 0x7F {
                assert_eq!(back, 0xFF);
            } else {
                assert_eq!(back, c, "code {c:#04x}");
            }
        }
    }

    #[test]
    fn alaw_code_idempotence() {
        for c in 0u16..=255 {
            let c = c as u8;
            let back = alaw_encode(alaw_decode(c));
            assert_eq!(back, c, "code {c:#04x}");
        }
    }

    #[test]
    fn ulaw_decode_is_odd_symmetric() {
        // Codes with the sign bit cleared are negatives of their mirrored
        // positive codes.
        for c in 0x80u8..=0xFF {
            let pos = ulaw_decode(c);
            let neg = ulaw_decode(c & 0x7F);
            assert_eq!(i32::from(pos), -i32::from(neg), "code {c:#04x}");
        }
    }

    #[test]
    fn alaw_decode_is_odd_symmetric() {
        for c in 0x80u8..=0xFF {
            let pos = alaw_decode(c);
            let neg = alaw_decode(c & 0x7F);
            assert_eq!(i32::from(pos), -i32::from(neg), "code {c:#04x}");
        }
    }

    #[test]
    fn ulaw_decode_monotone_in_magnitude() {
        // Within the positive half, higher code magnitude = larger sample.
        let mut prev = ulaw_decode(0xFF);
        for mag in 1..=0x7F_u8 {
            let v = ulaw_decode(0xFF ^ mag); // 0xFE .. 0x80
            assert!(v > prev, "mag {mag}");
            prev = v;
        }
    }

    #[test]
    fn quantization_error_bounded() {
        // μ-law error is at most half the local step; globally the step for
        // the top segment is 4096 in 16-bit units -> error < 2048 + bias.
        for pcm in (-32768i32..=32767).step_by(17) {
            let pcm = pcm as i16;
            let err = i32::from(ulaw_decode(ulaw_encode(pcm))) - i32::from(pcm);
            assert!(err.abs() <= 2048, "ulaw pcm={pcm} err={err}");
            let err = i32::from(alaw_decode(alaw_encode(pcm))) - i32::from(pcm);
            assert!(err.abs() <= 2048, "alaw pcm={pcm} err={err}");
        }
        // Near zero the codec is nearly transparent (step 8 for μ-law).
        for pcm in -64i16..=64 {
            let err = i32::from(ulaw_decode(ulaw_encode(pcm))) - i32::from(pcm);
            assert!(err.abs() <= 8, "ulaw small pcm={pcm} err={err}");
        }
    }

    #[test]
    fn sine_wave_snr_is_toll_quality() {
        // G.711 achieves ~38 dB SQNR on a near-full-scale sine; require a
        // conservative 30 dB for both laws.
        let n = 8000;
        let mut signal = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / 8000.0;
            signal.push((0.5 * 32767.0 * (2.0 * std::f64::consts::PI * 440.0 * t).sin()) as i16);
        }
        for (enc, dec, name) in [
            (
                ulaw_encode as fn(i16) -> u8,
                ulaw_decode as fn(u8) -> i16,
                "ulaw",
            ),
            (alaw_encode, alaw_decode, "alaw"),
        ] {
            let mut sig_pow = 0.0f64;
            let mut err_pow = 0.0f64;
            for &s in &signal {
                let d = dec(enc(s));
                sig_pow += f64::from(s) * f64::from(s);
                let e = f64::from(d) - f64::from(s);
                err_pow += e * e;
            }
            let snr_db = 10.0 * (sig_pow / err_pow).log10();
            assert!(snr_db > 30.0, "{name} SNR {snr_db:.1} dB");
        }
    }

    #[test]
    fn slice_helpers_match_scalar() {
        let pcm: Vec<i16> = (-200..200).step_by(7).collect();
        let enc = ulaw_encode_slice(&pcm);
        assert_eq!(enc.len(), pcm.len());
        for (i, &s) in pcm.iter().enumerate() {
            assert_eq!(enc[i], ulaw_encode(s));
        }
        let dec = ulaw_decode_slice(&enc);
        for (i, &c) in enc.iter().enumerate() {
            assert_eq!(dec[i], ulaw_decode(c));
        }
        let aenc = alaw_encode_slice(&pcm);
        let adec = alaw_decode_slice(&aenc);
        assert_eq!(adec.len(), pcm.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip error is bounded by the largest quantization step.
        #[test]
        fn ulaw_round_trip_error(pcm in any::<i16>()) {
            let err = i32::from(ulaw_decode(ulaw_encode(pcm))) - i32::from(pcm);
            prop_assert!(err.abs() <= 2048);
        }

        #[test]
        fn alaw_round_trip_error(pcm in any::<i16>()) {
            let err = i32::from(alaw_decode(alaw_encode(pcm))) - i32::from(pcm);
            prop_assert!(err.abs() <= 2048);
        }

        /// Encoding preserves sign (μ-law sign bit set = non-negative input).
        #[test]
        fn ulaw_sign_preserved(pcm in any::<i16>()) {
            let c = ulaw_encode(pcm);
            let decoded = ulaw_decode(c);
            // Signs agree (both are zero or same sign).
            prop_assert!(i32::from(decoded).signum() * i32::from(pcm).signum() >= 0);
        }

        /// Encoding is monotone: larger sample never yields smaller decode.
        #[test]
        fn ulaw_monotone(a in any::<i16>(), b in any::<i16>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(ulaw_decode(ulaw_encode(lo)) <= ulaw_decode(ulaw_encode(hi)));
        }

        #[test]
        fn alaw_monotone(a in any::<i16>(), b in any::<i16>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(alaw_decode(alaw_encode(lo)) <= alaw_decode(alaw_encode(hi)));
        }
    }
}
