//! Voice activity / talkspurt modelling.
//!
//! The paper's experiments deliberately use "a dialogue between end-points
//! without moments of idleness" — i.e. VAD off, a constant 50 pps per
//! direction. Real conversations alternate talkspurts and silences
//! (classically modelled as a two-state Markov process with ~1 s talk and
//! ~1.35 s silence means, giving ~40% activity per direction). This module
//! provides that source so the ablation bench can quantify how much
//! headroom silence suppression would have bought the UnB deployment.

use crate::packetizer::{VoiceSource, SAMPLES_PER_FRAME};
use des::rng::Distributions;
use des::StreamRng;

/// What a talkspurt source emits for one 20 ms frame slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameSlot {
    /// Active speech: samples to encode; `start_of_spurt` drives the RTP
    /// marker bit.
    Talk {
        /// PCM samples for this frame.
        samples: Vec<i16>,
        /// True on the first frame after silence (RTP marker).
        start_of_spurt: bool,
    },
    /// Silence: with suppression on, nothing is sent for this slot.
    Silence,
}

/// A two-state (talk/silence) Markov voice source.
#[derive(Debug, Clone)]
pub struct TalkspurtSource {
    voice: VoiceSource,
    rng: StreamRng,
    mean_talk_frames: f64,
    mean_silence_frames: f64,
    talking: bool,
    frames_left: u64,
    fresh_spurt: bool,
}

impl TalkspurtSource {
    /// A source with the given mean talkspurt and silence durations in
    /// seconds (Brady's classic values are ≈1.0 s talk, ≈1.35 s silence).
    #[must_use]
    pub fn new(seed: u64, mean_talk_s: f64, mean_silence_s: f64) -> Self {
        assert!(mean_talk_s > 0.0 && mean_silence_s >= 0.0);
        let mut rng = StreamRng::seed_from_u64(seed ^ 0x7A1C_59D2_7AB3_0C41);
        let mean_talk_frames = mean_talk_s / 0.020;
        let mean_silence_frames = mean_silence_s / 0.020;
        let first = sample_geometric(&mut rng, mean_talk_frames);
        TalkspurtSource {
            voice: VoiceSource::new(seed),
            rng,
            mean_talk_frames,
            mean_silence_frames,
            talking: true,
            frames_left: first,
            fresh_spurt: true,
        }
    }

    /// The conversational default (≈42% activity).
    #[must_use]
    pub fn conversational(seed: u64) -> Self {
        TalkspurtSource::new(seed, 1.0, 1.35)
    }

    /// Produce the next 20 ms slot.
    pub fn next_slot(&mut self) -> FrameSlot {
        while self.frames_left == 0 {
            self.talking = !self.talking;
            self.fresh_spurt = self.talking;
            let mean = if self.talking {
                self.mean_talk_frames
            } else {
                self.mean_silence_frames
            };
            self.frames_left = sample_geometric(&mut self.rng, mean);
        }
        self.frames_left -= 1;
        if self.talking {
            let start = self.fresh_spurt;
            self.fresh_spurt = false;
            FrameSlot::Talk {
                samples: self.voice.next_samples(SAMPLES_PER_FRAME),
                start_of_spurt: start,
            }
        } else {
            FrameSlot::Silence
        }
    }
}

/// Geometric number of frames with the given mean (at least 1).
fn sample_geometric(rng: &mut StreamRng, mean_frames: f64) -> u64 {
    if mean_frames <= 1.0 {
        return 1;
    }
    // Exponential holding discretised to frames.
    (rng.exp_mean(mean_frames).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_factor_matches_the_model() {
        let mut src = TalkspurtSource::conversational(5);
        let n = 200_000;
        let talking = (0..n)
            .filter(|_| matches!(src.next_slot(), FrameSlot::Talk { .. }))
            .count();
        let activity = talking as f64 / n as f64;
        // 1.0 / (1.0 + 1.35) ≈ 0.426.
        assert!((activity - 0.426).abs() < 0.03, "activity={activity}");
    }

    #[test]
    fn marker_set_exactly_on_spurt_starts() {
        let mut src = TalkspurtSource::new(9, 0.2, 0.2);
        let mut prev_silence = false;
        let mut spurt_starts = 0;
        let mut marker_frames = 0;
        for _ in 0..10_000 {
            match src.next_slot() {
                FrameSlot::Talk { start_of_spurt, .. } => {
                    if start_of_spurt {
                        marker_frames += 1;
                        assert!(
                            prev_silence || marker_frames == 1,
                            "marker only after silence (or at stream start)"
                        );
                    }
                    if prev_silence {
                        spurt_starts += 1;
                        assert!(start_of_spurt, "first talk frame must carry the marker");
                    }
                    prev_silence = false;
                }
                FrameSlot::Silence => {
                    prev_silence = true;
                }
            }
        }
        assert!(spurt_starts > 10, "the source alternates: {spurt_starts}");
        assert_eq!(
            marker_frames,
            spurt_starts + 1,
            "start-of-stream marker plus one per spurt"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let collect = |seed| {
            let mut s = TalkspurtSource::conversational(seed);
            (0..500)
                .map(|_| matches!(s.next_slot(), FrameSlot::Talk { .. }))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn talk_frames_carry_real_audio() {
        let mut src = TalkspurtSource::new(3, 10.0, 0.0001);
        match src.next_slot() {
            FrameSlot::Talk { samples, .. } => {
                assert_eq!(samples.len(), SAMPLES_PER_FRAME);
                assert!(samples.iter().any(|&s| s != 0));
            }
            FrameSlot::Silence => panic!("long talk mean should start talking"),
        }
    }

    #[test]
    fn bandwidth_saving_estimate() {
        // The ablation headline: silence suppression cuts packet rate by
        // the inactivity factor (~57%), which maps 1:1 to PBX relay load.
        let mut src = TalkspurtSource::conversational(11);
        let n = 100_000;
        let sent = (0..n)
            .filter(|_| matches!(src.next_slot(), FrameSlot::Talk { .. }))
            .count();
        let saving = 1.0 - sent as f64 / n as f64;
        assert!(saving > 0.5 && saving < 0.65, "saving={saving}");
    }
}
