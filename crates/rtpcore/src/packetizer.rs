//! Packetization: PCM sample blocks → timed RTP packets.
//!
//! The evaluation's media plane is fixed at the G.711 defaults the paper
//! uses: 8 kHz sampling, 20 ms packet time, hence 160 samples (and 160
//! companded bytes) per packet and 50 packets per second per direction.

use crate::g711::{alaw_encode, alaw_encode_into, ulaw_encode, ulaw_encode_into};
use crate::packet::{RtpDatagram, RtpHeader, RtpPacket};
use std::sync::Arc;

/// Audio sampling rate (Hz).
pub const SAMPLE_RATE_HZ: u32 = 8000;
/// Packet time in milliseconds.
pub const PTIME_MS: u32 = 20;
/// Samples per RTP packet: 8000 Hz × 20 ms.
pub const SAMPLES_PER_FRAME: usize = (SAMPLE_RATE_HZ as usize * PTIME_MS as usize) / 1000;
/// Packets per second per direction.
pub const PACKETS_PER_SECOND: u32 = 1000 / PTIME_MS;

/// Which G.711 law to compand with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Law {
    /// μ-law (payload type 0).
    Mu,
    /// A-law (payload type 8).
    A,
}

impl Law {
    /// Static RTP payload type.
    #[must_use]
    pub fn payload_type(self) -> u8 {
        match self {
            Law::Mu => 0,
            Law::A => 8,
        }
    }
}

/// A deterministic speech-band signal source standing in for a microphone.
///
/// Produces a sum of two enharmonic tones with slow amplitude modulation —
/// enough spectral and envelope structure to exercise the codec and the
/// quality analysis without shipping audio fixtures. Each source is phase-
/// offset by its seed so concurrent calls do not correlate.
#[derive(Debug, Clone)]
pub struct VoiceSource {
    sample_index: u64,
    phase_a: f64,
    phase_b: f64,
}

impl VoiceSource {
    /// A source whose phases are derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let golden = 0.618_033_988_749_895_f64;
        VoiceSource {
            sample_index: 0,
            phase_a: (seed as f64 * golden).fract() * std::f64::consts::TAU,
            phase_b: (seed as f64 * golden * golden).fract() * std::f64::consts::TAU,
        }
    }

    /// Produce the next `n` PCM samples.
    pub fn next_samples(&mut self, n: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = self.sample_index as f64 / f64::from(SAMPLE_RATE_HZ);
            // 310 Hz + 1510 Hz partials, 2.3 Hz envelope: speech-ish.
            let env = 0.55 + 0.45 * (std::f64::consts::TAU * 2.3 * t).sin();
            let s = env
                * (0.6 * (std::f64::consts::TAU * 310.0 * t + self.phase_a).sin()
                    + 0.4 * (std::f64::consts::TAU * 1510.0 * t + self.phase_b).sin());
            out.push((s * 0.5 * f64::from(i16::MAX)) as i16);
            self.sample_index += 1;
        }
        out
    }
}

/// Batched phasor-bank twin of [`VoiceSource`].
///
/// Synthesizes the same two-partial + envelope signal family, but instead
/// of three `sin()` calls per sample it advances three complex rotors by
/// a fixed per-sample rotation — four multiplies and two adds each — and
/// renormalizes once per [`Self::fill`] call. That removes the
/// transcendental work that dominates the full-media profile once
/// companding is table-driven. Phase offsets are seeded exactly like
/// [`VoiceSource::new`], so concurrent calls stay decorrelated and the
/// waveform tracks the scalar source to within a couple of LSBs over a
/// frame; the simulation never reads payload bytes, so the tiny rounding
/// divergence cannot reach any physics output.
#[derive(Debug, Clone)]
pub struct FastVoiceSource {
    /// `(cos, sin)` state of the 310 Hz, 1510 Hz and 2.3 Hz rotors.
    tone_a: (f64, f64),
    tone_b: (f64, f64),
    env: (f64, f64),
    /// Per-sample rotation of each rotor.
    rot_a: (f64, f64),
    rot_b: (f64, f64),
    rot_env: (f64, f64),
}

#[inline]
fn rotate(z: (f64, f64), r: (f64, f64)) -> (f64, f64) {
    (z.0 * r.0 - z.1 * r.1, z.0 * r.1 + z.1 * r.0)
}

impl FastVoiceSource {
    /// A source whose phases are derived from `seed`, matching
    /// [`VoiceSource::new`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let golden = 0.618_033_988_749_895_f64;
        let phase_a = (seed as f64 * golden).fract() * std::f64::consts::TAU;
        let phase_b = (seed as f64 * golden * golden).fract() * std::f64::consts::TAU;
        let step = |hz: f64| {
            let w = std::f64::consts::TAU * hz / f64::from(SAMPLE_RATE_HZ);
            (w.cos(), w.sin())
        };
        FastVoiceSource {
            tone_a: (phase_a.cos(), phase_a.sin()),
            tone_b: (phase_b.cos(), phase_b.sin()),
            env: (1.0, 0.0),
            rot_a: step(310.0),
            rot_b: step(1510.0),
            rot_env: step(2.3),
        }
    }

    /// Fill `out` with the next `out.len()` PCM samples.
    pub fn fill(&mut self, out: &mut [i16]) {
        let (mut ta, mut tb, mut env) = (self.tone_a, self.tone_b, self.env);
        for dst in out.iter_mut() {
            let e = 0.55 + 0.45 * env.1;
            let s = e * (0.6 * ta.1 + 0.4 * tb.1);
            *dst = (s * 0.5 * f64::from(i16::MAX)) as i16;
            ta = rotate(ta, self.rot_a);
            tb = rotate(tb, self.rot_b);
            env = rotate(env, self.rot_env);
        }
        // One renormalization per block keeps |z| = 1 against rounding
        // drift without touching the per-sample loop.
        let norm = |z: (f64, f64)| {
            let m = (z.0 * z.0 + z.1 * z.1).sqrt();
            (z.0 / m, z.1 / m)
        };
        self.tone_a = norm(ta);
        self.tone_b = norm(tb);
        self.env = norm(env);
    }
}

/// Stateful RTP packetizer for one outgoing stream.
#[derive(Debug, Clone)]
pub struct Packetizer {
    ssrc: u32,
    law: Law,
    next_sequence: u16,
    next_timestamp: u32,
    first: bool,
}

impl Packetizer {
    /// A packetizer for stream `ssrc`, starting at the given sequence
    /// number and timestamp (real stacks randomise both; the simulation
    /// passes values from its RNG stream).
    #[must_use]
    pub fn new(ssrc: u32, law: Law, first_sequence: u16, first_timestamp: u32) -> Self {
        Packetizer {
            ssrc,
            law,
            next_sequence: first_sequence,
            next_timestamp: first_timestamp,
            first: true,
        }
    }

    /// Consume exactly [`SAMPLES_PER_FRAME`] PCM samples and emit the next
    /// packet. The first packet of the stream carries the marker bit.
    ///
    /// # Panics
    /// If `samples.len() != SAMPLES_PER_FRAME`.
    pub fn packetize(&mut self, samples: &[i16]) -> RtpPacket {
        assert_eq!(
            samples.len(),
            SAMPLES_PER_FRAME,
            "one 20 ms frame at a time"
        );
        let mut payload = vec![0u8; SAMPLES_PER_FRAME];
        match self.law {
            Law::Mu => ulaw_encode_into(samples, &mut payload),
            Law::A => alaw_encode_into(samples, &mut payload),
        }
        let pkt = RtpPacket {
            header: RtpHeader {
                marker: self.first,
                payload_type: self.law.payload_type(),
                sequence: self.next_sequence,
                timestamp: self.next_timestamp,
                ssrc: self.ssrc,
            },
            payload,
        };
        self.first = false;
        self.next_sequence = self.next_sequence.wrapping_add(1);
        self.next_timestamp = self.next_timestamp.wrapping_add(SAMPLES_PER_FRAME as u32);
        pkt
    }

    /// Emit just the next header, advancing sequence/timestamp/marker
    /// exactly like [`Self::packetize`]. The zero-copy media path pairs
    /// this with a shared payload it already holds.
    pub fn next_header(&mut self) -> RtpHeader {
        let header = RtpHeader {
            marker: self.first,
            payload_type: self.law.payload_type(),
            sequence: self.next_sequence,
            timestamp: self.next_timestamp,
            ssrc: self.ssrc,
        };
        self.first = false;
        self.next_sequence = self.next_sequence.wrapping_add(1);
        self.next_timestamp = self.next_timestamp.wrapping_add(SAMPLES_PER_FRAME as u32);
        header
    }

    /// Encode one 20 ms frame into a *shared* payload buffer, ready to be
    /// reused across frames (and across relay hops) without copying.
    ///
    /// # Panics
    /// If `samples.len() != SAMPLES_PER_FRAME`.
    #[must_use]
    pub fn encode_shared(&self, samples: &[i16]) -> Arc<[u8]> {
        assert_eq!(
            samples.len(),
            SAMPLES_PER_FRAME,
            "one 20 ms frame at a time"
        );
        match self.law {
            Law::Mu => samples.iter().map(|&s| ulaw_encode(s)).collect(),
            Law::A => samples.iter().map(|&s| alaw_encode(s)).collect(),
        }
    }

    /// Scalar-reference variant of [`Self::encode_shared`]: per-sample
    /// segment-search companding from [`crate::g711::reference`] rather
    /// than the lookup tables. This is the pre-vectorization media
    /// kernel, kept callable so `bench_media_json` can run the old and
    /// new compute planes against each other in one binary.
    ///
    /// # Panics
    /// If `samples.len() != SAMPLES_PER_FRAME`.
    #[must_use]
    pub fn encode_shared_reference(&self, samples: &[i16]) -> Arc<[u8]> {
        assert_eq!(
            samples.len(),
            SAMPLES_PER_FRAME,
            "one 20 ms frame at a time"
        );
        match self.law {
            Law::Mu => samples
                .iter()
                .map(|&s| crate::g711::reference::ulaw_encode(s))
                .collect(),
            Law::A => samples
                .iter()
                .map(|&s| crate::g711::reference::alaw_encode(s))
                .collect(),
        }
    }

    /// Emit the next packet around an already-companded shared payload:
    /// the refcount bumps, the bytes do not move. Sequence/timestamp
    /// advance exactly like [`Self::packetize`].
    ///
    /// # Panics
    /// If `payload.len() != SAMPLES_PER_FRAME`.
    pub fn packetize_shared(&mut self, payload: Arc<[u8]>) -> RtpDatagram {
        assert_eq!(
            payload.len(),
            SAMPLES_PER_FRAME,
            "one 20 ms frame at a time"
        );
        RtpDatagram {
            header: self.next_header(),
            payload,
        }
    }

    /// Number of packets required for `duration_s` seconds of audio.
    #[must_use]
    pub fn packets_for_duration(duration_s: f64) -> u64 {
        (duration_s * f64::from(PACKETS_PER_SECOND)).round() as u64
    }

    /// Advance the media clock over one silent (suppressed) frame: the
    /// timestamp moves with wall time but no packet is emitted and the
    /// sequence number stays put — RFC 3550 semantics for discontinuous
    /// transmission. The next emitted packet will carry the marker bit to
    /// flag the new talkspurt.
    pub fn skip_frame(&mut self) {
        self.next_timestamp = self.next_timestamp.wrapping_add(SAMPLES_PER_FRAME as u32);
        self.first = true; // next packet starts a talkspurt
    }

    /// Emit the next packet with an already-companded payload, advancing
    /// sequence/timestamp exactly like [`Self::packetize`].
    ///
    /// This is the large-sweep fast path: the experiment encodes real
    /// audio every Nth frame and reuses the companded bytes in between, so
    /// headers/counts stay exact while skipping redundant DSP work (the
    /// `ablation_rtp_fidelity` bench quantifies the saving).
    ///
    /// # Panics
    /// If `payload.len() != SAMPLES_PER_FRAME`.
    pub fn packetize_raw(&mut self, payload: Vec<u8>) -> RtpPacket {
        assert_eq!(
            payload.len(),
            SAMPLES_PER_FRAME,
            "one 20 ms frame at a time"
        );
        let pkt = RtpPacket {
            header: RtpHeader {
                marker: self.first,
                payload_type: self.law.payload_type(),
                sequence: self.next_sequence,
                timestamp: self.next_timestamp,
                ssrc: self.ssrc,
            },
            payload,
        };
        self.first = false;
        self.next_sequence = self.next_sequence.wrapping_add(1);
        self.next_timestamp = self.next_timestamp.wrapping_add(SAMPLES_PER_FRAME as u32);
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_constants_match_the_paper() {
        assert_eq!(SAMPLES_PER_FRAME, 160);
        assert_eq!(PACKETS_PER_SECOND, 50);
        // A 120 s call sends 6000 packets per direction; both directions as
        // seen by the monitor ≈ 12000 ≈ the paper's 12037/call at A=40.
        assert_eq!(Packetizer::packets_for_duration(120.0), 6000);
    }

    #[test]
    fn packetizer_sequences_and_timestamps() {
        let mut src = VoiceSource::new(1);
        let mut p = Packetizer::new(0xABCD, Law::Mu, 100, 5000);
        let p1 = p.packetize(&src.next_samples(160));
        let p2 = p.packetize(&src.next_samples(160));
        let p3 = p.packetize(&src.next_samples(160));
        assert!(p1.header.marker, "first packet marks talkspurt");
        assert!(!p2.header.marker);
        assert_eq!(p1.header.sequence, 100);
        assert_eq!(p2.header.sequence, 101);
        assert_eq!(p3.header.sequence, 102);
        assert_eq!(p1.header.timestamp, 5000);
        assert_eq!(p2.header.timestamp, 5160);
        assert_eq!(p1.header.payload_type, 0);
        assert_eq!(p1.header.ssrc, 0xABCD);
        assert_eq!(p1.payload.len(), 160);
        assert_eq!(p1.wire_len(), 172);
    }

    #[test]
    fn sequence_and_timestamp_wrap() {
        let mut src = VoiceSource::new(2);
        let mut p = Packetizer::new(1, Law::A, u16::MAX, u32::MAX - 100);
        let p1 = p.packetize(&src.next_samples(160));
        let p2 = p.packetize(&src.next_samples(160));
        assert_eq!(p1.header.sequence, u16::MAX);
        assert_eq!(p2.header.sequence, 0, "sequence wraps");
        assert!(p2.header.timestamp < 100, "timestamp wraps");
        assert_eq!(p1.header.payload_type, 8);
    }

    #[test]
    #[should_panic(expected = "20 ms frame")]
    fn wrong_frame_size_panics() {
        let mut p = Packetizer::new(1, Law::Mu, 0, 0);
        let _ = p.packetize(&[0i16; 80]);
    }

    #[test]
    fn voice_source_is_deterministic_and_bounded() {
        let mut a = VoiceSource::new(42);
        let mut b = VoiceSource::new(42);
        let sa = a.next_samples(1600);
        let sb = b.next_samples(1600);
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&s| s != 0), "not silence");
        assert!(sa.iter().all(|&s| s > -30000 && s < 30000), "headroom kept");
        // Different seeds decorrelate.
        let sc = VoiceSource::new(43).next_samples(1600);
        assert_ne!(sa, sc);
    }

    #[test]
    fn voice_source_is_continuous_across_calls() {
        // Drawing 320 samples at once equals drawing 2×160.
        let mut a = VoiceSource::new(7);
        let whole = a.next_samples(320);
        let mut b = VoiceSource::new(7);
        let mut parts = b.next_samples(160);
        parts.extend(b.next_samples(160));
        assert_eq!(whole, parts);
    }

    #[test]
    fn fast_voice_source_is_deterministic_and_bounded() {
        let mut a = FastVoiceSource::new(42);
        let mut b = FastVoiceSource::new(42);
        let mut sa = vec![0i16; 1600];
        let mut sb = vec![0i16; 1600];
        for (ca, cb) in sa.chunks_mut(160).zip(sb.chunks_mut(160)) {
            a.fill(ca);
            b.fill(cb);
        }
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&s| s != 0), "not silence");
        assert!(sa.iter().all(|&s| s > -30000 && s < 30000), "headroom kept");
        let mut sc = vec![0i16; 1600];
        let mut c = FastVoiceSource::new(43);
        for chunk in sc.chunks_mut(160) {
            c.fill(chunk);
        }
        assert_ne!(sa, sc, "different seeds decorrelate");
    }

    #[test]
    fn fast_voice_source_tracks_the_scalar_source() {
        // The rotor bank synthesizes the same signal as the sin()-based
        // source; over a second of audio the rounding divergence stays
        // within a couple of LSBs.
        let mut scalar = VoiceSource::new(8);
        let mut fast = FastVoiceSource::new(8);
        let want = scalar.next_samples(8000);
        let mut got = vec![0i16; 8000];
        for chunk in got.chunks_mut(160) {
            fast.fill(chunk);
        }
        let max_err = want
            .iter()
            .zip(&got)
            .map(|(&w, &g)| (i32::from(w) - i32::from(g)).abs())
            .max()
            .unwrap();
        assert!(max_err <= 2, "max divergence {max_err} LSB");
    }

    #[test]
    fn encode_shared_reference_matches_lut_path() {
        let mut src = VoiceSource::new(21);
        let samples = src.next_samples(160);
        for law in [Law::Mu, Law::A] {
            let p = Packetizer::new(1, law, 0, 0);
            assert_eq!(
                &p.encode_shared(&samples)[..],
                &p.encode_shared_reference(&samples)[..]
            );
        }
    }

    #[test]
    fn skip_frame_advances_clock_not_sequence() {
        let mut src = VoiceSource::new(4);
        let mut p = Packetizer::new(1, Law::Mu, 100, 0);
        let p1 = p.packetize(&src.next_samples(160));
        p.skip_frame();
        p.skip_frame();
        let p2 = p.packetize(&src.next_samples(160));
        assert_eq!(
            p2.header.sequence, 101,
            "sequence contiguous across silence"
        );
        assert_eq!(
            p2.header.timestamp, 480,
            "timestamp covers the silent frames"
        );
        assert!(p2.header.marker, "new talkspurt flagged");
        assert!(p1.header.marker, "stream start flagged");
        let p3 = p.packetize(&src.next_samples(160));
        assert!(!p3.header.marker, "mid-spurt packets unmarked");
    }

    #[test]
    fn packetize_raw_advances_like_packetize() {
        let mut src = VoiceSource::new(3);
        let samples = src.next_samples(160);
        let mut a = Packetizer::new(5, Law::Mu, 10, 100);
        let mut b = Packetizer::new(5, Law::Mu, 10, 100);
        let pa = a.packetize(&samples);
        let pb = b.packetize_raw(pa.payload.clone());
        assert_eq!(pa, pb);
        // Second frames also line up.
        let pa2 = a.packetize(&samples);
        let pb2 = b.packetize_raw(pa.payload.clone());
        assert_eq!(pa2.header, pb2.header);
    }

    #[test]
    #[should_panic(expected = "20 ms frame")]
    fn packetize_raw_rejects_wrong_size() {
        let mut p = Packetizer::new(1, Law::Mu, 0, 0);
        let _ = p.packetize_raw(vec![0u8; 10]);
    }

    #[test]
    fn shared_path_matches_owned_path() {
        // encode_shared + packetize_shared must produce bit-identical wire
        // output to packetize, frame for frame, including marker handling
        // around skip_frame.
        let mut src = VoiceSource::new(11);
        let mut owned = Packetizer::new(77, Law::Mu, 42, 9000);
        let mut shared = Packetizer::new(77, Law::Mu, 42, 9000);
        for i in 0..5 {
            if i == 3 {
                owned.skip_frame();
                shared.skip_frame();
            }
            let samples = src.next_samples(160);
            let a = owned.packetize(&samples);
            let b = shared.packetize_shared(shared.encode_shared(&samples));
            assert_eq!(a.header, b.header, "frame {i}");
            assert_eq!(&a.payload[..], &b.payload[..], "frame {i}");
            assert_eq!(a.wire_len(), b.wire_len());
            assert_eq!(a.encode(), b.encode());
        }
    }

    #[test]
    fn cloning_a_datagram_shares_the_payload() {
        let mut src = VoiceSource::new(12);
        let mut p = Packetizer::new(1, Law::Mu, 0, 0);
        let d = p.packetize_shared(p.encode_shared(&src.next_samples(160)));
        let d2 = d.clone();
        assert!(std::sync::Arc::ptr_eq(&d.payload, &d2.payload));
    }

    #[test]
    fn next_header_advances_like_packetize() {
        let mut src = VoiceSource::new(13);
        let samples = src.next_samples(160);
        let mut a = Packetizer::new(3, Law::A, 500, 1000);
        let mut b = Packetizer::new(3, Law::A, 500, 1000);
        assert_eq!(a.packetize(&samples).header, b.next_header());
        assert_eq!(a.packetize(&samples).header, b.next_header());
    }

    #[test]
    #[should_panic(expected = "20 ms frame")]
    fn packetize_shared_rejects_wrong_size() {
        let mut p = Packetizer::new(1, Law::Mu, 0, 0);
        let _ = p.packetize_shared(vec![0u8; 10].into());
    }

    #[test]
    fn payload_is_real_g711() {
        let mut src = VoiceSource::new(9);
        let samples = src.next_samples(160);
        let mut p = Packetizer::new(1, Law::Mu, 0, 0);
        let pkt = p.packetize(&samples);
        // Decoding the payload approximates the original samples.
        for (i, &code) in pkt.payload.iter().enumerate() {
            let decoded = crate::g711::ulaw_decode(code);
            let err = i32::from(decoded) - i32::from(samples[i]);
            assert!(err.abs() <= 2048);
        }
    }
}
