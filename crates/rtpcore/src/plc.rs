//! Packet-loss concealment for G.711 — an ITU-T G.711 Appendix I-style
//! concealer.
//!
//! The E-model grants G.711 its packet-loss robustness (`Bpl = 25.1`)
//! *because* receivers conceal lost 10–20 ms frames by pitch-synchronous
//! waveform substitution. This module implements that mechanism:
//!
//! * a history buffer of recently decoded speech;
//! * pitch estimation by normalised autocorrelation (66–200 Hz search
//!   range, the Appendix I span);
//! * concealment frames synthesised by replaying the last pitch period,
//!   overlap-added at the boundary and attenuated as the erasure persists
//!   (fading to silence beyond 60 ms, as the standard prescribes);
//! * smooth overlap-add recovery on the first good frame after a loss.

use crate::packetizer::SAMPLES_PER_FRAME;

/// History length: 390 samples (48.75 ms), per Appendix I.
const HISTORY: usize = 390;
/// Minimum pitch period searched: 40 samples = 200 Hz.
const MIN_PITCH: usize = 40;
/// Maximum pitch period searched: 120 samples = 66.7 Hz.
const MAX_PITCH: usize = 120;
/// Overlap-add ramp: 32 samples (4 ms).
const OLA: usize = 32;
/// Concealment fades to silence after this many consecutive lost frames
/// (3 × 20 ms = 60 ms).
const MAX_CONCEAL_FRAMES: u32 = 3;

/// Stateful concealer for one received stream.
#[derive(Debug, Clone)]
pub struct Concealer {
    history: Vec<i16>,
    consecutive_losses: u32,
    /// Pitch period chosen at the start of the current erasure.
    pitch: usize,
    /// Read cursor into the replicated pitch cycle.
    cycle_pos: usize,
    /// Tail of the last concealment output, used to smooth recovery.
    recovery_tail: Vec<i16>,
}

impl Default for Concealer {
    fn default() -> Self {
        Self::new()
    }
}

impl Concealer {
    /// A fresh concealer (history starts silent).
    #[must_use]
    pub fn new() -> Self {
        Concealer {
            history: vec![0; HISTORY],
            consecutive_losses: 0,
            pitch: MIN_PITCH,
            cycle_pos: 0,
            recovery_tail: Vec::new(),
        }
    }

    /// Number of consecutive frames concealed so far in the current
    /// erasure (0 when the stream is healthy).
    #[must_use]
    pub fn erasure_length(&self) -> u32 {
        self.consecutive_losses
    }

    /// Feed one good 20 ms frame; returns the samples to play out
    /// (smoothed against the concealment tail if we are recovering).
    pub fn good_frame(&mut self, samples: &[i16]) -> Vec<i16> {
        assert_eq!(samples.len(), SAMPLES_PER_FRAME, "one 20 ms frame");
        let mut out = samples.to_vec();
        if self.consecutive_losses > 0 && !self.recovery_tail.is_empty() {
            // Overlap-add the start of the good frame with a continuation
            // of the concealment signal to avoid a waveform discontinuity.
            for i in 0..OLA.min(out.len()).min(self.recovery_tail.len()) {
                let fade_in = i as f32 / OLA as f32;
                let mixed = f32::from(out[i]) * fade_in
                    + f32::from(self.recovery_tail[i]) * (1.0 - fade_in);
                out[i] = mixed as i16;
            }
        }
        self.consecutive_losses = 0;
        self.recovery_tail.clear();
        self.push_history(&out);
        out
    }

    /// A frame was lost; synthesise its replacement.
    pub fn lost_frame(&mut self) -> Vec<i16> {
        if self.consecutive_losses == 0 {
            self.pitch = self.estimate_pitch();
            self.cycle_pos = 0;
        }
        self.consecutive_losses += 1;

        if self.consecutive_losses > MAX_CONCEAL_FRAMES {
            // Long erasure: silence (Appendix I mutes past 60 ms).
            let out = vec![0i16; SAMPLES_PER_FRAME];
            self.push_history(&out);
            self.recovery_tail = vec![0i16; OLA];
            return out;
        }

        // Per-frame attenuation: full volume for the first frame, −6 dB
        // steps after (Appendix I attenuates 20%/10 ms; a per-20 ms halving
        // is the same order).
        let gain = 0.5f32.powi(self.consecutive_losses as i32 - 1);

        // Replay the last pitch cycle from history.
        let cycle: Vec<i16> = {
            let start = self.history.len() - self.pitch;
            self.history[start..].to_vec()
        };
        let mut out = Vec::with_capacity(SAMPLES_PER_FRAME);
        for _ in 0..SAMPLES_PER_FRAME {
            let s = cycle[self.cycle_pos % self.pitch];
            out.push((f32::from(s) * gain) as i16);
            self.cycle_pos += 1;
        }
        // First concealed frame: overlap-add against the true history tail
        // so the synthetic cycle phases in smoothly.
        if self.consecutive_losses == 1 {
            let tail_start = self.history.len() - OLA;
            for (i, sample) in out.iter_mut().enumerate().take(OLA) {
                let fade_in = i as f32 / OLA as f32;
                let hist_continuation = self.history[tail_start + i];
                let mixed = f32::from(*sample) * fade_in
                    + f32::from(hist_continuation) * (1.0 - fade_in) * 0.5;
                *sample = mixed as i16;
            }
        }
        // Stash a continuation for recovery smoothing.
        let mut tail = Vec::with_capacity(OLA);
        for k in 0..OLA {
            let s = cycle[(self.cycle_pos + k) % self.pitch];
            tail.push((f32::from(s) * gain) as i16);
        }
        self.recovery_tail = tail;
        self.push_history(&out);
        out
    }

    fn push_history(&mut self, samples: &[i16]) {
        self.history.extend_from_slice(samples);
        let excess = self.history.len().saturating_sub(HISTORY);
        if excess > 0 {
            self.history.drain(..excess);
        }
    }

    /// Normalised-autocorrelation pitch estimate over the history buffer.
    fn estimate_pitch(&self) -> usize {
        let n = self.history.len();
        let window = MAX_PITCH; // compare the last `window` samples
        let recent = &self.history[n - window..];
        let mut best_lag = MIN_PITCH;
        let mut best_score = f64::NEG_INFINITY;
        for lag in MIN_PITCH..=MAX_PITCH {
            let earlier = &self.history[n - window - lag..n - lag];
            let mut corr = 0.0f64;
            let mut e1 = 0.0f64;
            let mut e2 = 0.0f64;
            for i in 0..window {
                let a = f64::from(recent[i]);
                let b = f64::from(earlier[i]);
                corr += a * b;
                e1 += a * a;
                e2 += b * b;
            }
            let denom = (e1 * e2).sqrt();
            let score = if denom > 0.0 { corr / denom } else { 0.0 };
            if score > best_score {
                best_score = score;
                best_lag = lag;
            }
        }
        best_lag
    }
}

/// Energy (mean square) of a sample block — test/diagnostic helper.
#[must_use]
pub fn energy(samples: &[i16]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .iter()
        .map(|&s| f64::from(s) * f64::from(s))
        .sum::<f64>()
        / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generate a pure tone at `freq` Hz, `amp` peak, `n` samples.
    fn tone(freq: f64, amp: f64, n: usize, phase0: f64) -> Vec<i16> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 8000.0;
                (amp * (std::f64::consts::TAU * freq * t + phase0).sin()) as i16
            })
            .collect()
    }

    #[test]
    fn pitch_estimation_finds_the_tone_period() {
        let mut c = Concealer::new();
        // 100 Hz tone: period exactly 80 samples.
        let signal = tone(100.0, 8000.0, 1600, 0.0);
        for frame in signal.chunks_exact(SAMPLES_PER_FRAME) {
            c.good_frame(frame);
        }
        let pitch = c.estimate_pitch();
        assert!(
            (pitch as i64 - 80).unsigned_abs() <= 2,
            "estimated {pitch}, want ~80"
        );
    }

    #[test]
    fn concealment_beats_silence_substitution() {
        // Feed a tone, drop one frame, compare concealment error vs
        // zero-fill error against the true continuation.
        let signal = tone(125.0, 6000.0, 1760, 0.3); // period = 64 samples
        let mut c = Concealer::new();
        let frames: Vec<&[i16]> = signal.chunks_exact(SAMPLES_PER_FRAME).collect();
        for f in &frames[..10] {
            c.good_frame(f);
        }
        let concealed = c.lost_frame();
        let truth = frames[10];
        let err_plc: f64 = concealed
            .iter()
            .zip(truth)
            .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
            .sum();
        let err_zero: f64 = truth.iter().map(|&b| f64::from(b).powi(2)).sum();
        assert!(
            err_plc < err_zero * 0.35,
            "PLC error {:.0} vs silence error {:.0}",
            err_plc,
            err_zero
        );
    }

    #[test]
    fn long_erasures_fade_to_silence() {
        let signal = tone(100.0, 8000.0, 800, 0.0);
        let mut c = Concealer::new();
        for f in signal.chunks_exact(SAMPLES_PER_FRAME) {
            c.good_frame(f);
        }
        let e1 = energy(&c.lost_frame());
        let e2 = energy(&c.lost_frame());
        let e3 = energy(&c.lost_frame());
        let e4 = energy(&c.lost_frame());
        let e5 = energy(&c.lost_frame());
        assert!(e1 > 0.0);
        assert!(e2 < e1, "attenuation: {e2} < {e1}");
        assert!(e3 < e2);
        assert_eq!(e4, 0.0, "silence after 60 ms");
        assert_eq!(e5, 0.0);
        assert_eq!(c.erasure_length(), 5);
    }

    #[test]
    fn recovery_resets_and_smooths() {
        let signal = tone(100.0, 8000.0, 800, 0.0);
        let mut c = Concealer::new();
        let frames: Vec<&[i16]> = signal.chunks_exact(SAMPLES_PER_FRAME).collect();
        for f in &frames[..3] {
            c.good_frame(f);
        }
        c.lost_frame();
        assert_eq!(c.erasure_length(), 1);
        let recovered = c.good_frame(frames[3]);
        assert_eq!(c.erasure_length(), 0);
        assert_eq!(recovered.len(), SAMPLES_PER_FRAME);
        // Beyond the 4 ms ramp, the output equals the true frame.
        assert_eq!(&recovered[OLA..], &frames[3][OLA..]);
    }

    #[test]
    fn healthy_stream_passes_through_unchanged() {
        let signal = tone(200.0, 5000.0, 480, 0.0);
        let mut c = Concealer::new();
        for f in signal.chunks_exact(SAMPLES_PER_FRAME) {
            let out = c.good_frame(f);
            assert_eq!(out, f, "no loss, no modification");
        }
    }

    #[test]
    fn concealing_from_silence_is_silent() {
        let mut c = Concealer::new();
        let out = c.lost_frame();
        assert_eq!(energy(&out), 0.0, "nothing in history to replicate");
    }

    #[test]
    #[should_panic(expected = "20 ms frame")]
    fn wrong_frame_size_rejected() {
        let mut c = Concealer::new();
        let _ = c.good_frame(&[0i16; 99]);
    }

    #[test]
    fn consecutive_erasures_continue_the_cycle_smoothly() {
        // Two concealed frames in a row must not have a large jump at the
        // frame boundary (phase continuity of the replicated cycle).
        let signal = tone(100.0, 8000.0, 800, 0.0);
        let mut c = Concealer::new();
        for f in signal.chunks_exact(SAMPLES_PER_FRAME) {
            c.good_frame(f);
        }
        let a = c.lost_frame();
        let b = c.lost_frame();
        let jump = (f64::from(b[0]) * 2.0 - f64::from(a[SAMPLES_PER_FRAME - 1])).abs();
        // b is attenuated by 0.5 relative to a, so compare b·2 vs a's tail;
        // a 100 Hz cycle moves at most ~2π·100·8000/8000 ≈ 630 per sample.
        assert!(jump < 1500.0, "boundary jump {jump}");
    }
}
