//! RTP reception statistics: interarrival jitter (RFC 3550 §6.4.1) and
//! sequence-number bookkeeping (§A.1 style).
//!
//! These are the quantities VoIPmonitor derives from captured RTP and feeds
//! into its MOS estimate; the `vmon` crate does the same with this module.

use serde::{Deserialize, Serialize};

/// RFC 3550 interarrival jitter estimator.
///
/// For packets `i` and `j`, the difference in relative transit times is
/// `D(i,j) = (Rj − Ri) − (Sj − Si)` (arrival clock minus media timestamp,
/// both in timestamp units); jitter is the exponentially smoothed mean of
/// `|D|`: `J += (|D| − J)/16`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct JitterEstimator {
    jitter_units: f64,
    last_transit: Option<f64>,
    clock_hz: f64,
}

impl JitterEstimator {
    /// Estimator for a media clock of `clock_hz` Hz (8000 for G.711).
    #[must_use]
    pub fn new(clock_hz: f64) -> Self {
        JitterEstimator {
            jitter_units: 0.0,
            last_transit: None,
            clock_hz,
        }
    }

    /// Record a packet arriving at wall time `arrival_s` (seconds) carrying
    /// media timestamp `rtp_timestamp` (clock units).
    pub fn record(&mut self, arrival_s: f64, rtp_timestamp: u32) {
        let transit = arrival_s * self.clock_hz - f64::from(rtp_timestamp);
        if let Some(prev) = self.last_transit {
            let d = (transit - prev).abs();
            self.jitter_units += (d - self.jitter_units) / 16.0;
        }
        self.last_transit = Some(transit);
    }

    /// Current jitter in media-clock units (what RTCP reports).
    #[must_use]
    pub fn jitter_units(&self) -> f64 {
        self.jitter_units
    }

    /// Current jitter in milliseconds.
    #[must_use]
    pub fn jitter_ms(&self) -> f64 {
        self.jitter_units / self.clock_hz * 1000.0
    }
}

/// Sequence-number tracker: expected/received counts, losses, duplicates
/// and reorders, with wrap-around handling.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequenceTracker {
    base_seq: Option<u16>,
    highest_ext: u64,
    received: u64,
    duplicates: u64,
    reordered: u64,
    /// Extended seqs seen recently, for dup detection. Used as a circular
    /// buffer once full: `seen_head` is the oldest entry, overwritten next.
    seen_window: Vec<u64>,
    seen_head: usize,
    /// Number of distinct loss gaps observed (runs of missing packets).
    gap_count: u64,
    /// Total packets missing across those gaps at observation time.
    gap_lost: u64,
}

const DUP_WINDOW: usize = 64;

impl SequenceTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        SequenceTracker::default()
    }

    /// Record a received sequence number. Returns `true` if the packet is
    /// new (not a duplicate).
    pub fn record(&mut self, seq: u16) -> bool {
        let ext = match self.base_seq {
            None => {
                self.base_seq = Some(seq);
                self.highest_ext = u64::from(seq);
                let e = self.highest_ext;
                self.received = 1;
                self.push_seen(e);
                return true;
            }
            Some(_) => self.extend(seq),
        };
        // In-order fast path: the common case on a healthy stream. A
        // packet beyond the highest extended seq cannot be in the dup
        // window (every entry is ≤ highest), so skip the window scan.
        if ext == self.highest_ext + 1 {
            self.push_seen(ext);
            self.received += 1;
            self.highest_ext = ext;
            return true;
        }
        if self.seen_window.contains(&ext) {
            self.duplicates += 1;
            return false;
        }
        self.push_seen(ext);
        self.received += 1;
        if ext > self.highest_ext {
            if ext > self.highest_ext + 1 {
                // A run of missing packets between highest and this one.
                self.gap_count += 1;
                self.gap_lost += ext - self.highest_ext - 1;
            }
            self.highest_ext = ext;
        } else {
            self.reordered += 1;
        }
        true
    }

    /// Extend a 16-bit sequence to 64 bits relative to the current highest,
    /// choosing the closest interpretation across wraps.
    fn extend(&self, seq: u16) -> u64 {
        let cycle = self.highest_ext & !0xFFFF;
        let candidates = [
            cycle.wrapping_sub(0x1_0000) | u64::from(seq),
            cycle | u64::from(seq),
            (cycle + 0x1_0000) | u64::from(seq),
        ];
        *candidates
            .iter()
            .min_by_key(|&&c| c.abs_diff(self.highest_ext))
            .expect("non-empty")
    }

    fn push_seen(&mut self, ext: u64) {
        if self.seen_window.len() < DUP_WINDOW {
            self.seen_window.push(ext);
        } else {
            // Overwrite the oldest entry in place — same FIFO window as a
            // shift-down, without moving 63 entries per packet.
            self.seen_window[self.seen_head] = ext;
            self.seen_head = (self.seen_head + 1) % DUP_WINDOW;
        }
    }

    /// Unique packets received.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets the sender must have emitted (span of sequence numbers).
    #[must_use]
    pub fn expected(&self) -> u64 {
        match self.base_seq {
            None => 0,
            Some(base) => self.highest_ext - u64::from(base) + 1,
        }
    }

    /// Packets lost = expected − received (saturating: late arrivals can
    /// transiently exceed).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.expected().saturating_sub(self.received)
    }

    /// Loss fraction in `[0, 1]` (0 when nothing expected).
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        let e = self.expected();
        if e == 0 {
            0.0
        } else {
            self.lost() as f64 / e as f64
        }
    }

    /// Duplicate packets seen.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Packets that arrived after a later sequence number.
    #[must_use]
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Mean length of observed loss runs (NaN when no loss was seen).
    /// Late (reordered) arrivals that later fill a gap are not subtracted —
    /// this is the burst structure as a playout buffer experiences it.
    #[must_use]
    pub fn mean_loss_burst(&self) -> f64 {
        if self.gap_count == 0 {
            f64::NAN
        } else {
            self.gap_lost as f64 / self.gap_count as f64
        }
    }

    /// Burst ratio for the E-model: observed mean burst length over the
    /// length expected under independent (Bernoulli) loss at the same
    /// rate, `1/(1−p)`. 1.0 for random loss; larger when losses clump.
    /// Returns 1.0 when no loss occurred.
    #[must_use]
    pub fn burst_ratio(&self) -> f64 {
        if self.gap_count == 0 {
            return 1.0;
        }
        let p = self.loss_fraction().min(0.99);
        let expected = 1.0 / (1.0 - p);
        (self.mean_loss_burst() / expected).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_for_perfect_clocking() {
        let mut j = JitterEstimator::new(8000.0);
        for i in 0..200u32 {
            // Exactly 20 ms apart, timestamps advancing 160 units.
            j.record(f64::from(i) * 0.020, i * 160);
        }
        assert!(j.jitter_ms() < 1e-9, "jitter={}", j.jitter_ms());
    }

    #[test]
    fn constant_delay_offset_adds_no_jitter() {
        // A fixed network delay shifts all transit times equally.
        let mut j = JitterEstimator::new(8000.0);
        for i in 0..200u32 {
            j.record(0.150 + f64::from(i) * 0.020, i * 160);
        }
        assert!(j.jitter_ms() < 1e-9);
    }

    #[test]
    fn alternating_delay_converges_to_expected_jitter() {
        // Delays alternating ±2 ms give |D| = 4 ms each step; the RFC filter
        // converges towards 4 ms (never exceeds it).
        let mut j = JitterEstimator::new(8000.0);
        for i in 0..2000u32 {
            let wobble = if i % 2 == 0 { 0.002 } else { -0.002 };
            j.record(f64::from(i) * 0.020 + wobble, i * 160);
        }
        assert!(
            (j.jitter_ms() - 4.0).abs() < 0.2,
            "jitter={}",
            j.jitter_ms()
        );
    }

    #[test]
    fn jitter_units_and_ms_agree() {
        let mut j = JitterEstimator::new(8000.0);
        j.record(0.0, 0);
        j.record(0.025, 160); // 5 ms late
        assert!((j.jitter_ms() - j.jitter_units() / 8.0).abs() < 1e-12);
        assert!(j.jitter_ms() > 0.0);
    }

    #[test]
    fn tracker_counts_in_order_stream() {
        let mut t = SequenceTracker::new();
        for s in 100..200u16 {
            assert!(t.record(s));
        }
        assert_eq!(t.received(), 100);
        assert_eq!(t.expected(), 100);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.loss_fraction(), 0.0);
        assert_eq!(t.duplicates(), 0);
        assert_eq!(t.reordered(), 0);
    }

    #[test]
    fn tracker_detects_loss() {
        let mut t = SequenceTracker::new();
        for s in [1u16, 2, 3, 6, 7, 10] {
            t.record(s);
        }
        assert_eq!(t.expected(), 10);
        assert_eq!(t.received(), 6);
        assert_eq!(t.lost(), 4);
        assert!((t.loss_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn tracker_detects_duplicates_and_reorders() {
        let mut t = SequenceTracker::new();
        t.record(1);
        t.record(2);
        assert!(!t.record(2), "duplicate rejected");
        t.record(4);
        assert!(t.record(3), "late packet still new");
        assert_eq!(t.duplicates(), 1);
        assert_eq!(t.reordered(), 1);
        assert_eq!(t.received(), 4);
        assert_eq!(t.lost(), 0, "the late packet filled its gap");
    }

    #[test]
    fn tracker_handles_wraparound() {
        let mut t = SequenceTracker::new();
        for s in [65533u16, 65534, 65535, 0, 1, 2] {
            assert!(t.record(s));
        }
        assert_eq!(t.received(), 6);
        assert_eq!(t.expected(), 6, "wrap not counted as 65k losses");
        assert_eq!(t.lost(), 0);
    }

    #[test]
    fn tracker_wraparound_with_reorder_across_boundary() {
        let mut t = SequenceTracker::new();
        t.record(65535);
        t.record(1); // 0 missing so far
        t.record(0); // arrives late, across the wrap
        assert_eq!(t.received(), 3);
        assert_eq!(t.expected(), 3);
        assert_eq!(t.reordered(), 1);
    }

    #[test]
    fn burst_structure_random_vs_clumped() {
        // Isolated single losses: mean burst 1, ratio ≈ 1·(1−p) ≈ 1.
        let mut random = SequenceTracker::new();
        for s in 0..100u16 {
            if s % 10 == 5 {
                continue;
            }
            random.record(s);
        }
        assert!((random.mean_loss_burst() - 1.0).abs() < 1e-12);
        assert!(
            (random.burst_ratio() - 1.0).abs() < 0.05,
            "ratio={}",
            random.burst_ratio()
        );

        // Same loss rate, but in one clump of 10: burst ratio ≈ 9.
        let mut bursty = SequenceTracker::new();
        for s in 0..100u16 {
            if (40..50).contains(&s) {
                continue;
            }
            bursty.record(s);
        }
        assert!((bursty.mean_loss_burst() - 10.0).abs() < 1e-12);
        assert!(bursty.burst_ratio() > 5.0, "ratio={}", bursty.burst_ratio());
        assert!(
            (bursty.loss_fraction() - random.loss_fraction()).abs() < 1e-12,
            "same loss rate, different structure"
        );
    }

    #[test]
    fn burst_ratio_without_loss_is_one() {
        let mut t = SequenceTracker::new();
        for s in 0..50u16 {
            t.record(s);
        }
        assert!(t.mean_loss_burst().is_nan());
        assert_eq!(t.burst_ratio(), 1.0);
    }

    #[test]
    fn empty_tracker_is_sane() {
        let t = SequenceTracker::new();
        assert_eq!(t.expected(), 0);
        assert_eq!(t.received(), 0);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.loss_fraction(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// received + lost == expected whenever no duplicates are involved
        /// and arrivals are a subset of a contiguous range.
        #[test]
        fn conservation_without_dups(present in proptest::collection::btree_set(0u16..500, 1..200)) {
            let mut t = SequenceTracker::new();
            for &s in &present {
                t.record(s);
            }
            prop_assert_eq!(t.received() + t.lost(), t.expected());
            prop_assert_eq!(t.duplicates(), 0);
        }

        /// Jitter is always non-negative and finite.
        #[test]
        fn jitter_non_negative(deltas in proptest::collection::vec(0.001f64..0.2, 1..100)) {
            let mut j = JitterEstimator::new(8000.0);
            let mut tnow = 0.0;
            for (i, d) in deltas.iter().enumerate() {
                tnow += d;
                j.record(tnow, (i as u32) * 160);
            }
            prop_assert!(j.jitter_units() >= 0.0);
            prop_assert!(j.jitter_units().is_finite());
        }
    }
}
