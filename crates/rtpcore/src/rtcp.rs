//! RTCP sender/receiver reports (RFC 3550 §6.4) — the subset the monitor
//! uses to cross-check its passive measurements.
//!
//! Encodes/decodes an SR or RR with zero or one report blocks. Compound
//! packets, SDES, BYE and APP are out of scope for the evaluation.

use serde::{Deserialize, Serialize};

/// RTCP packet type: sender report.
pub const PT_SR: u8 = 200;
/// RTCP packet type: receiver report.
pub const PT_RR: u8 = 201;

/// A reception report block (one source being reported on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportBlock {
    /// SSRC of the stream this block describes.
    pub ssrc: u32,
    /// Loss fraction since the previous report, as an 8-bit fixed-point
    /// fraction (256ths).
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit on the wire; saturated on encode).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in media-clock units.
    pub jitter: u32,
}

/// A sender or receiver report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtcpReport {
    /// SSRC of the sender of this report.
    pub sender_ssrc: u32,
    /// Sender info (packet count, octet count) — present for SR, None for RR.
    pub sender_info: Option<(u32, u32)>,
    /// At most one report block in this subset.
    pub block: Option<ReportBlock>,
}

/// Decode failure reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtcpError {
    /// Buffer too short for the declared structure.
    TooShort,
    /// Version bits are not 2.
    BadVersion,
    /// Packet type is neither SR nor RR.
    UnsupportedType,
}

impl core::fmt::Display for RtcpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtcpError::TooShort => write!(f, "RTCP buffer too short"),
            RtcpError::BadVersion => write!(f, "RTCP version is not 2"),
            RtcpError::UnsupportedType => write!(f, "not an SR/RR packet"),
        }
    }
}

impl std::error::Error for RtcpError {}

impl RtcpReport {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let rc: u8 = u8::from(self.block.is_some());
        let pt = if self.sender_info.is_some() {
            PT_SR
        } else {
            PT_RR
        };
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(&self.sender_ssrc.to_be_bytes());
        if let Some((pkts, octets)) = self.sender_info {
            // NTP timestamp + RTP timestamp are zeroed: the simulation has
            // no NTP clock and the monitor never reads them.
            body.extend_from_slice(&[0u8; 12]);
            body.extend_from_slice(&pkts.to_be_bytes());
            body.extend_from_slice(&octets.to_be_bytes());
        }
        if let Some(b) = &self.block {
            body.extend_from_slice(&b.ssrc.to_be_bytes());
            let lost24 = b.cumulative_lost.min(0x00FF_FFFF);
            body.push(b.fraction_lost);
            body.extend_from_slice(&lost24.to_be_bytes()[1..]);
            body.extend_from_slice(&b.highest_seq.to_be_bytes());
            body.extend_from_slice(&b.jitter.to_be_bytes());
            // LSR/DLSR zeroed (no round-trip estimation in the subset).
            body.extend_from_slice(&[0u8; 8]);
        }
        let words = (body.len() + 4) / 4 - 1; // length in 32-bit words minus one
        let mut out = Vec::with_capacity(4 + body.len());
        out.push(0x80 | rc); // V=2, P=0, RC
        out.push(pt);
        out.extend_from_slice(&(words as u16).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<RtcpReport, RtcpError> {
        if buf.len() < 8 {
            return Err(RtcpError::TooShort);
        }
        if buf[0] >> 6 != 2 {
            return Err(RtcpError::BadVersion);
        }
        let rc = buf[0] & 0x1F;
        let pt = buf[1];
        if pt != PT_SR && pt != PT_RR {
            return Err(RtcpError::UnsupportedType);
        }
        let mut at = 4usize;
        let take4 = |buf: &[u8], at: &mut usize| -> Result<u32, RtcpError> {
            if *at + 4 > buf.len() {
                return Err(RtcpError::TooShort);
            }
            let v = u32::from_be_bytes([buf[*at], buf[*at + 1], buf[*at + 2], buf[*at + 3]]);
            *at += 4;
            Ok(v)
        };
        let sender_ssrc = take4(buf, &mut at)?;
        let sender_info = if pt == PT_SR {
            // Skip NTP (8) + RTP timestamp (4).
            if at + 12 > buf.len() {
                return Err(RtcpError::TooShort);
            }
            at += 12;
            let pkts = take4(buf, &mut at)?;
            let octets = take4(buf, &mut at)?;
            Some((pkts, octets))
        } else {
            None
        };
        let block = if rc >= 1 {
            let ssrc = take4(buf, &mut at)?;
            let word = take4(buf, &mut at)?;
            let fraction_lost = (word >> 24) as u8;
            let cumulative_lost = word & 0x00FF_FFFF;
            let highest_seq = take4(buf, &mut at)?;
            let jitter = take4(buf, &mut at)?;
            let _lsr = take4(buf, &mut at)?;
            let _dlsr = take4(buf, &mut at)?;
            Some(ReportBlock {
                ssrc,
                fraction_lost,
                cumulative_lost,
                highest_seq,
                jitter,
            })
        } else {
            None
        };
        Ok(RtcpReport {
            sender_ssrc,
            sender_info,
            block,
        })
    }
}

/// Convert a loss fraction in `[0,1]` to the RTCP 8-bit fixed-point form.
#[must_use]
pub fn loss_to_fraction_lost(loss: f64) -> u8 {
    (loss.clamp(0.0, 1.0) * 256.0).min(255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> ReportBlock {
        ReportBlock {
            ssrc: 0x1111_2222,
            fraction_lost: 13,
            cumulative_lost: 1234,
            highest_seq: 99_999,
            jitter: 42,
        }
    }

    #[test]
    fn rr_round_trip() {
        let rr = RtcpReport {
            sender_ssrc: 0xAABB_CCDD,
            sender_info: None,
            block: Some(block()),
        };
        let wire = rr.encode();
        assert_eq!(wire[1], PT_RR);
        assert_eq!(RtcpReport::decode(&wire).unwrap(), rr);
    }

    #[test]
    fn sr_round_trip() {
        let sr = RtcpReport {
            sender_ssrc: 7,
            sender_info: Some((6000, 960_000)),
            block: Some(block()),
        };
        let wire = sr.encode();
        assert_eq!(wire[1], PT_SR);
        assert_eq!(RtcpReport::decode(&wire).unwrap(), sr);
    }

    #[test]
    fn empty_rr_round_trip() {
        let rr = RtcpReport {
            sender_ssrc: 1,
            sender_info: None,
            block: None,
        };
        let wire = rr.encode();
        assert_eq!(wire.len(), 8);
        assert_eq!(RtcpReport::decode(&wire).unwrap(), rr);
    }

    #[test]
    fn length_field_is_word_count_minus_one() {
        let rr = RtcpReport {
            sender_ssrc: 1,
            sender_info: None,
            block: None,
        };
        let wire = rr.encode();
        let words = u16::from_be_bytes([wire[2], wire[3]]);
        assert_eq!(words, 1, "8 bytes = 2 words = length 1");
        let sr = RtcpReport {
            sender_ssrc: 1,
            sender_info: Some((1, 1)),
            block: Some(block()),
        };
        let wire = sr.encode();
        let words = u16::from_be_bytes([wire[2], wire[3]]);
        assert_eq!(usize::from(words + 1) * 4, wire.len());
    }

    #[test]
    fn cumulative_lost_saturates_at_24_bits() {
        let rr = RtcpReport {
            sender_ssrc: 1,
            sender_info: None,
            block: Some(ReportBlock {
                cumulative_lost: u32::MAX,
                ..block()
            }),
        };
        let back = RtcpReport::decode(&rr.encode()).unwrap();
        assert_eq!(back.block.unwrap().cumulative_lost, 0x00FF_FFFF);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RtcpReport::decode(&[]), Err(RtcpError::TooShort));
        assert_eq!(RtcpReport::decode(&[0x80; 7]), Err(RtcpError::TooShort));
        let mut w = RtcpReport {
            sender_ssrc: 1,
            sender_info: None,
            block: None,
        }
        .encode();
        w[0] = 0x40 | (w[0] & 0x3F);
        assert_eq!(RtcpReport::decode(&w), Err(RtcpError::BadVersion));
        let mut w2 = RtcpReport {
            sender_ssrc: 1,
            sender_info: None,
            block: None,
        }
        .encode();
        w2[1] = 202; // SDES
        assert_eq!(RtcpReport::decode(&w2), Err(RtcpError::UnsupportedType));
        // Truncated report block.
        let rr = RtcpReport {
            sender_ssrc: 1,
            sender_info: None,
            block: Some(block()),
        };
        let wire = rr.encode();
        assert_eq!(
            RtcpReport::decode(&wire[..wire.len() - 4]),
            Err(RtcpError::TooShort)
        );
    }

    #[test]
    fn fraction_lost_fixed_point() {
        assert_eq!(loss_to_fraction_lost(0.0), 0);
        assert_eq!(loss_to_fraction_lost(0.5), 128);
        assert_eq!(loss_to_fraction_lost(1.0), 255);
        assert_eq!(loss_to_fraction_lost(-0.5), 0);
        assert_eq!(loss_to_fraction_lost(7.0), 255);
        // 1% loss ≈ 2/256.
        assert_eq!(loss_to_fraction_lost(0.01), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn report_round_trip(
            sender in any::<u32>(),
            info in proptest::option::of((any::<u32>(), any::<u32>())),
            blk in proptest::option::of((any::<u32>(), any::<u8>(), 0u32..0x00FF_FFFF, any::<u32>(), any::<u32>())),
        ) {
            let report = RtcpReport {
                sender_ssrc: sender,
                sender_info: info,
                block: blk.map(|(ssrc, fl, cl, hs, j)| ReportBlock {
                    ssrc, fraction_lost: fl, cumulative_lost: cl, highest_seq: hs, jitter: j,
                }),
            };
            prop_assert_eq!(RtcpReport::decode(&report.encode()).unwrap(), report);
        }

        #[test]
        fn decoder_total(buf in proptest::collection::vec(any::<u8>(), 0..96)) {
            let _ = RtcpReport::decode(&buf);
        }
    }
}
