//! RTP media substrate: packets, codecs, packetization and reception
//! statistics (RFC 3550 subset + ITU-T G.711).
//!
//! The paper's media plane is G.711 μ-law voice in 20 ms RTP packets —
//! 160 samples at 8 kHz, 50 packets per second per direction, all relayed
//! through the Asterisk PBX. This crate implements that plane for real:
//!
//! * [`packet`] — the 12-byte RTP header (RFC 3550 §5.1), encode/decode;
//! * [`g711`] — bit-exact ITU-T G.711 μ-law and A-law companding;
//! * [`packetizer`] — sample-block framing plus a speech-band signal
//!   synthesizer standing in for a microphone;
//! * [`jitter`] — the RFC 3550 §6.4.1 interarrival-jitter estimator and
//!   §A.1-style sequence-number bookkeeping (loss, reorder, duplicates);
//! * [`rtcp`] — sender/receiver report subset used by the monitor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod g711;
pub mod jitter;
pub mod packet;
pub mod packetizer;
pub mod playout;
pub mod plc;
pub mod rtcp;
pub mod vad;

pub use g711::{alaw_decode, alaw_encode, ulaw_decode, ulaw_encode};
pub use jitter::{JitterEstimator, SequenceTracker};
pub use packet::{RtpDatagram, RtpHeader, RtpPacket, RTP_HEADER_LEN};
pub use packetizer::{Packetizer, VoiceSource, SAMPLES_PER_FRAME, SAMPLE_RATE_HZ};
pub use playout::{PlayoutBuffer, PlayoutEvent};
pub use plc::Concealer;
pub use vad::TalkspurtSource;
