//! Dialplan: extension-pattern routing, Asterisk style.
//!
//! Patterns use Asterisk's classic alphabet: literal digits, `X` = 0–9,
//! `Z` = 1–9, `N` = 2–9, and a trailing `.` matching one-or-more of
//! anything. First matching rule wins, in priority (insertion) order.

use serde::{Deserialize, Serialize};

/// Where a matched extension routes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// Deliver to a registered local subscriber (lookup in the registrar).
    LocalSubscriber,
    /// Hand off to the campus telephone exchange trunk.
    Trunk(String),
    /// Refuse the call.
    Deny,
}

/// One dialplan rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The pattern, e.g. `1XXX` or `0.`.
    pub pattern: String,
    /// Where matching extensions go.
    pub route: Route,
}

/// An ordered rule list.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dialplan {
    rules: Vec<Rule>,
}

impl Dialplan {
    /// An empty dialplan (denies everything).
    #[must_use]
    pub fn new() -> Self {
        Dialplan::default()
    }

    /// The evaluation's default plan: four-digit campus extensions are
    /// local subscribers, `0`-prefixed numbers go to the university trunk.
    #[must_use]
    pub fn campus_default() -> Self {
        let mut dp = Dialplan::new();
        dp.add("XXXX", Route::LocalSubscriber);
        dp.add("0.", Route::Trunk("university-exchange".to_owned()));
        dp
    }

    /// Append a rule (lower priority than existing ones).
    pub fn add(&mut self, pattern: &str, route: Route) {
        self.rules.push(Rule {
            pattern: pattern.to_owned(),
            route,
        });
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Route a dialled extension; `None` if no rule matches.
    #[must_use]
    pub fn route(&self, extension: &str) -> Option<&Route> {
        self.rules
            .iter()
            .find(|r| pattern_matches(&r.pattern, extension))
            .map(|r| &r.route)
    }
}

/// Match one Asterisk-style pattern against an extension.
#[must_use]
pub fn pattern_matches(pattern: &str, ext: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let ext_bytes: Vec<char> = ext.chars().collect();
    let mut pi = 0;
    let mut ei = 0;
    while pi < pat.len() {
        match pat[pi] {
            '.' => {
                // One-or-more of anything; must be the final pattern char.
                return pi == pat.len() - 1 && ei < ext_bytes.len();
            }
            class @ ('X' | 'Z' | 'N') => {
                let Some(&c) = ext_bytes.get(ei) else {
                    return false;
                };
                let ok = match class {
                    'X' => c.is_ascii_digit(),
                    'Z' => ('1'..='9').contains(&c),
                    _ => ('2'..='9').contains(&c),
                };
                if !ok {
                    return false;
                }
            }
            lit => {
                if ext_bytes.get(ei) != Some(&lit) {
                    return false;
                }
            }
        }
        pi += 1;
        ei += 1;
    }
    ei == ext_bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns() {
        assert!(pattern_matches("1001", "1001"));
        assert!(!pattern_matches("1001", "1002"));
        assert!(!pattern_matches("1001", "100"));
        assert!(!pattern_matches("1001", "10011"));
        assert!(!pattern_matches("", "1"));
        assert!(pattern_matches("", ""));
    }

    #[test]
    fn character_classes() {
        assert!(pattern_matches("1XXX", "1234"));
        assert!(pattern_matches("1XXX", "1000"));
        assert!(!pattern_matches("1XXX", "2000"));
        assert!(!pattern_matches("1XXX", "1ABC"));
        assert!(pattern_matches("ZXXX", "1000"));
        assert!(!pattern_matches("ZXXX", "0000"), "Z excludes 0");
        assert!(pattern_matches("NXXX", "2000"));
        assert!(!pattern_matches("NXXX", "1000"), "N excludes 0 and 1");
    }

    #[test]
    fn wildcard_tail() {
        assert!(pattern_matches("0.", "06133072000"));
        assert!(pattern_matches("0.", "00"));
        assert!(!pattern_matches("0.", "0"), ". needs at least one char");
        assert!(!pattern_matches("0.", "16133072000"));
        // '.' mid-pattern is invalid and never matches.
        assert!(!pattern_matches("0.1", "0x1"));
    }

    #[test]
    fn campus_default_routing() {
        let dp = Dialplan::campus_default();
        assert_eq!(dp.len(), 2);
        assert!(!dp.is_empty());
        assert_eq!(dp.route("1234"), Some(&Route::LocalSubscriber));
        assert_eq!(
            dp.route("061330720"),
            Some(&Route::Trunk("university-exchange".to_owned()))
        );
        assert_eq!(dp.route("99"), None, "no rule for two digits");
        assert_eq!(dp.route(""), None);
    }

    #[test]
    fn first_match_wins() {
        let mut dp = Dialplan::new();
        dp.add("1XXX", Route::Deny);
        dp.add("XXXX", Route::LocalSubscriber);
        assert_eq!(dp.route("1500"), Some(&Route::Deny));
        assert_eq!(dp.route("2500"), Some(&Route::LocalSubscriber));
    }

    #[test]
    fn empty_dialplan_denies() {
        let dp = Dialplan::new();
        assert!(dp.is_empty());
        assert_eq!(dp.route("1234"), None);
    }
}
