//! CPU service-cost model for the PBX host.
//!
//! The paper reports CPU usage bands per workload (Table I) and observes
//! that RTP relaying, not SIP, dominates. We model the PBX CPU as a single
//! core accruing a fixed service cost per handled event:
//!
//! * `sip_cost` per SIP message processed (parse, route, serialize);
//! * `rtp_cost` per RTP packet relayed (two socket ops + bookkeeping);
//! * a constant `base_load` for housekeeping.
//!
//! Calibration (DESIGN.md §7): Table I's bands (≈17 % at 40 E rising to
//! ≈57 % at 240 E) are *affine* in the workload — utilisation grows ~0.19 %
//! per Erlang on top of a ~10 % floor (Asterisk housekeeping, the
//! monitoring tools the paper leaves running on the host). Hence the
//! defaults: 10 % base load, 19 µs per relayed RTP packet (each carried
//! Erlang costs 100 relays/s), 55 µs per SIP message. Utilisation is
//! tracked over sliding windows so the experiment reports a min–max band
//! like the paper does.

use des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCosts {
    /// Service time per SIP message.
    pub sip_cost: SimDuration,
    /// Service time per relayed RTP packet.
    pub rtp_cost: SimDuration,
    /// Constant background utilisation fraction (0..1).
    pub base_load: f64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            sip_cost: SimDuration::from_micros(55),
            rtp_cost: SimDuration::from_micros(19),
            base_load: 0.10,
        }
    }
}

/// The accruing CPU model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    costs: CpuCosts,
    /// Service-cost multiplier (1.0 = nominal). A throttle fault — thermal
    /// capping, a noisy co-tenant — raises it; every subsequent event then
    /// costs `throttle ×` its calibrated time.
    throttle: f64,
    busy_total: SimDuration,
    window_len: SimDuration,
    window_start: SimTime,
    window_busy: SimDuration,
    window_peaks: Vec<f64>, // completed-window utilisations
}

impl CpuModel {
    /// A model with the given costs, reporting over `window_len` windows
    /// (the paper effectively reads 5–10 s `top` samples; we default the
    /// experiment to 5 s windows).
    #[must_use]
    pub fn new(costs: CpuCosts, window_len: SimDuration) -> Self {
        CpuModel {
            costs,
            throttle: 1.0,
            busy_total: SimDuration::ZERO,
            window_len,
            window_start: SimTime::ZERO,
            window_busy: SimDuration::ZERO,
            window_peaks: Vec::new(),
        }
    }

    /// Default-calibrated model with 5 s windows.
    #[must_use]
    pub fn calibrated() -> Self {
        CpuModel::new(CpuCosts::default(), SimDuration::from_secs(5))
    }

    fn accrue(&mut self, now: SimTime, cost: SimDuration) {
        self.roll_windows(now);
        let cost = SimDuration::from_secs_f64(cost.as_secs_f64() * self.throttle);
        self.busy_total = self.busy_total + cost;
        self.window_busy = self.window_busy + cost;
    }

    /// Scale every subsequent event cost by `factor` (a CPU-throttle
    /// fault; 1.0 restores nominal speed).
    pub fn set_throttle(&mut self, factor: f64) {
        assert!(factor > 0.0, "throttle factor must be positive");
        self.throttle = factor;
    }

    /// Current throttle factor.
    #[must_use]
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Utilisation of the most recently *completed* window — the live
    /// reading overload control keys on (`None` before the first window
    /// closes).
    #[must_use]
    pub fn last_window_utilisation(&self) -> Option<f64> {
        self.window_peaks.last().copied()
    }

    fn roll_windows(&mut self, now: SimTime) {
        while now.since(self.window_start) >= self.window_len {
            let u = self.window_busy.as_secs_f64() / self.window_len.as_secs_f64()
                + self.costs.base_load;
            self.window_peaks.push(u.min(1.0));
            self.window_start += self.window_len;
            self.window_busy = SimDuration::ZERO;
        }
    }

    /// Account one SIP message at time `now`.
    pub fn on_sip_message(&mut self, now: SimTime) {
        self.accrue(now, self.costs.sip_cost);
    }

    /// Account one relayed RTP packet at time `now`.
    pub fn on_rtp_packet(&mut self, now: SimTime) {
        self.accrue(now, self.costs.rtp_cost);
    }

    /// Mean utilisation over `[0, until]`, including base load.
    #[must_use]
    pub fn mean_utilisation(&self, until: SimTime) -> f64 {
        let span = until.as_secs_f64();
        if span <= 0.0 {
            return self.costs.base_load;
        }
        (self.busy_total.as_secs_f64() / span + self.costs.base_load).min(1.0)
    }

    /// Utilisation band over completed windows: (min, max). Returns the
    /// base load twice when no window has completed.
    #[must_use]
    pub fn utilisation_band(&self) -> (f64, f64) {
        if self.window_peaks.is_empty() {
            return (self.costs.base_load, self.costs.base_load);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &u in &self.window_peaks {
            lo = lo.min(u);
            hi = hi.max(u);
        }
        (lo, hi)
    }

    /// Flush any partially-completed window at the end of the experiment.
    pub fn finish(&mut self, now: SimTime) {
        self.roll_windows(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_utilisation_from_event_counts() {
        let mut cpu = CpuModel::calibrated();
        let now = SimTime::from_secs(10);
        // 10k RTP packets at 19 µs = 0.19 s busy over 10 s = 1.9% + 10% base.
        for _ in 0..10_000 {
            cpu.on_rtp_packet(SimTime::from_secs(5));
        }
        let u = cpu.mean_utilisation(now);
        assert!((u - 0.119).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn sip_and_rtp_costs_differ() {
        let mut cpu = CpuModel::calibrated();
        for _ in 0..1000 {
            cpu.on_sip_message(SimTime::from_secs(1));
        }
        let sip_u = cpu.mean_utilisation(SimTime::from_secs(10));
        let mut cpu2 = CpuModel::calibrated();
        for _ in 0..1000 {
            cpu2.on_rtp_packet(SimTime::from_secs(1));
        }
        let rtp_u = cpu2.mean_utilisation(SimTime::from_secs(10));
        assert!(sip_u > rtp_u, "SIP messages cost more each");
    }

    #[test]
    fn windows_capture_bands() {
        let mut cpu = CpuModel::new(
            CpuCosts {
                sip_cost: SimDuration::from_micros(100),
                rtp_cost: SimDuration::from_micros(100),
                base_load: 0.0,
            },
            SimDuration::from_secs(1),
        );
        // Window 0: 1000 events = 0.1 s busy -> 10%.
        for _ in 0..1000 {
            cpu.on_rtp_packet(SimTime::from_millis(500));
        }
        // Window 1: 5000 events -> 50%.
        for _ in 0..5000 {
            cpu.on_rtp_packet(SimTime::from_millis(1500));
        }
        cpu.finish(SimTime::from_secs(2));
        let (lo, hi) = cpu.utilisation_band();
        assert!((lo - 0.1).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.5).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn idle_model_reports_base_load() {
        let cpu = CpuModel::calibrated();
        assert_eq!(cpu.utilisation_band(), (0.10, 0.10));
        assert!((cpu.mean_utilisation(SimTime::from_secs(100)) - 0.10).abs() < 1e-12);
        assert_eq!(cpu.mean_utilisation(SimTime::ZERO), 0.10);
    }

    #[test]
    fn utilisation_saturates_at_one() {
        let mut cpu = CpuModel::new(
            CpuCosts {
                sip_cost: SimDuration::from_millis(10),
                rtp_cost: SimDuration::from_millis(10),
                base_load: 0.0,
            },
            SimDuration::from_secs(1),
        );
        for _ in 0..1000 {
            cpu.on_sip_message(SimTime::from_millis(100));
        }
        cpu.finish(SimTime::from_secs(1));
        assert!(cpu.mean_utilisation(SimTime::from_secs(1)) <= 1.0);
        assert!(cpu.utilisation_band().1 <= 1.0);
    }

    #[test]
    fn throttle_scales_event_costs() {
        let mut nominal = CpuModel::calibrated();
        let mut throttled = CpuModel::calibrated();
        throttled.set_throttle(3.0);
        assert!((throttled.throttle() - 3.0).abs() < 1e-12);
        for _ in 0..10_000 {
            nominal.on_rtp_packet(SimTime::from_secs(2));
            throttled.on_rtp_packet(SimTime::from_secs(2));
        }
        let until = SimTime::from_secs(10);
        let base = CpuCosts::default().base_load;
        let u_n = nominal.mean_utilisation(until) - base;
        let u_t = throttled.mean_utilisation(until) - base;
        assert!((u_t - 3.0 * u_n).abs() < 1e-9, "u_t={u_t} u_n={u_n}");
    }

    #[test]
    fn last_window_utilisation_tracks_most_recent_window() {
        let mut cpu = CpuModel::new(
            CpuCosts {
                sip_cost: SimDuration::from_micros(100),
                rtp_cost: SimDuration::from_micros(100),
                base_load: 0.0,
            },
            SimDuration::from_secs(1),
        );
        assert_eq!(cpu.last_window_utilisation(), None, "no window closed yet");
        for _ in 0..2000 {
            cpu.on_rtp_packet(SimTime::from_millis(500));
        }
        cpu.finish(SimTime::from_secs(1));
        let u = cpu.last_window_utilisation().unwrap();
        assert!((u - 0.2).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn calibration_lands_in_paper_bands() {
        // Steady state at A Erlangs: A concurrent calls, each generating
        // 100 RTP relays/s (50 pps × 2 directions) and negligible SIP.
        // Check the calibrated model lands inside (or near) Table I's CPU
        // bands: 40 E -> 15–20%, 240 E -> 55–60%.
        let cases: [(f64, f64, f64); 3] =
            [(40.0, 0.14, 0.22), (120.0, 0.28, 0.40), (240.0, 0.50, 0.65)];
        for (erlangs, lo, hi) in cases {
            let mut cpu = CpuModel::calibrated();
            let seconds = 10u64;
            // Per second: erlangs × 100 packets, delivered during that second.
            for s in 0..seconds {
                for _ in 0..(erlangs as u64 * 100) {
                    cpu.on_rtp_packet(SimTime::from_secs(s));
                }
                // 13 SIP messages per call × A/120 calls/s ≈ A/9 msgs/s.
                for _ in 0..(erlangs as u64 / 9) {
                    cpu.on_sip_message(SimTime::from_secs(s));
                }
            }
            let u = cpu.mean_utilisation(SimTime::from_secs(seconds));
            assert!(
                u > lo && u < hi,
                "A={erlangs}: utilisation {u} outside ({lo}, {hi})"
            );
        }
    }
}
