//! Asterisk-style software PBX — the system under test.
//!
//! The paper stresses a real Asterisk 1.8 server; this crate provides the
//! simulated equivalent with the behaviours the capacity evaluation
//! depends on:
//!
//! * [`b2bua`] — the back-to-back user agent: terminates the caller's SIP
//!   leg, originates the callee's leg, forwards 100/180/200/ACK/BYE per the
//!   paper's Fig. 2 ladder (9 messages up, 4 down), and relays RTP between
//!   the legs through per-call media ports, exactly like Asterisk in
//!   non-directmedia mode;
//! * [`channels`] — the finite channel pool whose size is the capacity
//!   knob `N`; exhaustion turns new INVITEs into 486 Busy Here;
//! * [`registrar`] + [`directory`] — REGISTER handling with credential
//!   checks against an LDAP-like in-memory directory (the paper's UnB
//!   deployment authenticates against LDAP);
//! * [`dialplan`] — extension-pattern routing;
//! * [`cdr`] — call detail records with dispositions and billing seconds;
//! * [`cpu`] — a calibrated service-cost model that turns message and
//!   packet handling into CPU utilisation (documented in DESIGN.md §7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b2bua;
pub mod cdr;
pub mod channels;
pub mod cpu;
pub mod dialplan;
pub mod directory;
pub mod registrar;

pub use b2bua::{OverloadControl, Pbx, PbxAction, PbxConfig, PbxStats};
pub use cdr::{CallRecord, Disposition};
pub use channels::ChannelPool;
pub use cpu::CpuModel;
pub use dialplan::Dialplan;
pub use directory::Directory;
pub use registrar::Registrar;
