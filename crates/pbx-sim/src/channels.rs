//! The finite channel pool — the capacity knob `N` of the whole study.
//!
//! Each active call occupies one channel (a channel carries the two-party
//! conversation; the paper notes a PBX of `N` channels serves at most `2N`
//! users concurrently). When the pool is exhausted the B2BUA refuses new
//! INVITEs, which is precisely the "blocked call" the Erlang-B model
//! predicts.

use des::{SimTime, TimeWeighted};
use serde::{Deserialize, Serialize};

/// Identifier of an allocated channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

/// The pool.
#[derive(Debug, Clone)]
pub struct ChannelPool {
    capacity: u32,
    free: Vec<u32>,
    in_use: u32,
    peak: u32,
    peak_gauge: u32,
    allocated_total: u64,
    refused_total: u64,
    occupancy: TimeWeighted,
}

impl ChannelPool {
    /// A pool of `capacity` channels.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        let mut occupancy = TimeWeighted::new();
        occupancy.set(SimTime::ZERO, 0.0);
        ChannelPool {
            capacity,
            // Hand out low ids first: pop from the back of a reversed list.
            free: (0..capacity).rev().collect(),
            in_use: 0,
            peak: 0,
            peak_gauge: 0,
            allocated_total: 0,
            refused_total: 0,
            occupancy,
        }
    }

    /// Total channels configured.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Channels currently allocated.
    #[must_use]
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Highest concurrent allocation seen — Table I's "Number of Channels".
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Resettable high-water-mark gauge: the highest concurrent
    /// allocation since the last [`ChannelPool::reset_peak_in_use`].
    /// Unlike [`ChannelPool::peak`] (all-time, for Table I), this gauge
    /// can be re-armed mid-run — e.g. right after a crash fault — to read
    /// how far the pool refills during recovery.
    #[must_use]
    pub fn peak_in_use(&self) -> u32 {
        self.peak_gauge
    }

    /// Re-arm the [`ChannelPool::peak_in_use`] gauge at the current level.
    pub fn reset_peak_in_use(&mut self) {
        self.peak_gauge = self.in_use;
    }

    /// Forcibly return every allocated channel to the free list — a PBX
    /// crash wiping its channel table. Returns how many were flushed.
    /// Outstanding [`ChannelId`]s become invalid; the caller must drop
    /// its call state alongside (releasing one later would double-free).
    pub fn flush(&mut self, now: SimTime) -> u32 {
        let flushed = self.in_use;
        self.free = (0..self.capacity).rev().collect();
        self.in_use = 0;
        self.peak_gauge = 0;
        self.occupancy.set(now, 0.0);
        flushed
    }

    /// Total successful allocations.
    #[must_use]
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Total refused allocations (pool exhausted).
    #[must_use]
    pub fn refused_total(&self) -> u64 {
        self.refused_total
    }

    /// Try to allocate a channel at time `now`.
    pub fn allocate(&mut self, now: SimTime) -> Option<ChannelId> {
        match self.free.pop() {
            Some(id) => {
                self.in_use += 1;
                self.peak = self.peak.max(self.in_use);
                self.peak_gauge = self.peak_gauge.max(self.in_use);
                self.allocated_total += 1;
                self.occupancy.set(now, f64::from(self.in_use));
                Some(ChannelId(id))
            }
            None => {
                self.refused_total += 1;
                None
            }
        }
    }

    /// Release a previously allocated channel at time `now`.
    ///
    /// # Panics
    /// On double-release or release of a never-allocated id — both are
    /// accounting bugs worth failing loudly on.
    pub fn release(&mut self, now: SimTime, id: ChannelId) {
        assert!(id.0 < self.capacity, "channel {id:?} out of range");
        assert!(
            !self.free.contains(&id.0),
            "double release of channel {id:?}"
        );
        self.free.push(id.0);
        self.in_use -= 1;
        self.occupancy.set(now, f64::from(self.in_use));
    }

    /// Time-weighted mean occupancy over `[0, until]` — the *carried
    /// traffic* in Erlangs, directly comparable to `A·(1−Pb)`.
    #[must_use]
    pub fn mean_occupancy(&self, until: SimTime) -> f64 {
        let m = self.occupancy.mean_until(until);
        if m.is_nan() {
            0.0
        } else {
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::SimDuration;

    #[test]
    fn allocates_up_to_capacity_then_refuses() {
        let mut pool = ChannelPool::new(3);
        let t = SimTime::ZERO;
        let a = pool.allocate(t).unwrap();
        let b = pool.allocate(t).unwrap();
        let c = pool.allocate(t).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(pool.in_use(), 3);
        assert!(pool.allocate(t).is_none(), "pool exhausted");
        assert_eq!(pool.refused_total(), 1);
        assert_eq!(pool.allocated_total(), 3);
        assert_eq!(pool.peak(), 3);
    }

    #[test]
    fn release_makes_channel_reusable() {
        let mut pool = ChannelPool::new(1);
        let t0 = SimTime::ZERO;
        let c = pool.allocate(t0).unwrap();
        assert!(pool.allocate(t0).is_none());
        pool.release(t0 + SimDuration::from_secs(1), c);
        assert_eq!(pool.in_use(), 0);
        assert!(pool.allocate(t0 + SimDuration::from_secs(2)).is_some());
        assert_eq!(pool.peak(), 1, "peak unchanged by churn");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = ChannelPool::new(2);
        let c = pool.allocate(SimTime::ZERO).unwrap();
        pool.release(SimTime::ZERO, c);
        pool.release(SimTime::ZERO, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_channel_panics() {
        let mut pool = ChannelPool::new(2);
        pool.release(SimTime::ZERO, ChannelId(7));
    }

    #[test]
    fn occupancy_integrates_busy_time() {
        // One channel busy for 60 s of a 120 s window = 0.5 Erlang carried.
        let mut pool = ChannelPool::new(10);
        let c = pool.allocate(SimTime::ZERO).unwrap();
        pool.release(SimTime::from_secs(60), c);
        let carried = pool.mean_occupancy(SimTime::from_secs(120));
        assert!((carried - 0.5).abs() < 1e-9, "carried={carried}");
    }

    #[test]
    fn occupancy_empty_pool_is_zero() {
        let pool = ChannelPool::new(5);
        assert_eq!(pool.mean_occupancy(SimTime::from_secs(10)), 0.0);
        assert_eq!(pool.capacity(), 5);
    }

    #[test]
    fn zero_capacity_pool_always_refuses() {
        let mut pool = ChannelPool::new(0);
        assert!(pool.allocate(SimTime::ZERO).is_none());
        assert_eq!(pool.refused_total(), 1);
    }

    #[test]
    fn peak_gauge_resets_independently_of_all_time_peak() {
        let mut pool = ChannelPool::new(5);
        let t = SimTime::ZERO;
        let a = pool.allocate(t).unwrap();
        let b = pool.allocate(t).unwrap();
        let c = pool.allocate(t).unwrap();
        assert_eq!(pool.peak_in_use(), 3);
        pool.release(t, b);
        pool.release(t, c);
        pool.reset_peak_in_use();
        assert_eq!(pool.peak_in_use(), 1, "gauge re-arms at current level");
        assert_eq!(pool.peak(), 3, "all-time peak untouched");
        let _d = pool.allocate(t).unwrap();
        assert_eq!(pool.peak_in_use(), 2);
        pool.release(t, a);
    }

    #[test]
    fn flush_empties_pool_and_rearms_gauge() {
        let mut pool = ChannelPool::new(4);
        let t = SimTime::ZERO;
        for _ in 0..4 {
            pool.allocate(t).unwrap();
        }
        assert!(pool.allocate(t).is_none());
        assert_eq!(pool.flush(SimTime::from_secs(1)), 4);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak_in_use(), 0, "gauge cleared for recovery read");
        assert_eq!(pool.peak(), 4, "all-time peak survives the crash");
        // Every channel is allocatable again.
        for _ in 0..4 {
            assert!(pool.allocate(SimTime::from_secs(2)).is_some());
        }
        assert_eq!(pool.peak_in_use(), 4);
    }

    #[test]
    fn conservation_under_churn() {
        // allocated - released == in_use at every step.
        let mut pool = ChannelPool::new(8);
        let mut held = Vec::new();
        let mut released = 0u64;
        for step in 0..100u64 {
            let t = SimTime::from_millis(step * 10);
            if step % 3 == 2 && !held.is_empty() {
                pool.release(t, held.pop().unwrap());
                released += 1;
            } else if let Some(c) = pool.allocate(t) {
                held.push(c);
            }
            assert_eq!(u64::from(pool.in_use()), pool.allocated_total() - released);
            assert!(pool.in_use() <= pool.capacity());
        }
    }
}
