//! An LDAP-like in-memory user directory.
//!
//! The UnB deployment authenticates SIP users and records calls against an
//! LDAP server (paper §II-A). The evaluation only needs the directory's
//! behaviour — bind (credential check) and attribute search — so this is a
//! small hierarchical-DN store rather than a wire-protocol server.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One directory entry: a distinguished name plus attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Distinguished name, e.g. `uid=1001,ou=people,dc=unb,dc=br`.
    pub dn: String,
    /// Attribute map (single-valued for simplicity).
    pub attrs: HashMap<String, String>,
}

/// Result of a bind attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BindResult {
    /// Credentials accepted.
    Success,
    /// Entry exists but the password is wrong.
    InvalidCredentials,
    /// No such DN.
    NoSuchObject,
}

/// The in-memory directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<String, DirEntry>,
    /// Index: uid attribute -> DN, for fast subscriber lookup.
    uid_index: HashMap<String, String>,
    binds_attempted: u64,
    binds_failed: u64,
}

impl Directory {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Self {
        Directory::default()
    }

    /// A directory pre-populated with `count` campus subscribers, uids
    /// `base .. base+count`, each with password `pw-<uid>` and a phone
    /// extension equal to its uid — the shape of the UnB deployment where
    /// IDs map one-to-one to phone numbers.
    #[must_use]
    pub fn with_subscribers(base: u32, count: u32) -> Self {
        let mut dir = Directory::new();
        for uid in base..base + count {
            let mut attrs = HashMap::new();
            attrs.insert("uid".to_owned(), uid.to_string());
            attrs.insert("userPassword".to_owned(), format!("pw-{uid}"));
            attrs.insert("telephoneNumber".to_owned(), uid.to_string());
            attrs.insert("objectClass".to_owned(), "sipUser".to_owned());
            dir.add(DirEntry {
                dn: format!("uid={uid},ou=people,dc=unb,dc=br"),
                attrs,
            });
        }
        dir
    }

    /// Insert or replace an entry.
    pub fn add(&mut self, entry: DirEntry) {
        if let Some(uid) = entry.attrs.get("uid") {
            self.uid_index.insert(uid.clone(), entry.dn.clone());
        }
        self.entries.insert(entry.dn.clone(), entry);
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Simple bind: check `password` against the entry's `userPassword`.
    pub fn bind(&mut self, dn: &str, password: &str) -> BindResult {
        self.binds_attempted += 1;
        match self.entries.get(dn) {
            None => {
                self.binds_failed += 1;
                BindResult::NoSuchObject
            }
            Some(e) => {
                if e.attrs.get("userPassword").map(String::as_str) == Some(password) {
                    BindResult::Success
                } else {
                    self.binds_failed += 1;
                    BindResult::InvalidCredentials
                }
            }
        }
    }

    /// Search by uid (the registrar's hot path).
    #[must_use]
    pub fn find_by_uid(&self, uid: &str) -> Option<&DirEntry> {
        let dn = self.uid_index.get(uid)?;
        self.entries.get(dn)
    }

    /// Search by arbitrary attribute equality (linear; admin paths only).
    #[must_use]
    pub fn search(&self, attr: &str, value: &str) -> Vec<&DirEntry> {
        let mut hits: Vec<&DirEntry> = self
            .entries
            .values()
            .filter(|e| e.attrs.get(attr).map(String::as_str) == Some(value))
            .collect();
        hits.sort_by(|a, b| a.dn.cmp(&b.dn));
        hits
    }

    /// (attempted, failed) bind counters.
    #[must_use]
    pub fn bind_stats(&self) -> (u64, u64) {
        (self.binds_attempted, self.binds_failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populated_directory_shape() {
        let dir = Directory::with_subscribers(1000, 50);
        assert_eq!(dir.len(), 50);
        assert!(!dir.is_empty());
        let e = dir.find_by_uid("1001").unwrap();
        assert_eq!(e.attrs["telephoneNumber"], "1001");
        assert!(e.dn.contains("uid=1001"));
        assert!(dir.find_by_uid("999").is_none());
        assert!(dir.find_by_uid("1050").is_none(), "range is exclusive");
    }

    #[test]
    fn bind_outcomes() {
        let mut dir = Directory::with_subscribers(1000, 5);
        let dn = "uid=1002,ou=people,dc=unb,dc=br";
        assert_eq!(dir.bind(dn, "pw-1002"), BindResult::Success);
        assert_eq!(dir.bind(dn, "wrong"), BindResult::InvalidCredentials);
        assert_eq!(dir.bind("uid=zzz,dc=x", "pw"), BindResult::NoSuchObject);
        assert_eq!(dir.bind_stats(), (3, 2));
    }

    #[test]
    fn search_by_attribute() {
        let mut dir = Directory::with_subscribers(1000, 3);
        let hits = dir.search("objectClass", "sipUser");
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].dn <= w[1].dn), "sorted");
        assert!(dir.search("objectClass", "printer").is_empty());
        // Replacing an entry updates rather than duplicates.
        let e = dir.find_by_uid("1000").unwrap().clone();
        dir.add(e);
        assert_eq!(dir.len(), 3);
    }

    #[test]
    fn empty_directory() {
        let dir = Directory::new();
        assert!(dir.is_empty());
        assert!(dir.find_by_uid("1").is_none());
        assert!(dir.search("uid", "1").is_empty());
    }
}
