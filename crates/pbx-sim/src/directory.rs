//! An LDAP-like in-memory user directory.
//!
//! The UnB deployment authenticates SIP users and records calls against an
//! LDAP server (paper §II-A). The evaluation only needs the directory's
//! behaviour — bind (credential check) and attribute search — so this is a
//! small hierarchical-DN store rather than a wire-protocol server.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One directory entry: a distinguished name plus attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Distinguished name, e.g. `uid=1001,ou=people,dc=unb,dc=br`.
    pub dn: String,
    /// Attribute map (single-valued for simplicity).
    pub attrs: HashMap<String, String>,
}

/// Result of a bind attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BindResult {
    /// Credentials accepted.
    Success,
    /// Entry exists but the password is wrong.
    InvalidCredentials,
    /// No such DN.
    NoSuchObject,
}

/// The in-memory directory.
///
/// The entry store and uid index live behind `Arc`s with copy-on-write
/// semantics: cloning a directory is two refcount bumps, and the deep
/// copy happens only if the clone later mutates its rows ([`Directory::add`]).
/// Read paths and bind accounting never trigger the copy, so a sweep
/// can stamp out one subscriber table per replication from a shared
/// prototype ([`Directory::shared_subscribers`]) at O(1) cost instead of
/// re-materializing `count` entries × four attributes every run.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: Arc<HashMap<String, DirEntry>>,
    /// Index: uid attribute -> DN, for fast subscriber lookup.
    uid_index: Arc<HashMap<String, String>>,
    /// Population-scale subscriber range `(base, count)` whose entries are
    /// derived on demand (`uid ∈ base..base+count`, password `pw-<uid>`)
    /// instead of materialized — O(1) memory for 10⁶ subscribers. Explicit
    /// entries always take precedence.
    synthetic: Option<(u64, u64)>,
    binds_attempted: u64,
    binds_failed: u64,
}

impl Directory {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Self {
        Directory::default()
    }

    /// A directory pre-populated with `count` campus subscribers, uids
    /// `base .. base+count`, each with password `pw-<uid>` and a phone
    /// extension equal to its uid — the shape of the UnB deployment where
    /// IDs map one-to-one to phone numbers.
    #[must_use]
    pub fn with_subscribers(base: u32, count: u32) -> Self {
        let mut dir = Directory::new();
        for uid in base..base + count {
            let mut attrs = HashMap::new();
            attrs.insert("uid".to_owned(), uid.to_string());
            attrs.insert("userPassword".to_owned(), format!("pw-{uid}"));
            attrs.insert("telephoneNumber".to_owned(), uid.to_string());
            attrs.insert("objectClass".to_owned(), "sipUser".to_owned());
            dir.add(DirEntry {
                dn: format!("uid={uid},ou=people,dc=unb,dc=br"),
                attrs,
            });
        }
        dir
    }

    /// A directory whose subscribers are the *rule* `uid ∈
    /// base..base+count → password pw-<uid>` rather than stored rows. The
    /// schema matches [`Directory::with_subscribers`] exactly, but holds no
    /// per-user state — the population-scale counterpart for
    /// million-subscriber workloads, where materializing entries would cost
    /// hundreds of megabytes before the first call is placed.
    #[must_use]
    pub fn with_synthetic_range(base: u64, count: u64) -> Self {
        let mut dir = Directory::new();
        dir.synthetic = Some((base, count));
        dir
    }

    /// Attach (or replace) the synthetic subscriber range on an existing
    /// directory — explicit entries keep taking precedence, so a classic
    /// campus pool and a synthetic million-user population can coexist.
    pub fn set_synthetic_range(&mut self, base: u64, count: u64) {
        self.synthetic = Some((base, count));
    }

    /// Does the synthetic range (if any) cover `uid`?
    fn synthetic_covers(&self, uid: &str) -> bool {
        let Some((base, count)) = self.synthetic else {
            return false;
        };
        // Reject non-canonical spellings ("+5", "007"): synthetic uids are
        // plain decimal with no leading zeros, like every uid this repo
        // generates.
        if uid.is_empty() || !uid.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        if uid.len() > 1 && uid.starts_with('0') {
            return false;
        }
        uid.parse::<u64>()
            .is_ok_and(|u| u >= base && u - base < count)
    }

    /// The password for `uid` — explicit entry first, then the synthetic
    /// rule. The digest-auth verification path, which needs the cleartext
    /// secret to check the response hash.
    #[must_use]
    pub fn password_of(&self, uid: &str) -> Option<String> {
        if let Some(e) = self.find_by_uid(uid) {
            return e.attrs.get("userPassword").cloned();
        }
        self.synthetic_covers(uid).then(|| format!("pw-{uid}"))
    }

    /// Bind by uid instead of DN: `None` when no such user exists (no bind
    /// attempted — mirrors the registrar's historical lookup-then-bind
    /// sequence), otherwise the counted [`BindResult`]. Synthetic-range
    /// users authenticate against the derived password without touching
    /// the entry store.
    pub fn bind_uid(&mut self, uid: &str, password: &str) -> Option<BindResult> {
        if let Some(dn) = self.uid_index.get(uid) {
            let dn = dn.clone();
            return Some(self.bind(&dn, password));
        }
        if !self.synthetic_covers(uid) {
            return None;
        }
        self.binds_attempted += 1;
        // Compare without allocating the expected password: "pw-" + uid.
        let ok = password.strip_prefix("pw-").is_some_and(|rest| rest == uid);
        if ok {
            Some(BindResult::Success)
        } else {
            self.binds_failed += 1;
            Some(BindResult::InvalidCredentials)
        }
    }

    /// Insert or replace an entry. The first mutation after a cheap
    /// clone pays the copy-on-write (both maps are deep-copied once);
    /// further mutations are ordinary map inserts.
    pub fn add(&mut self, entry: DirEntry) {
        if let Some(uid) = entry.attrs.get("uid") {
            Arc::make_mut(&mut self.uid_index).insert(uid.clone(), entry.dn.clone());
        }
        Arc::make_mut(&mut self.entries).insert(entry.dn.clone(), entry);
    }

    /// A clone of the process-wide shared prototype for
    /// `with_subscribers(base, count)` — built cold exactly once per
    /// distinct `(base, count)`, then handed out as two `Arc` bumps per
    /// call. Observationally identical to [`Directory::with_subscribers`]
    /// (fresh bind counters, no synthetic range, same rows); only the
    /// setup cost differs. This is the sweep plane's answer to the
    /// dominant per-replication setup item: every PBX in every
    /// replication of a campaign wants the same 1000-subscriber campus
    /// table.
    #[must_use]
    pub fn shared_subscribers(base: u32, count: u32) -> Self {
        use std::sync::{Mutex, OnceLock};
        static MEMO: OnceLock<Mutex<HashMap<(u32, u32), Directory>>> = OnceLock::new();
        let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry((base, count))
            .or_insert_with(|| Directory::with_subscribers(base, count))
            .clone()
    }

    /// Number of subscribers (explicit entries plus the synthetic range).
    #[must_use]
    pub fn len(&self) -> usize {
        let synth = self.synthetic.map_or(0, |(_, count)| count) as usize;
        self.entries.len() + synth
    }

    /// True when the directory holds no subscribers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simple bind: check `password` against the entry's `userPassword`.
    pub fn bind(&mut self, dn: &str, password: &str) -> BindResult {
        self.binds_attempted += 1;
        match self.entries.get(dn) {
            None => {
                self.binds_failed += 1;
                BindResult::NoSuchObject
            }
            Some(e) => {
                if e.attrs.get("userPassword").map(String::as_str) == Some(password) {
                    BindResult::Success
                } else {
                    self.binds_failed += 1;
                    BindResult::InvalidCredentials
                }
            }
        }
    }

    /// Search by uid (the registrar's hot path).
    #[must_use]
    pub fn find_by_uid(&self, uid: &str) -> Option<&DirEntry> {
        let dn = self.uid_index.get(uid)?;
        self.entries.get(dn)
    }

    /// Search by arbitrary attribute equality (linear; admin paths only).
    #[must_use]
    pub fn search(&self, attr: &str, value: &str) -> Vec<&DirEntry> {
        let mut hits: Vec<&DirEntry> = self
            .entries
            .values()
            .filter(|e| e.attrs.get(attr).map(String::as_str) == Some(value))
            .collect();
        hits.sort_by(|a, b| a.dn.cmp(&b.dn));
        hits
    }

    /// (attempted, failed) bind counters.
    #[must_use]
    pub fn bind_stats(&self) -> (u64, u64) {
        (self.binds_attempted, self.binds_failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populated_directory_shape() {
        let dir = Directory::with_subscribers(1000, 50);
        assert_eq!(dir.len(), 50);
        assert!(!dir.is_empty());
        let e = dir.find_by_uid("1001").unwrap();
        assert_eq!(e.attrs["telephoneNumber"], "1001");
        assert!(e.dn.contains("uid=1001"));
        assert!(dir.find_by_uid("999").is_none());
        assert!(dir.find_by_uid("1050").is_none(), "range is exclusive");
    }

    #[test]
    fn bind_outcomes() {
        let mut dir = Directory::with_subscribers(1000, 5);
        let dn = "uid=1002,ou=people,dc=unb,dc=br";
        assert_eq!(dir.bind(dn, "pw-1002"), BindResult::Success);
        assert_eq!(dir.bind(dn, "wrong"), BindResult::InvalidCredentials);
        assert_eq!(dir.bind("uid=zzz,dc=x", "pw"), BindResult::NoSuchObject);
        assert_eq!(dir.bind_stats(), (3, 2));
    }

    #[test]
    fn search_by_attribute() {
        let mut dir = Directory::with_subscribers(1000, 3);
        let hits = dir.search("objectClass", "sipUser");
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].dn <= w[1].dn), "sorted");
        assert!(dir.search("objectClass", "printer").is_empty());
        // Replacing an entry updates rather than duplicates.
        let e = dir.find_by_uid("1000").unwrap().clone();
        dir.add(e);
        assert_eq!(dir.len(), 3);
    }

    #[test]
    fn synthetic_range_behaves_like_materialized_subscribers() {
        let mut dir = Directory::with_synthetic_range(1_000_000, 1_000_000);
        assert_eq!(dir.len(), 1_000_000);
        assert!(!dir.is_empty());
        // Same observable auth behaviour as with_subscribers, no rows.
        assert_eq!(dir.password_of("1500000"), Some("pw-1500000".to_owned()));
        assert_eq!(
            dir.bind_uid("1500000", "pw-1500000"),
            Some(BindResult::Success)
        );
        assert_eq!(
            dir.bind_uid("1500000", "wrong"),
            Some(BindResult::InvalidCredentials)
        );
        // Outside the range / malformed spellings: no such user, and no
        // bind attempt is charged (the historical lookup-then-bind shape).
        assert_eq!(dir.bind_uid("999999", "pw-999999"), None);
        assert_eq!(dir.bind_uid("2000000", "pw-2000000"), None);
        assert_eq!(dir.bind_uid("+1500000", "pw-+1500000"), None);
        assert_eq!(dir.bind_uid("01500000", "pw-01500000"), None);
        assert_eq!(dir.password_of("2000000"), None);
        assert_eq!(dir.bind_stats(), (2, 1));
        assert!(dir.find_by_uid("1500000").is_none(), "no materialized row");
    }

    #[test]
    fn bind_uid_matches_the_lookup_then_bind_sequence_for_entries() {
        let mut dir = Directory::with_subscribers(1000, 5);
        assert_eq!(dir.bind_uid("1002", "pw-1002"), Some(BindResult::Success));
        assert_eq!(
            dir.bind_uid("1002", "nope"),
            Some(BindResult::InvalidCredentials)
        );
        assert_eq!(dir.bind_uid("9999", "pw-9999"), None, "unknown: no bind");
        assert_eq!(dir.bind_stats(), (2, 1));
        // Explicit entries win over an overlapping synthetic range.
        let mut both = Directory::with_subscribers(1000, 5);
        both.set_synthetic_range(0, 10_000);
        let mut e = both.find_by_uid("1002").unwrap().clone();
        e.attrs
            .insert("userPassword".to_owned(), "custom".to_owned());
        both.add(e);
        assert_eq!(both.password_of("1002"), Some("custom".to_owned()));
        assert_eq!(both.bind_uid("1002", "custom"), Some(BindResult::Success));
    }

    #[test]
    fn shared_subscribers_matches_cold_build_and_cow_isolates_clones() {
        let shared = Directory::shared_subscribers(1000, 50);
        let cold = Directory::with_subscribers(1000, 50);
        assert_eq!(shared.len(), cold.len());
        for uid in [1000u32, 1025, 1049] {
            let s = shared.find_by_uid(&uid.to_string()).unwrap();
            let c = cold.find_by_uid(&uid.to_string()).unwrap();
            assert_eq!(s, c, "uid {uid}");
        }
        assert_eq!(shared.bind_stats(), (0, 0), "fresh counters");
        // Two shared clones alias the same rows…
        let other = Directory::shared_subscribers(1000, 50);
        assert!(Arc::ptr_eq(&shared.entries, &other.entries));
        // …until one mutates: COW deep-copies the mutator, the prototype
        // and its siblings are untouched.
        let mut mutated = Directory::shared_subscribers(1000, 50);
        let mut e = mutated.find_by_uid("1000").unwrap().clone();
        e.attrs
            .insert("userPassword".to_owned(), "changed".to_owned());
        mutated.add(e);
        assert_eq!(mutated.password_of("1000"), Some("changed".to_owned()));
        assert_eq!(
            Directory::shared_subscribers(1000, 50).password_of("1000"),
            Some("pw-1000".to_owned()),
            "prototype unaffected by a clone's mutation"
        );
        // Bind accounting never touches the shared rows.
        let mut binder = Directory::shared_subscribers(1000, 50);
        binder.bind_uid("1001", "pw-1001");
        assert!(Arc::ptr_eq(&binder.entries, &other.entries));
    }

    #[test]
    fn empty_directory() {
        let dir = Directory::new();
        assert!(dir.is_empty());
        assert!(dir.find_by_uid("1").is_none());
        assert!(dir.search("uid", "1").is_empty());
    }
}
