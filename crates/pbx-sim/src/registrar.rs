//! SIP registrar: binds address-of-records to reachable contacts, with
//! directory-backed authentication.
//!
//! In the paper's deployment users authenticate against LDAP and are then
//! reachable at their campus extension. Here a REGISTER carries the uid and
//! password (in an `Authorization: Simple uid password` header — a stand-in
//! for digest auth that exercises the same directory code path); on success
//! the registrar records where that extension lives (node + RTP-signalling
//! coordinates) with an expiry.

use crate::directory::{BindResult, Directory};
use des::{FastMap, SimDuration, SimTime};
use netsim::NodeId;
use serde::{Deserialize, Serialize};

/// A registered binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// Node where the user agent runs.
    pub node: NodeId,
    /// Registration expiry instant.
    pub expires_at: SimTime,
}

/// Outcome of a REGISTER attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterOutcome {
    /// Accepted; binding stored.
    Ok,
    /// Unknown user or bad password.
    AuthFailed,
}

/// Compact bindings for a contiguous population of subscribers homed on
/// one node: a structure-of-arrays table indexed by `uid − base`, one
/// `SimTime` per user.
///
/// A million-subscriber registrar is legitimately O(population) — each
/// user *has* a binding — but the classic map prices that at an owned
/// `String` key plus hash-map overhead per user (~100 B each, and a
/// million-REGISTER prime storm to fill it). This table prices it at
/// 8 bytes flat, installs in one call, and its hot paths (refresh,
/// lookup) never hash or allocate.
#[derive(Debug, Clone)]
pub struct PopulationBindings {
    base: u64,
    /// `expires_at[uid - base]`; `SimTime::ZERO` means never/expired.
    expires_at: Vec<SimTime>,
    /// All population users are homed on one UA node (the load
    /// generator's), like the classic pool's users.
    node: NodeId,
}

impl PopulationBindings {
    /// Does this table own `uid`? Canonical decimal spellings only.
    fn index_of(&self, uid: &str) -> Option<usize> {
        if uid.is_empty() || !uid.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        if uid.len() > 1 && uid.starts_with('0') {
            return None;
        }
        let u = uid.parse::<u64>().ok()?;
        let idx = u.checked_sub(self.base)?;
        (idx < self.expires_at.len() as u64).then_some(idx as usize)
    }
}

/// The registrar.
#[derive(Debug, Clone)]
pub struct Registrar {
    bindings: FastMap<String, Binding>,
    /// Population-scale contiguous range, if installed; checked before
    /// the classic map (the ranges are disjoint by construction — classic
    /// pools live in 1000..2500, populations at 10⁶+).
    population: Option<PopulationBindings>,
    default_expiry: SimDuration,
    registrations: u64,
    auth_failures: u64,
}

impl Registrar {
    /// A registrar granting `default_expiry` per registration.
    #[must_use]
    pub fn new(default_expiry: SimDuration) -> Self {
        Registrar {
            bindings: FastMap::default(),
            population: None,
            default_expiry,
            registrations: 0,
            auth_failures: 0,
        }
    }

    /// Install bindings for a whole contiguous population at once:
    /// `base..base+count` homed on `node`, each expiring `default_expiry`
    /// from `now`.
    ///
    /// This models the steady state a long-lived deployment is always in —
    /// everyone registered, expiries staggered forward by churn — and
    /// replaces the O(population) REGISTER prime *storm* with an
    /// O(population) memset-shaped install. Bulk installs do not count as
    /// REGISTER transactions in [`Registrar::stats`]; only the ongoing
    /// churn does, because only the churn sends messages.
    pub fn bulk_install(&mut self, now: SimTime, base: u64, count: u64, node: NodeId) {
        let n = usize::try_from(count).expect("population fits usize");
        self.population = Some(PopulationBindings {
            base,
            expires_at: vec![now + self.default_expiry; n],
            node,
        });
    }

    /// Process a REGISTER for `uid` with `password`, binding it to `node`.
    pub fn register(
        &mut self,
        dir: &mut Directory,
        now: SimTime,
        uid: &str,
        password: &str,
        node: NodeId,
    ) -> RegisterOutcome {
        match dir.bind_uid(uid, password) {
            Some(BindResult::Success) => {
                let expires_at = now + self.default_expiry;
                // Population fast path: an 8-byte store, no key
                // allocation, no hashing.
                if let Some(idx) = self.population.as_ref().and_then(|p| p.index_of(uid)) {
                    self.population.as_mut().expect("just matched").expires_at[idx] = expires_at;
                } else {
                    self.bindings
                        .insert(uid.to_owned(), Binding { node, expires_at });
                }
                self.registrations += 1;
                RegisterOutcome::Ok
            }
            _ => {
                self.auth_failures += 1;
                RegisterOutcome::AuthFailed
            }
        }
    }

    /// Look up a *live* binding at time `now` (expired map bindings are
    /// invisible and pruned lazily; expired population slots just read as
    /// absent — their storage is fixed either way).
    pub fn lookup(&mut self, now: SimTime, uid: &str) -> Option<Binding> {
        if let Some(p) = &self.population {
            if let Some(idx) = p.index_of(uid) {
                let expires_at = p.expires_at[idx];
                return (expires_at > now).then_some(Binding {
                    node: p.node,
                    expires_at,
                });
            }
        }
        match self.bindings.get(uid) {
            Some(b) if b.expires_at > now => Some(*b),
            Some(_) => {
                self.bindings.remove(uid);
                None
            }
            None => None,
        }
    }

    /// Number of (possibly stale) stored bindings, counting every
    /// population slot.
    #[must_use]
    pub fn len(&self) -> usize {
        let pop = self.population.as_ref().map_or(0, |p| p.expires_at.len());
        self.bindings.len() + pop
    }

    /// True when no bindings are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (successful registrations, auth failures).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.registrations, self.auth_failures)
    }

    /// Drop every binding — a crash losing the in-memory location table.
    /// Counters survive (they model persistent logs); endpoints must
    /// re-REGISTER before they are reachable again. Returns how many
    /// bindings were lost.
    pub fn clear(&mut self) -> usize {
        let mut lost = self.bindings.len();
        self.bindings.clear();
        if let Some(p) = &mut self.population {
            // Crash semantics for the population table: slots survive (the
            // allocation is the table, not the registrations) but every
            // expiry is zeroed, so users read as unregistered until churn
            // re-registers them.
            lost += p.expires_at.iter().filter(|&&t| t > SimTime::ZERO).count();
            p.expires_at.fill(SimTime::ZERO);
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Registrar, Directory) {
        (
            Registrar::new(SimDuration::from_secs(3600)),
            Directory::with_subscribers(1000, 10),
        )
    }

    #[test]
    fn register_and_lookup() {
        let (mut reg, mut dir) = setup();
        let out = reg.register(&mut dir, SimTime::ZERO, "1003", "pw-1003", NodeId(5));
        assert_eq!(out, RegisterOutcome::Ok);
        let b = reg.lookup(SimTime::from_secs(10), "1003").unwrap();
        assert_eq!(b.node, NodeId(5));
        assert_eq!(reg.stats(), (1, 0));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn wrong_password_rejected() {
        let (mut reg, mut dir) = setup();
        let out = reg.register(&mut dir, SimTime::ZERO, "1003", "nope", NodeId(5));
        assert_eq!(out, RegisterOutcome::AuthFailed);
        assert!(reg.lookup(SimTime::ZERO, "1003").is_none());
        assert_eq!(reg.stats(), (0, 1));
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut reg, mut dir) = setup();
        let out = reg.register(&mut dir, SimTime::ZERO, "9999", "pw-9999", NodeId(5));
        assert_eq!(out, RegisterOutcome::AuthFailed);
        assert!(reg.is_empty());
    }

    #[test]
    fn bindings_expire() {
        let (mut reg, mut dir) = setup();
        reg.register(&mut dir, SimTime::ZERO, "1001", "pw-1001", NodeId(2));
        assert!(reg.lookup(SimTime::from_secs(3599), "1001").is_some());
        assert!(reg.lookup(SimTime::from_secs(3600), "1001").is_none());
        assert_eq!(reg.len(), 0, "expired binding pruned");
    }

    #[test]
    fn clear_loses_bindings_but_keeps_counters() {
        let (mut reg, mut dir) = setup();
        reg.register(&mut dir, SimTime::ZERO, "1001", "pw-1001", NodeId(2));
        reg.register(&mut dir, SimTime::ZERO, "1002", "pw-1002", NodeId(3));
        assert_eq!(reg.clear(), 2);
        assert!(reg.is_empty());
        assert!(reg.lookup(SimTime::from_secs(1), "1001").is_none());
        assert_eq!(reg.stats(), (2, 0), "history survives the crash");
        // Re-registration works afterwards.
        reg.register(
            &mut dir,
            SimTime::from_secs(2),
            "1001",
            "pw-1001",
            NodeId(2),
        );
        assert!(reg.lookup(SimTime::from_secs(3), "1001").is_some());
    }

    #[test]
    fn bulk_install_registers_a_population_without_a_storm() {
        let mut reg = Registrar::new(SimDuration::from_secs(3600));
        let mut dir = Directory::with_synthetic_range(1_000_000, 1_000_000);
        reg.bulk_install(SimTime::ZERO, 1_000_000, 1_000_000, NodeId(3));
        assert_eq!(reg.len(), 1_000_000);
        let b = reg.lookup(SimTime::from_secs(10), "1234567").unwrap();
        assert_eq!(b.node, NodeId(3));
        assert_eq!(reg.stats(), (0, 0), "installs are not REGISTER traffic");
        // Expiry: a slot that churn never refreshes goes dark.
        assert!(reg.lookup(SimTime::from_secs(3600), "1234567").is_none());
        // Churn refresh rides the numeric fast path (same map-free slot).
        let out = reg.register(
            &mut dir,
            SimTime::from_secs(3000),
            "1234567",
            "pw-1234567",
            NodeId(3),
        );
        assert_eq!(out, RegisterOutcome::Ok);
        assert!(reg.lookup(SimTime::from_secs(3600), "1234567").is_some());
        assert_eq!(reg.stats(), (1, 0));
        assert_eq!(reg.len(), 1_000_000, "no map entry was created");
        // Out-of-range uids still use the classic path untouched.
        assert!(reg.lookup(SimTime::from_secs(1), "999").is_none());
    }

    #[test]
    fn population_crash_clears_expiries_but_keeps_the_table() {
        let mut reg = Registrar::new(SimDuration::from_secs(3600));
        let mut dir = Directory::with_synthetic_range(1_000_000, 100);
        reg.bulk_install(SimTime::ZERO, 1_000_000, 100, NodeId(3));
        assert_eq!(reg.clear(), 100);
        assert!(reg.lookup(SimTime::from_secs(1), "1000050").is_none());
        assert_eq!(reg.len(), 100, "slots survive; registrations do not");
        // Churn re-registers the user after the crash.
        reg.register(
            &mut dir,
            SimTime::from_secs(5),
            "1000050",
            "pw-1000050",
            NodeId(3),
        );
        assert!(reg.lookup(SimTime::from_secs(6), "1000050").is_some());
    }

    #[test]
    fn classic_and_population_paths_coexist() {
        let mut reg = Registrar::new(SimDuration::from_secs(3600));
        let mut dir = Directory::with_subscribers(1000, 10);
        dir.add(crate::directory::DirEntry {
            dn: "uid=1003,ou=people,dc=unb,dc=br".to_owned(),
            attrs: [
                ("uid".to_owned(), "1003".to_owned()),
                ("userPassword".to_owned(), "pw-1003".to_owned()),
            ]
            .into_iter()
            .collect(),
        });
        reg.bulk_install(SimTime::ZERO, 1_000_000, 10, NodeId(9));
        reg.register(&mut dir, SimTime::ZERO, "1003", "pw-1003", NodeId(5));
        assert_eq!(reg.len(), 11);
        assert_eq!(
            reg.lookup(SimTime::from_secs(1), "1003").unwrap().node,
            NodeId(5)
        );
        assert_eq!(
            reg.lookup(SimTime::from_secs(1), "1000003").unwrap().node,
            NodeId(9)
        );
    }

    #[test]
    fn re_registration_refreshes() {
        let (mut reg, mut dir) = setup();
        reg.register(&mut dir, SimTime::ZERO, "1001", "pw-1001", NodeId(2));
        reg.register(
            &mut dir,
            SimTime::from_secs(3000),
            "1001",
            "pw-1001",
            NodeId(7),
        );
        let b = reg.lookup(SimTime::from_secs(4000), "1001").unwrap();
        assert_eq!(b.node, NodeId(7), "newest binding wins");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats(), (2, 0));
    }
}
