//! SIP registrar: binds address-of-records to reachable contacts, with
//! directory-backed authentication.
//!
//! In the paper's deployment users authenticate against LDAP and are then
//! reachable at their campus extension. Here a REGISTER carries the uid and
//! password (in an `Authorization: Simple uid password` header — a stand-in
//! for digest auth that exercises the same directory code path); on success
//! the registrar records where that extension lives (node + RTP-signalling
//! coordinates) with an expiry.

use crate::directory::{BindResult, Directory};
use des::{FastMap, SimDuration, SimTime};
use netsim::NodeId;
use serde::{Deserialize, Serialize};

/// A registered binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// Node where the user agent runs.
    pub node: NodeId,
    /// Registration expiry instant.
    pub expires_at: SimTime,
}

/// Outcome of a REGISTER attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegisterOutcome {
    /// Accepted; binding stored.
    Ok,
    /// Unknown user or bad password.
    AuthFailed,
}

/// The registrar.
#[derive(Debug, Clone)]
pub struct Registrar {
    bindings: FastMap<String, Binding>,
    default_expiry: SimDuration,
    registrations: u64,
    auth_failures: u64,
}

impl Registrar {
    /// A registrar granting `default_expiry` per registration.
    #[must_use]
    pub fn new(default_expiry: SimDuration) -> Self {
        Registrar {
            bindings: FastMap::default(),
            default_expiry,
            registrations: 0,
            auth_failures: 0,
        }
    }

    /// Process a REGISTER for `uid` with `password`, binding it to `node`.
    pub fn register(
        &mut self,
        dir: &mut Directory,
        now: SimTime,
        uid: &str,
        password: &str,
        node: NodeId,
    ) -> RegisterOutcome {
        let Some(entry) = dir.find_by_uid(uid) else {
            self.auth_failures += 1;
            return RegisterOutcome::AuthFailed;
        };
        let dn = entry.dn.clone();
        match dir.bind(&dn, password) {
            BindResult::Success => {
                self.bindings.insert(
                    uid.to_owned(),
                    Binding {
                        node,
                        expires_at: now + self.default_expiry,
                    },
                );
                self.registrations += 1;
                RegisterOutcome::Ok
            }
            _ => {
                self.auth_failures += 1;
                RegisterOutcome::AuthFailed
            }
        }
    }

    /// Look up a *live* binding at time `now` (expired bindings are
    /// invisible and pruned lazily).
    pub fn lookup(&mut self, now: SimTime, uid: &str) -> Option<Binding> {
        match self.bindings.get(uid) {
            Some(b) if b.expires_at > now => Some(*b),
            Some(_) => {
                self.bindings.remove(uid);
                None
            }
            None => None,
        }
    }

    /// Number of (possibly stale) stored bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when no bindings are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// (successful registrations, auth failures).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.registrations, self.auth_failures)
    }

    /// Drop every binding — a crash losing the in-memory location table.
    /// Counters survive (they model persistent logs); endpoints must
    /// re-REGISTER before they are reachable again. Returns how many
    /// bindings were lost.
    pub fn clear(&mut self) -> usize {
        let lost = self.bindings.len();
        self.bindings.clear();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Registrar, Directory) {
        (
            Registrar::new(SimDuration::from_secs(3600)),
            Directory::with_subscribers(1000, 10),
        )
    }

    #[test]
    fn register_and_lookup() {
        let (mut reg, mut dir) = setup();
        let out = reg.register(&mut dir, SimTime::ZERO, "1003", "pw-1003", NodeId(5));
        assert_eq!(out, RegisterOutcome::Ok);
        let b = reg.lookup(SimTime::from_secs(10), "1003").unwrap();
        assert_eq!(b.node, NodeId(5));
        assert_eq!(reg.stats(), (1, 0));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn wrong_password_rejected() {
        let (mut reg, mut dir) = setup();
        let out = reg.register(&mut dir, SimTime::ZERO, "1003", "nope", NodeId(5));
        assert_eq!(out, RegisterOutcome::AuthFailed);
        assert!(reg.lookup(SimTime::ZERO, "1003").is_none());
        assert_eq!(reg.stats(), (0, 1));
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut reg, mut dir) = setup();
        let out = reg.register(&mut dir, SimTime::ZERO, "9999", "pw-9999", NodeId(5));
        assert_eq!(out, RegisterOutcome::AuthFailed);
        assert!(reg.is_empty());
    }

    #[test]
    fn bindings_expire() {
        let (mut reg, mut dir) = setup();
        reg.register(&mut dir, SimTime::ZERO, "1001", "pw-1001", NodeId(2));
        assert!(reg.lookup(SimTime::from_secs(3599), "1001").is_some());
        assert!(reg.lookup(SimTime::from_secs(3600), "1001").is_none());
        assert_eq!(reg.len(), 0, "expired binding pruned");
    }

    #[test]
    fn clear_loses_bindings_but_keeps_counters() {
        let (mut reg, mut dir) = setup();
        reg.register(&mut dir, SimTime::ZERO, "1001", "pw-1001", NodeId(2));
        reg.register(&mut dir, SimTime::ZERO, "1002", "pw-1002", NodeId(3));
        assert_eq!(reg.clear(), 2);
        assert!(reg.is_empty());
        assert!(reg.lookup(SimTime::from_secs(1), "1001").is_none());
        assert_eq!(reg.stats(), (2, 0), "history survives the crash");
        // Re-registration works afterwards.
        reg.register(
            &mut dir,
            SimTime::from_secs(2),
            "1001",
            "pw-1001",
            NodeId(2),
        );
        assert!(reg.lookup(SimTime::from_secs(3), "1001").is_some());
    }

    #[test]
    fn re_registration_refreshes() {
        let (mut reg, mut dir) = setup();
        reg.register(&mut dir, SimTime::ZERO, "1001", "pw-1001", NodeId(2));
        reg.register(
            &mut dir,
            SimTime::from_secs(3000),
            "1001",
            "pw-1001",
            NodeId(7),
        );
        let b = reg.lookup(SimTime::from_secs(4000), "1001").unwrap();
        assert_eq!(b.node, NodeId(7), "newest binding wins");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats(), (2, 0));
    }
}
