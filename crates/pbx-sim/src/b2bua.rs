//! The back-to-back user agent (B2BUA) — how Asterisk actually carries a
//! call.
//!
//! Asterisk terminates the caller's SIP dialog, originates a fresh dialog
//! to the callee, bridges the two, and relays the media between per-call
//! RTP ports (non-directmedia mode). Every SIP message and every RTP packet
//! of the paper's Fig. 2 ladder transits the server, which is exactly why
//! its CPU and channel pool bound the system's capacity.
//!
//! The implementation is a pure state machine: SIP messages and RTP
//! datagrams go in, [`PbxAction`]s come out; the surrounding world (the
//! `capacity` experiment, tests, benches) owns transport and time.

use crate::cdr::{CallRecord, CdrLog, Disposition};
use crate::channels::{ChannelId, ChannelPool};
use crate::cpu::CpuModel;
use crate::dialplan::{Dialplan, Route};
use crate::directory::Directory;
use crate::registrar::{RegisterOutcome, Registrar};
use des::FastMap;
use des::{SimDuration, SimTime};
use netsim::NodeId;
use overload::{ControlLaw, Feedback, LoadSignals};
use sipcore::headers::{tag_of, with_tag, HeaderName};
use sipcore::message::{write_via_args, Request, Response, SipMessage};
use sipcore::sdp::wire::{SdpBody, SdpSummary};
use sipcore::sdp::SdpCodec;
use sipcore::{AtomTable, Method, StatusCode};
use std::sync::Arc;

/// Overload-control watermarks (SIP server shedding à la RFC 7339).
///
/// The PBX watches two load signals: channel-pool occupancy
/// (`in_use / capacity`) and the CPU model's last completed window
/// utilisation. When either crosses `high_watermark` the PBX starts
/// shedding *new* INVITEs with `503 Service Unavailable` + `Retry-After`;
/// it keeps shedding until both signals fall back below `low_watermark`
/// (hysteresis, so the control does not chatter at the threshold).
/// In-progress calls are never touched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadControl {
    /// Engage shedding at or above this load fraction (0..1].
    pub high_watermark: f64,
    /// Disengage once load falls below this fraction (< high).
    pub low_watermark: f64,
    /// Value advertised in the 503's `Retry-After` header.
    pub retry_after: SimDuration,
}

impl OverloadControl {
    /// Conservative defaults: shed at 90% load, resume below 70%, ask
    /// callers to hold off for 2 s.
    #[must_use]
    pub fn default_watermarks() -> Self {
        OverloadControl {
            high_watermark: 0.90,
            low_watermark: 0.70,
            retry_after: SimDuration::from_secs(2),
        }
    }
}

/// PBX configuration.
#[derive(Debug, Clone)]
pub struct PbxConfig {
    /// This PBX's node on the network.
    pub node: NodeId,
    /// Channel pool size — the capacity knob `N` (the paper infers ≈165
    /// for its Xeon host).
    pub channels: u32,
    /// Hostname used in Via/Contact headers.
    pub hostname: String,
    /// Require REGISTER authentication before accepting calls.
    pub require_registration: bool,
    /// Registration lifetime granted.
    pub registration_expiry: SimDuration,
    /// Dialplan.
    pub dialplan: Dialplan,
    /// Optional per-user concurrent-call ceiling — the "effective call
    /// policy" the paper's §IV proposes for protecting a large population
    /// from a few heavy users. `None` = unlimited (the paper's testbed).
    pub max_calls_per_user: Option<u32>,
    /// Require RFC 2617 digest authentication on REGISTER. When false the
    /// registrar also accepts the lightweight `Simple` scheme used by the
    /// bulk experiments (either way the directory is consulted).
    pub require_digest: bool,
    /// Optional overload control (`None` = the paper's testbed, which
    /// never sheds and simply saturates).
    pub overload: Option<OverloadControl>,
    /// Optional pluggable overload-control law from the `overload` crate.
    /// When both this and the legacy [`PbxConfig::overload`] watermarks are
    /// set, the legacy inline path wins (it is the reference
    /// implementation the digest-compatibility tests compare against).
    pub overload_law: Option<ControlLaw>,
}

impl PbxConfig {
    /// The evaluation defaults: 165 channels, campus dialplan.
    #[must_use]
    pub fn evaluation_default(node: NodeId) -> Self {
        PbxConfig {
            node,
            channels: 165,
            hostname: "pbx.unb.br".to_owned(),
            require_registration: true,
            registration_expiry: SimDuration::from_secs(3600),
            dialplan: Dialplan::campus_default(),
            max_calls_per_user: None,
            require_digest: false,
            overload: None,
            overload_law: None,
        }
    }
}

/// Something the PBX wants the transport to do.
#[derive(Debug, Clone, PartialEq)]
pub enum PbxAction {
    /// Send a SIP message to a node.
    SendSip {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: SipMessage,
    },
    /// Relay an RTP datagram to a node's media port.
    SendRtp {
        /// Destination node.
        to: NodeId,
        /// Destination media port (from the leg's SDP).
        to_port: u16,
        /// The unmodified datagram (payload shared, never copied).
        datagram: rtpcore::RtpDatagram,
    },
}

/// Aggregated PBX counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PbxStats {
    /// SIP messages received.
    pub sip_in: u64,
    /// SIP messages sent.
    pub sip_out: u64,
    /// Error (4xx/5xx) responses sent.
    pub sip_errors_sent: u64,
    /// RTP packets relayed.
    pub rtp_relayed: u64,
    /// RTP packets dropped (no session for the port).
    pub rtp_dropped: u64,
    /// INVITEs refused for lack of a channel.
    pub calls_blocked: u64,
    /// INVITEs refused by the per-user call policy.
    pub calls_policy_refused: u64,
    /// INVITEs shed by overload control (503 + Retry-After).
    pub calls_shed: u64,
    /// Crash faults this PBX has absorbed.
    pub crashes: u64,
}

/// Call bridge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallState {
    /// Outbound INVITE sent, waiting for the callee.
    Inviting,
    /// Callee ringing.
    Ringing,
    /// 200 OK relayed; waiting for/after ACK, media flowing.
    Answered,
    /// BYE relayed, waiting for the 200.
    TearingDown,
}

/// One leg of a bridged call.
#[derive(Debug, Clone)]
struct Leg {
    node: NodeId,
    /// Media port the endpoint advertised in its SDP (0 = not yet known).
    rtp_port: u16,
    /// PBX media port facing this leg (endpoints send RTP here).
    pbx_port: u16,
}

#[derive(Debug, Clone)]
struct Call {
    channel: ChannelId,
    state: CallState,
    caller: Leg,
    callee: Leg,
    /// The caller's original INVITE (responses to the caller derive from it).
    caller_invite: Request,
    /// Call-ID of the PBX-originated callee leg.
    callee_call_id: String,
    /// Which leg initiated teardown (true = caller sent the BYE).
    bye_from_caller: bool,
    record: CallRecord,
    /// To-tag the PBX uses on caller-facing responses.
    pbx_tag: String,
    /// Compact summary of the caller's SDP offer (four machine words;
    /// endpoint strings interned in the PBX's atom table). `None` when
    /// the INVITE carried no usable offer.
    caller_sdp: Option<SdpSummary>,
    /// The call's negotiated codec: the caller's offer at admission,
    /// replaced by the callee's answer when it arrives — what the
    /// caller-facing 200 advertises (no hardcoded PCMU).
    codec: SdpCodec,
}

/// The PBX.
pub struct Pbx {
    /// Configuration (public for inspection).
    pub config: PbxConfig,
    /// The channel pool (public: experiments read peak/occupancy).
    pub pool: ChannelPool,
    /// CPU model (public: experiments read utilisation).
    pub cpu: CpuModel,
    /// CDR journal.
    pub cdr: CdrLog,
    /// User directory ("LDAP").
    pub directory: Directory,
    /// Registrar bindings.
    pub registrar: Registrar,
    stats: PbxStats,
    active_per_user: FastMap<String, u32>,
    calls: Vec<Option<Call>>,
    by_caller_call_id: FastMap<String, usize>,
    by_callee_call_id: FastMap<String, usize>,
    by_pbx_port: FastMap<u16, (usize, bool)>, // port -> (call, faces_caller)
    next_port: u16,
    next_call_serial: u64,
    /// Overload-control hysteresis state: currently shedding?
    shedding: bool,
    /// Pluggable overload-control law (built from `config.overload_law`).
    law: Option<Box<dyn overload::OverloadControl>>,
    /// Last observed access-link media quality (loss fraction, jitter ms,
    /// one-way delay ms) — fed by the world's quality ticks, consumed by
    /// MOS-predictive admission. Zero until the first observation.
    link_quality: (f64, f64, f64),
    /// Per-instance digest nonce, derived once from the hostname (a real
    /// server rotates nonces; a deterministic constant suffices here and
    /// keeps the MD5 off the REGISTER hot path).
    nonce: String,
    /// Interner for SDP endpoint strings seen in offers/answers — after
    /// warmup every summary is allocation-free.
    sdp_atoms: AtomTable,
    /// Shared `o=` origin string for PBX-built SDP bodies ("asterisk").
    sdp_origin: Arc<str>,
    /// Shared `c=` connection string for PBX-built SDP bodies (hostname).
    sdp_host: Arc<str>,
}

const FIRST_MEDIA_PORT: u16 = 10_000;

impl Pbx {
    /// Build a PBX with the given configuration and subscriber directory.
    #[must_use]
    pub fn new(config: PbxConfig, directory: Directory) -> Self {
        let registrar = Registrar::new(config.registration_expiry);
        let pool = ChannelPool::new(config.channels);
        let nonce = format!(
            "nonce-{}",
            sipcore::auth::md5_hex(config.hostname.as_bytes())
        );
        let law = config.overload_law.map(ControlLaw::build);
        let sdp_host: Arc<str> = Arc::from(config.hostname.as_str());
        Pbx {
            config,
            pool,
            cpu: CpuModel::calibrated(),
            cdr: CdrLog::new(),
            directory,
            registrar,
            stats: PbxStats::default(),
            active_per_user: FastMap::default(),
            calls: Vec::new(),
            by_caller_call_id: FastMap::default(),
            by_callee_call_id: FastMap::default(),
            by_pbx_port: FastMap::default(),
            next_port: FIRST_MEDIA_PORT,
            next_call_serial: 0,
            shedding: false,
            law,
            link_quality: (0.0, 0.0, 0.0),
            nonce,
            sdp_atoms: AtomTable::new(),
            sdp_origin: Arc::from("asterisk"),
            sdp_host,
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> PbxStats {
        self.stats
    }

    /// Number of live bridged calls.
    #[must_use]
    pub fn active_calls(&self) -> usize {
        self.calls.iter().flatten().count()
    }

    /// Map a PBX-originated (callee-leg) Call-ID back to the caller-leg
    /// Call-ID of the same bridged call. Monitoring uses this to account
    /// both media directions to one call.
    #[must_use]
    pub fn peer_call_id(&self, callee_call_id: &str) -> Option<&str> {
        let idx = *self.by_callee_call_id.get(callee_call_id)?;
        self.calls[idx].as_ref()?.caller_invite.call_id()
    }

    /// The load fraction overload control watches: the worse of channel
    /// occupancy and the last completed CPU window.
    #[must_use]
    pub fn load_signal(&self) -> f64 {
        let occupancy = if self.config.channels == 0 {
            0.0
        } else {
            f64::from(self.pool.in_use()) / f64::from(self.config.channels)
        };
        occupancy.max(self.cpu.last_window_utilisation().unwrap_or(0.0))
    }

    /// The full signal set a pluggable control law observes: the legacy
    /// occupancy/CPU pair plus pool headroom and link media quality.
    #[must_use]
    pub fn load_signals(&self) -> LoadSignals {
        let occupancy = if self.config.channels == 0 {
            0.0
        } else {
            f64::from(self.pool.in_use()) / f64::from(self.config.channels)
        };
        let (link_loss, link_jitter_ms, link_delay_ms) = self.link_quality;
        LoadSignals {
            occupancy,
            cpu: self.cpu.last_window_utilisation().unwrap_or(0.0),
            free_channels: self.config.channels.saturating_sub(self.pool.in_use()),
            link_loss,
            link_jitter_ms,
            link_delay_ms,
        }
    }

    /// Feed the latest observed access-link media quality (from the
    /// world's monitor) to MOS-predictive admission control.
    pub fn observe_link_quality(&mut self, loss: f64, jitter_ms: f64, delay_ms: f64) {
        self.link_quality = (loss, jitter_ms, delay_ms);
    }

    /// True while overload control is actively shedding new INVITEs.
    #[must_use]
    pub fn is_shedding(&self) -> bool {
        self.shedding || self.law.as_ref().is_some_and(|l| l.is_shedding())
    }

    /// Crash fault: the Asterisk process dies and is restarted by its
    /// supervisor. All live calls drop (CDR `Failed` — the far ends hear
    /// silence then give up), the channel pool flushes, and the in-memory
    /// registrar location table is lost, so every endpoint must
    /// re-REGISTER before it is reachable again. Returns the number of
    /// calls that were dropped.
    pub fn crash(&mut self, now: SimTime) -> u32 {
        let mut dropped = 0u32;
        for idx in 0..self.calls.len() {
            if self.calls[idx].is_some() {
                self.close_call(now, idx, Disposition::Failed);
                dropped += 1;
            }
        }
        self.pool.flush(now);
        self.registrar.clear();
        self.by_caller_call_id.clear();
        self.by_callee_call_id.clear();
        self.by_pbx_port.clear();
        self.active_per_user.clear();
        self.shedding = false;
        if let Some(law) = self.law.as_mut() {
            law.on_crash();
        }
        self.stats.crashes += 1;
        dropped
    }

    /// Close the books at the end of an experiment: flush CPU windows and
    /// record still-open calls as in-progress.
    pub fn finish(&mut self, now: SimTime) {
        self.cpu.finish(now);
        for slot in &mut self.calls {
            if let Some(call) = slot.take() {
                let mut record = call.record;
                record.disposition = Disposition::InProgress;
                self.cdr.push(record);
            }
        }
        self.by_caller_call_id.clear();
        self.by_callee_call_id.clear();
        self.by_pbx_port.clear();
        self.active_per_user.clear();
    }

    // -- SIP entry point ---------------------------------------------------

    /// Handle one inbound SIP message.
    pub fn handle_sip(&mut self, now: SimTime, from: NodeId, msg: SipMessage) -> Vec<PbxAction> {
        self.stats.sip_in += 1;
        self.cpu.on_sip_message(now);

        match msg {
            SipMessage::Request(req) => match req.method {
                Method::Register => self.on_register(now, from, &req),
                Method::Invite => self.on_invite(now, from, req),
                Method::Ack => self.on_ack(now, &req),
                Method::Bye => self.on_bye(now, from, &req),
                Method::Cancel => self.on_cancel(now, &req),
                Method::Options => {
                    vec![self.reply(from, req.make_response(StatusCode::OK))]
                }
            },
            SipMessage::Response(resp) => self.on_response(now, resp),
        }
    }

    /// Handle one inbound RTP datagram addressed to PBX port `dst_port`.
    pub fn handle_rtp(
        &mut self,
        now: SimTime,
        dst_port: u16,
        datagram: rtpcore::RtpDatagram,
    ) -> Vec<PbxAction> {
        match self.relay_rtp(now, dst_port) {
            Some((to, to_port)) => vec![PbxAction::SendRtp {
                to,
                to_port,
                datagram,
            }],
            None => vec![],
        }
    }

    /// Route one inbound RTP datagram without touching its bytes: returns
    /// the destination `(node, port)` for the opposite leg, or `None` when
    /// the packet is dropped. This is the allocation-free relay fast path —
    /// the caller keeps holding the datagram and forwards it itself.
    pub fn relay_rtp(&mut self, now: SimTime, dst_port: u16) -> Option<(NodeId, u16)> {
        self.cpu.on_rtp_packet(now);
        let Some(&(idx, faces_caller)) = self.by_pbx_port.get(&dst_port) else {
            self.stats.rtp_dropped += 1;
            return None;
        };
        let Some(call) = self.calls[idx].as_ref() else {
            self.stats.rtp_dropped += 1;
            return None;
        };
        // Media arriving on the caller-facing port goes to the callee leg
        // and vice versa.
        let out_leg = if faces_caller {
            &call.callee
        } else {
            &call.caller
        };
        if out_leg.rtp_port == 0 {
            // Other side's SDP not seen yet (early media race): drop.
            self.stats.rtp_dropped += 1;
            return None;
        }
        self.stats.rtp_relayed += 1;
        Some((out_leg.node, out_leg.rtp_port))
    }

    // -- request handlers ---------------------------------------------------

    fn on_register(&mut self, now: SimTime, from: NodeId, req: &Request) -> Vec<PbxAction> {
        let auth = req.headers.get(&HeaderName::Authorization);

        // Digest credentials are accepted in either mode; when
        // `require_digest` is on they are the only way in.
        if let Some(creds) = auth.and_then(sipcore::auth::DigestCredentials::parse) {
            // `password_of` covers both materialized entries and the
            // synthetic population range (derived secrets, no stored rows).
            let password = self.directory.password_of(&creds.username);
            let ok = password.as_deref().is_some_and(|pw| {
                creds.realm == self.config.hostname
                    && creds.verify(pw, "REGISTER", self.digest_nonce())
            });
            if !ok {
                return vec![self.error_reply(from, req, StatusCode::FORBIDDEN)];
            }
            // The password already checked out; bind through the
            // registrar (which re-binds against the directory).
            let pw = password.expect("checked above");
            return match self.registrar.register(
                &mut self.directory,
                now,
                &creds.username,
                &pw,
                from,
            ) {
                RegisterOutcome::Ok => vec![self.reply(from, req.make_response(StatusCode::OK))],
                RegisterOutcome::AuthFailed => {
                    vec![self.error_reply(from, req, StatusCode::FORBIDDEN)]
                }
            };
        }

        if self.config.require_digest {
            // Challenge: 401 with a fresh-enough nonce.
            let challenge = sipcore::auth::DigestChallenge {
                realm: self.config.hostname.clone(),
                nonce: self.nonce.clone(),
            };
            let mut resp = req.make_response(StatusCode::UNAUTHORIZED);
            resp.headers
                .push(HeaderName::WwwAuthenticate, challenge.to_header_value());
            return vec![self.reply(from, resp)];
        }

        let (uid, password) = match auth.map(parse_simple_auth) {
            Some(Some(pair)) => pair,
            _ => {
                // No usable credentials: the 401 carries a digest
                // challenge even when digest is not *required*, so a
                // digest-capable client (the population churn path) can
                // complete REGISTER → 401 → REGISTER+digest in either
                // mode.
                let challenge = sipcore::auth::DigestChallenge {
                    realm: self.config.hostname.clone(),
                    nonce: self.nonce.clone(),
                };
                let mut resp = req.make_response(StatusCode::UNAUTHORIZED);
                resp.headers
                    .push(HeaderName::WwwAuthenticate, challenge.to_header_value());
                return vec![self.reply(from, resp)];
            }
        };
        match self
            .registrar
            .register(&mut self.directory, now, &uid, &password, from)
        {
            RegisterOutcome::Ok => vec![self.reply(from, req.make_response(StatusCode::OK))],
            RegisterOutcome::AuthFailed => {
                vec![self.error_reply(from, req, StatusCode::FORBIDDEN)]
            }
        }
    }

    /// The registrar's current digest nonce (cached at construction).
    fn digest_nonce(&self) -> &str {
        &self.nonce
    }

    fn on_invite(&mut self, now: SimTime, from: NodeId, req: Request) -> Vec<PbxAction> {
        let Some(call_id) = req.call_id().map(str::to_owned) else {
            return vec![self.error_reply(from, &req, StatusCode::BAD_REQUEST)];
        };
        // A second INVITE on a known caller Call-ID is either a
        // retransmission (absorb; the 100/180 path will have been
        // retransmitted by the network layer if needed) or a mid-dialog
        // re-INVITE renegotiating media — dispatch on CSeq and state.
        if let Some(&idx) = self.by_caller_call_id.get(&call_id) {
            return self.on_reinvite(from, idx, &req);
        }
        // Overload control: shed *new* work before spending any routing or
        // channel effort on it (that is the point of shedding). The legacy
        // inline watermarks are the reference path; a pluggable law from
        // the `overload` crate may additionally advertise feedback, which
        // rides on this call's 100 Trying when it is admitted.
        let mut admit_feedback: Option<Feedback> = None;
        if let Some(ctl) = self.config.overload {
            let load = self.load_signal();
            if self.shedding {
                if load <= ctl.low_watermark {
                    self.shedding = false;
                }
            } else if load >= ctl.high_watermark {
                self.shedding = true;
            }
            if self.shedding {
                self.stats.calls_shed += 1;
                let caller_aor = req
                    .headers
                    .get(&HeaderName::From)
                    .and_then(extract_user)
                    .unwrap_or_default();
                self.cdr.push(CallRecord {
                    call_id,
                    caller: caller_aor,
                    callee: req.uri.user.clone(),
                    start: now,
                    answered: None,
                    end: Some(now),
                    disposition: Disposition::Shed,
                });
                let mut resp = req.make_response(StatusCode::SERVICE_UNAVAILABLE);
                resp.headers.push(
                    HeaderName::RetryAfter,
                    format!("{}", ctl.retry_after.as_secs_f64().ceil() as u64),
                );
                return vec![self.reply(from, resp)];
            }
        } else if self.law.is_some() {
            let signals = self.load_signals();
            let decision = self
                .law
                .as_mut()
                .expect("law presence checked above")
                .on_invite(&signals);
            if decision.admit {
                admit_feedback = decision.feedback;
            } else {
                self.stats.calls_shed += 1;
                let caller_aor = req
                    .headers
                    .get(&HeaderName::From)
                    .and_then(extract_user)
                    .unwrap_or_default();
                self.cdr.push(CallRecord {
                    call_id,
                    caller: caller_aor,
                    callee: req.uri.user.clone(),
                    start: now,
                    answered: None,
                    end: Some(now),
                    disposition: Disposition::Shed,
                });
                let mut resp = req.make_response(StatusCode::SERVICE_UNAVAILABLE);
                let retry_after = decision
                    .retry_after
                    .unwrap_or_else(|| SimDuration::from_secs(2));
                resp.headers.push(
                    HeaderName::RetryAfter,
                    format!("{}", retry_after.as_secs_f64().ceil() as u64),
                );
                if let Some(fb) = decision.feedback {
                    resp.headers
                        .push(HeaderName::OverloadControl, fb.to_header_value());
                }
                return vec![self.reply(from, resp)];
            }
        }
        let caller_aor = req
            .headers
            .get(&HeaderName::From)
            .and_then(extract_user)
            .unwrap_or_default();
        let extension = req.uri.user.clone();
        let mut record = CallRecord {
            call_id: call_id.clone(),
            caller: caller_aor,
            callee: extension.clone(),
            start: now,
            answered: None,
            end: None,
            disposition: Disposition::Failed,
        };

        // Route the dialled extension.
        let callee_node = match self.config.dialplan.route(&extension) {
            Some(Route::LocalSubscriber) => {
                match self.registrar.lookup(now, &extension) {
                    Some(binding) => binding.node,
                    None if self.config.require_registration => {
                        record.end = Some(now);
                        self.cdr.push(record);
                        return vec![self.error_reply(from, &req, StatusCode::NOT_FOUND)];
                    }
                    None => from, // registration-less mode: loop back to sender's peer is meaningless, refuse
                }
            }
            Some(Route::Trunk(_)) | Some(Route::Deny) | None => {
                record.end = Some(now);
                self.cdr.push(record);
                return vec![self.error_reply(from, &req, StatusCode::NOT_FOUND)];
            }
        };

        // Call policy: per-user concurrent-call ceiling (paper §IV).
        if let Some(limit) = self.config.max_calls_per_user {
            let active = self
                .active_per_user
                .get(&record.caller)
                .copied()
                .unwrap_or(0);
            if active >= limit {
                self.stats.calls_policy_refused += 1;
                record.disposition = Disposition::PolicyRefused;
                record.end = Some(now);
                self.cdr.push(record);
                return vec![self.error_reply(from, &req, StatusCode::FORBIDDEN)];
            }
        }

        // Admission control: the finite channel pool.
        let Some(channel) = self.pool.allocate(now) else {
            self.stats.calls_blocked += 1;
            record.disposition = Disposition::Blocked;
            record.end = Some(now);
            self.cdr.push(record);
            return vec![self.error_reply(from, &req, StatusCode::BUSY_HERE)];
        };

        // Caller's media coordinates and codec from its SDP offer. A
        // structured `Body::Sdp` answers from its fields; a wire body gets
        // one lazy scan. Either way the summary is four machine words.
        let caller_sdp = SdpSummary::of_body(&req.body, &mut self.sdp_atoms);
        let caller_rtp_port = caller_sdp.map(|s| s.audio_port).unwrap_or(0);
        let offer_codec = caller_sdp.map(|s| s.codec).unwrap_or(SdpCodec::Pcmu);

        let serial = self.next_call_serial;
        self.next_call_serial += 1;
        let pbx_port_for_caller = self.alloc_port();
        let pbx_port_for_callee = self.alloc_port();
        let callee_call_id = format!("b2b-{serial}@{}", self.config.hostname);

        // Build the PBX-originated INVITE towards the callee, offering the
        // PBX's own media port (the relay behaviour of Asterisk). The body
        // stays structured — serialization happens only if this message
        // crosses a byte-materializing boundary.
        let sdp = SdpBody::new(
            Arc::clone(&self.sdp_origin),
            Arc::clone(&self.sdp_host),
            pbx_port_for_callee,
            offer_codec,
        );
        let mut via = String::with_capacity(64);
        write_via_args(
            &mut via,
            &self.config.hostname,
            5060,
            format_args!("z9hG4bKpbx{serial}"),
        );
        let out_invite = Request::new(
            Method::Invite,
            sipcore::SipUri::new(&extension, &self.config.hostname),
        )
        .header(HeaderName::Via, via)
        .header(
            HeaderName::From,
            format!(
                "<sip:{}@{}>;tag=pbxout{serial}",
                record.caller, self.config.hostname
            ),
        )
        .header(
            HeaderName::To,
            format!("<sip:{extension}@{}>", self.config.hostname),
        )
        .header(HeaderName::CallId, callee_call_id.clone())
        .header(HeaderName::CSeq, "1 INVITE")
        .header(HeaderName::MaxForwards, "69")
        .header(HeaderName::UserAgent, "pbx-sim (Asterisk-compatible B2BUA)")
        .with_sdp(sdp);

        *self
            .active_per_user
            .entry(record.caller.clone())
            .or_insert(0) += 1;
        let idx = self.calls.len();
        let pbx_tag = format!("pbxuas{serial}");
        // Build the 100 Trying before the INVITE moves into the call slot
        // (the stored original serves every later caller-facing response).
        let mut trying = req.make_response(StatusCode::TRYING);
        if let Some(fb) = admit_feedback {
            trying
                .headers
                .push(HeaderName::OverloadControl, fb.to_header_value());
        }
        self.calls.push(Some(Call {
            channel,
            state: CallState::Inviting,
            caller: Leg {
                node: from,
                rtp_port: caller_rtp_port,
                pbx_port: pbx_port_for_caller,
            },
            callee: Leg {
                node: callee_node,
                rtp_port: 0,
                pbx_port: pbx_port_for_callee,
            },
            caller_invite: req,
            callee_call_id: callee_call_id.clone(),
            bye_from_caller: true,
            record,
            pbx_tag,
            caller_sdp,
            codec: offer_codec,
        }));
        self.by_caller_call_id.insert(call_id, idx);
        self.by_callee_call_id.insert(callee_call_id, idx);
        self.by_pbx_port.insert(pbx_port_for_caller, (idx, true));
        self.by_pbx_port.insert(pbx_port_for_callee, (idx, false));

        // 100 Trying to the caller + INVITE onward (the Fig. 2 ladder).
        vec![
            self.reply(from, trying),
            self.send(callee_node, out_invite.into()),
        ]
    }

    /// Second INVITE on a live caller Call-ID. A genuine retransmission
    /// (CSeq not newer, or the call not yet answered) is absorbed. A
    /// re-INVITE on an answered call renegotiates media (RFC 3261 §14):
    /// the PBX relearns the caller's RTP port/codec from the fresh offer —
    /// the endpoint may have moved its media socket — and answers 200 with
    /// its own caller-facing SDP; the callee leg is untouched because the
    /// PBX relays media either way.
    fn on_reinvite(&mut self, from: NodeId, idx: usize, req: &Request) -> Vec<PbxAction> {
        let Some(call) = self.calls[idx].as_mut() else {
            return vec![];
        };
        let old_cseq = call.caller_invite.cseq_number().unwrap_or(1);
        let new_cseq = req.cseq_number().unwrap_or(0);
        if call.state != CallState::Answered || new_cseq <= old_cseq {
            return vec![];
        }
        if let Some(summary) = SdpSummary::of_body(&req.body, &mut self.sdp_atoms) {
            call.caller.rtp_port = summary.audio_port;
            call.caller_sdp = Some(summary);
            call.codec = summary.codec;
        }
        // Later responses (and the BYE 200) must echo the current CSeq.
        call.caller_invite = req.clone();
        let pbx_port = call.caller.pbx_port;
        let codec = call.codec;
        let ok = self
            .caller_response(idx, StatusCode::OK)
            .with_sdp(SdpBody::new(
                Arc::clone(&self.sdp_origin),
                Arc::clone(&self.sdp_host),
                pbx_port,
                codec,
            ));
        vec![self.reply(from, ok)]
    }

    fn on_ack(&mut self, _now: SimTime, req: &Request) -> Vec<PbxAction> {
        let Some(idx) = req
            .call_id()
            .and_then(|c| self.by_caller_call_id.get(c))
            .copied()
        else {
            return vec![]; // ACK for an errored/unknown call: absorb
        };
        let Some(call) = self.calls[idx].as_mut() else {
            return vec![];
        };
        // Forward the ACK on the callee leg to complete its handshake.
        let mut via = String::with_capacity(64);
        write_via_args(
            &mut via,
            &self.config.hostname,
            5060,
            format_args!("z9hG4bKpbxack{idx}"),
        );
        let ack = Request::new(
            Method::Ack,
            sipcore::SipUri::new(&call.record.callee, &self.config.hostname),
        )
        .header(HeaderName::Via, via)
        .header(HeaderName::CallId, call.callee_call_id.clone())
        .header(HeaderName::CSeq, "1 ACK")
        .header(
            HeaderName::From,
            format!(
                "<sip:{}@{}>;tag=pbxout",
                call.record.caller, self.config.hostname
            ),
        )
        .header(
            HeaderName::To,
            format!("<sip:{}@{}>", call.record.callee, self.config.hostname),
        );
        let to = call.callee.node;
        vec![self.send(to, ack.into())]
    }

    fn on_bye(&mut self, _now: SimTime, from: NodeId, req: &Request) -> Vec<PbxAction> {
        let Some(cid) = req.call_id() else {
            return vec![self.error_reply(from, req, StatusCode::BAD_REQUEST)];
        };
        // A BYE can arrive on either leg.
        let (idx, from_caller) = if let Some(&i) = self.by_caller_call_id.get(cid) {
            (i, true)
        } else if let Some(&i) = self.by_callee_call_id.get(cid) {
            (i, false)
        } else {
            // Unknown call (already gone): answer 200 to stop retransmits.
            return vec![self.reply(from, req.make_response(StatusCode::OK))];
        };
        let Some(call) = self.calls[idx].as_mut() else {
            return vec![self.reply(from, req.make_response(StatusCode::OK))];
        };
        call.state = CallState::TearingDown;
        call.bye_from_caller = from_caller;
        // Forward the BYE to the other leg (Fig. 2: BYE is forwarded, the
        // 200 comes back through us).
        let (other_node, other_call_id) = if from_caller {
            (call.callee.node, call.callee_call_id.clone())
        } else {
            (
                call.caller.node,
                call.caller_invite.call_id().unwrap_or("").to_owned(),
            )
        };
        let mut via = String::with_capacity(64);
        write_via_args(
            &mut via,
            &self.config.hostname,
            5060,
            format_args!("z9hG4bKpbxbye{idx}"),
        );
        let bye = Request::new(
            Method::Bye,
            sipcore::SipUri::new(
                if from_caller {
                    &call.record.callee
                } else {
                    &call.record.caller
                },
                &self.config.hostname,
            ),
        )
        .header(HeaderName::Via, via)
        .header(HeaderName::CallId, other_call_id)
        .header(HeaderName::CSeq, "2 BYE")
        .header(
            HeaderName::From,
            format!("<sip:pbx@{}>;tag=pbxbye", self.config.hostname),
        )
        .header(HeaderName::To, "<sip:peer>".to_owned());
        vec![self.send(other_node, bye.into())]
    }

    fn on_cancel(&mut self, now: SimTime, req: &Request) -> Vec<PbxAction> {
        let Some(idx) = req
            .call_id()
            .and_then(|c| self.by_caller_call_id.get(c))
            .copied()
        else {
            return vec![];
        };
        let Some(call) = self.calls[idx].as_ref() else {
            return vec![];
        };
        if call.state == CallState::Answered {
            return vec![]; // too late to cancel
        }
        let caller_node = call.caller.node;
        let callee_node = call.callee.node;
        let callee_call_id = call.callee_call_id.clone();
        // 200 for the CANCEL, 487 for the INVITE, CANCEL onward.
        let ok = req.make_response(StatusCode::OK);
        let invite_487 = self.caller_response(idx, StatusCode::REQUEST_TERMINATED);
        let cancel_out = Request::new(
            Method::Cancel,
            sipcore::SipUri::new("peer", &self.config.hostname),
        )
        .header(HeaderName::CallId, callee_call_id)
        .header(HeaderName::CSeq, "1 CANCEL");
        self.close_call(now, idx, Disposition::NoAnswer);
        vec![
            self.reply(caller_node, ok),
            self.reply_error_counted(caller_node, invite_487),
            self.send(callee_node, cancel_out.into()),
        ]
    }

    // -- response handling ---------------------------------------------------

    fn on_response(&mut self, now: SimTime, resp: Response) -> Vec<PbxAction> {
        let Some(cid) = resp.call_id() else {
            return vec![];
        };
        // Responses to PBX-originated requests arrive on the callee leg...
        if let Some(idx) = self.by_callee_call_id.get(cid).copied() {
            return self.on_callee_response(now, idx, resp);
        }
        // ...or are 200-to-BYE on the caller leg when the callee hung up.
        if let Some(idx) = self.by_caller_call_id.get(cid).copied() {
            if resp.cseq_method() == Some(Method::Bye) && resp.status.is_final() {
                return self.on_bye_confirmed(now, idx);
            }
        }
        vec![]
    }

    fn on_callee_response(&mut self, now: SimTime, idx: usize, resp: Response) -> Vec<PbxAction> {
        let Some(call) = self.calls[idx].as_mut() else {
            return vec![];
        };
        match resp.cseq_method() {
            Some(Method::Invite) => {
                if resp.status == StatusCode::RINGING {
                    call.state = CallState::Ringing;
                    let caller_node = call.caller.node;
                    let fwd = self.caller_response(idx, StatusCode::RINGING);
                    vec![self.reply(caller_node, fwd)]
                } else if resp.status.is_success() {
                    // Callee answered: learn its media port and the codec
                    // it accepted, bridge, relay a 200 whose caller-facing
                    // SDP advertises the *negotiated* codec (not a
                    // hardcoded PCMU — an A-law call stays A-law end to
                    // end).
                    if let Some(port) = resp.body.sdp_audio_port() {
                        call.callee.rtp_port = port;
                    }
                    if let Some(codec) = resp.body.sdp_codec() {
                        call.codec = codec;
                    }
                    call.state = CallState::Answered;
                    call.record.answered = Some(now);
                    let caller_node = call.caller.node;
                    let pbx_port = call.caller.pbx_port;
                    let codec = call.codec;
                    let fwd = self
                        .caller_response(idx, StatusCode::OK)
                        .with_sdp(SdpBody::new(
                            Arc::clone(&self.sdp_origin),
                            Arc::clone(&self.sdp_host),
                            pbx_port,
                            codec,
                        ));
                    vec![self.reply(caller_node, fwd)]
                } else if resp.status.is_error() {
                    // Callee refused: ACK the error (non-2xx), relay it,
                    // tear down.
                    let caller_node = call.caller.node;
                    let callee_node = call.callee.node;
                    let callee_call_id = call.callee_call_id.clone();
                    let status = resp.status;
                    let fwd = self.caller_response(idx, status);
                    self.close_call(now, idx, Disposition::Failed);
                    let ack = Request::new(
                        Method::Ack,
                        sipcore::SipUri::new("peer", &self.config.hostname),
                    )
                    .header(HeaderName::CallId, callee_call_id)
                    .header(HeaderName::CSeq, "1 ACK");
                    vec![
                        self.send(callee_node, ack.into()),
                        self.reply_error_counted(caller_node, fwd),
                    ]
                } else {
                    vec![] // other provisionals absorbed
                }
            }
            Some(Method::Bye) if resp.status.is_final() => self.on_bye_confirmed(now, idx),
            _ => vec![],
        }
    }

    /// The far leg confirmed our forwarded BYE: send the 200 back to the
    /// leg that hung up and close the call.
    fn on_bye_confirmed(&mut self, now: SimTime, idx: usize) -> Vec<PbxAction> {
        let Some(call) = self.calls[idx].as_ref() else {
            return vec![];
        };
        let (hangup_node, ok) = if call.bye_from_caller {
            // Caller hung up; 200 goes back to the caller leg.
            let mut ok = call.caller_invite.make_response(StatusCode::OK);
            ok.headers.set(HeaderName::CSeq, "2 BYE");
            let to = ok
                .headers
                .get(&HeaderName::To)
                .unwrap_or("<sip:peer>")
                .to_owned();
            ok.headers.set(HeaderName::To, with_tag(&to, &call.pbx_tag));
            (call.caller.node, ok)
        } else {
            let ok = Response::new(StatusCode::OK)
                .header(HeaderName::CallId, call.callee_call_id.clone())
                .header(HeaderName::CSeq, "2 BYE");
            (call.callee.node, ok)
        };
        self.close_call(now, idx, Disposition::Answered);
        vec![self.reply(hangup_node, ok)]
    }

    // -- helpers ---------------------------------------------------------

    /// Build a caller-facing response derived from the stored INVITE.
    fn caller_response(&mut self, idx: usize, status: StatusCode) -> Response {
        let call = self.calls[idx].as_ref().expect("live call");
        let mut resp = call.caller_invite.make_response(status);
        let to = resp
            .headers
            .get(&HeaderName::To)
            .unwrap_or("<sip:peer>")
            .to_owned();
        if tag_of(&to).is_none() {
            resp.headers
                .set(HeaderName::To, with_tag(&to, &call.pbx_tag));
        }
        resp.headers.push(
            HeaderName::Contact,
            format!("<sip:{}:5060>", self.config.hostname),
        );
        resp
    }

    fn close_call(&mut self, now: SimTime, idx: usize, disposition: Disposition) {
        if let Some(call) = self.calls[idx].take() {
            self.pool.release(now, call.channel);
            if let Some(n) = self.active_per_user.get_mut(&call.record.caller) {
                *n = n.saturating_sub(1);
            }
            self.by_pbx_port.remove(&call.caller.pbx_port);
            self.by_pbx_port.remove(&call.callee.pbx_port);
            if let Some(cid) = call.caller_invite.call_id() {
                self.by_caller_call_id.remove(cid);
            }
            self.by_callee_call_id.remove(&call.callee_call_id);
            let mut record = call.record;
            record.end = Some(now);
            record.disposition = disposition;
            self.cdr.push(record);
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self
            .next_port
            .checked_add(2)
            .expect("media ports exhausted");
        p
    }

    fn send(&mut self, to: NodeId, msg: SipMessage) -> PbxAction {
        self.stats.sip_out += 1;
        PbxAction::SendSip { to, msg }
    }

    fn reply(&mut self, to: NodeId, resp: Response) -> PbxAction {
        if resp.status.is_error() {
            self.stats.sip_errors_sent += 1;
        }
        self.stats.sip_out += 1;
        PbxAction::SendSip {
            to,
            msg: resp.into(),
        }
    }

    fn reply_error_counted(&mut self, to: NodeId, resp: Response) -> PbxAction {
        self.reply(to, resp)
    }

    fn error_reply(&mut self, to: NodeId, req: &Request, status: StatusCode) -> PbxAction {
        self.reply(to, req.make_response(status))
    }
}

/// Parse `Simple <uid> <password>` authorization values.
fn parse_simple_auth(value: &str) -> Option<(String, String)> {
    let mut parts = value.split_whitespace();
    if parts.next()? != "Simple" {
        return None;
    }
    let uid = parts.next()?.to_owned();
    let password = parts.next()?.to_owned();
    Some((uid, password))
}

/// Extract the user part from a From/To header value.
fn extract_user(value: &str) -> Option<String> {
    let start = value.find("sip:")? + 4;
    let rest = &value[start..];
    let end = rest.find('@')?;
    Some(rest[..end].to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipcore::message::format_via;
    use sipcore::sdp::SessionDescription;

    const CALLER_NODE: NodeId = NodeId(1);
    const CALLEE_NODE: NodeId = NodeId(2);
    const PBX_NODE: NodeId = NodeId(3);

    fn pbx_with_users() -> Pbx {
        let dir = Directory::with_subscribers(1000, 100);
        let mut pbx = Pbx::new(PbxConfig::evaluation_default(PBX_NODE), dir);
        // Register caller 1001 at node 1 and callee 1002 at node 2.
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            let req = register_request(uid);
            let acts = pbx.handle_sip(SimTime::ZERO, node, req.into());
            assert!(matches!(
                &acts[0],
                PbxAction::SendSip { msg: SipMessage::Response(r), .. } if r.status == StatusCode::OK
            ));
        }
        pbx
    }

    fn register_request(uid: &str) -> Request {
        Request::new(Method::Register, sipcore::SipUri::server("pbx.unb.br"))
            .header(HeaderName::Via, format_via("host", 5060, "z9hG4bKreg"))
            .header(HeaderName::From, format!("<sip:{uid}@pbx.unb.br>;tag=r"))
            .header(HeaderName::To, format!("<sip:{uid}@pbx.unb.br>"))
            .header(HeaderName::CallId, format!("reg-{uid}"))
            .header(HeaderName::CSeq, "1 REGISTER")
            .header(HeaderName::Authorization, format!("Simple {uid} pw-{uid}"))
    }

    fn invite(call_id: &str, from_uid: &str, to_ext: &str, rtp_port: u16) -> Request {
        invite_offering(call_id, from_uid, to_ext, rtp_port, SdpCodec::Pcmu)
    }

    fn invite_offering(
        call_id: &str,
        from_uid: &str,
        to_ext: &str,
        rtp_port: u16,
        codec: SdpCodec,
    ) -> Request {
        let sdp = SessionDescription::new(from_uid, "10.0.0.1", rtp_port, codec);
        Request::new(Method::Invite, sipcore::SipUri::new(to_ext, "pbx.unb.br"))
            .header(
                HeaderName::Via,
                format_via("10.0.0.1", 5060, &format!("z9hG4bK{call_id}")),
            )
            .header(
                HeaderName::From,
                format!("<sip:{from_uid}@pbx.unb.br>;tag=c{call_id}"),
            )
            .header(HeaderName::To, format!("<sip:{to_ext}@pbx.unb.br>"))
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "1 INVITE")
            .with_body("application/sdp", sdp.to_body())
    }

    fn sip_of(a: &PbxAction) -> &SipMessage {
        match a {
            PbxAction::SendSip { msg, .. } => msg,
            other => panic!("expected SIP action, got {other:?}"),
        }
    }

    /// Drive a full call to the answered state; returns (pbx, callee 200's
    /// SDP port facing caller, callee-facing pbx port).
    fn establish_call(pbx: &mut Pbx, call_id: &str) -> (u16, u16) {
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite(call_id, "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2, "100 Trying + forwarded INVITE");
        let trying = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(trying.status, StatusCode::TRYING);
        let fwd_invite = sip_of(&acts[1]).as_request().unwrap().clone();
        assert_eq!(fwd_invite.method, Method::Invite);
        let out_sdp = SessionDescription::parse(&fwd_invite.body.to_vec()).unwrap();
        assert!(
            out_sdp.audio_port >= FIRST_MEDIA_PORT,
            "PBX offers its own media port"
        );

        // Callee rings then answers with its SDP (port 7000).
        let ringing = fwd_invite.make_response(StatusCode::RINGING);
        let acts = pbx.handle_sip(SimTime::from_secs(2), CALLEE_NODE, ringing.into());
        assert_eq!(acts.len(), 1);
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::RINGING
        );

        let mut ok = fwd_invite.make_response(StatusCode::OK);
        let answer =
            SessionDescription::new("1002", "10.0.0.2", 7000, sipcore::sdp::SdpCodec::Pcmu);
        ok = ok.with_body("application/sdp", answer.to_body());
        let acts = pbx.handle_sip(SimTime::from_secs(3), CALLEE_NODE, ok.into());
        assert_eq!(acts.len(), 1);
        let fwd_ok = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(fwd_ok.status, StatusCode::OK);
        let caller_facing = SessionDescription::parse(&fwd_ok.body.to_vec()).unwrap();

        // Caller ACKs; PBX forwards it to the callee.
        let ack = Request::new(Method::Ack, sipcore::SipUri::new("1002", "pbx.unb.br"))
            .header(HeaderName::CallId, call_id.to_owned())
            .header(HeaderName::CSeq, "1 ACK");
        let acts = pbx.handle_sip(SimTime::from_secs(3), CALLER_NODE, ack.into());
        assert_eq!(acts.len(), 1);
        assert_eq!(sip_of(&acts[0]).as_request().unwrap().method, Method::Ack);

        (caller_facing.audio_port, out_sdp.audio_port)
    }

    /// Satellite of the SDP fast path: an A-law call stays A-law on both
    /// legs — the caller-facing 200 advertises the codec the callee
    /// accepted, not a hardcoded PCMU.
    #[test]
    fn negotiated_codec_survives_to_caller_facing_answer() {
        let mut pbx = pbx_with_users();
        let inv = invite_offering("alaw", "1001", "1002", 6000, SdpCodec::Pcma);
        let acts = pbx.handle_sip(SimTime::from_secs(1), CALLER_NODE, inv.into());
        let fwd_invite = sip_of(&acts[1]).as_request().unwrap().clone();
        assert_eq!(
            fwd_invite.body.sdp_codec(),
            Some(SdpCodec::Pcma),
            "offer codec relayed to the callee leg"
        );

        let ok = fwd_invite
            .make_response(StatusCode::OK)
            .with_sdp(SdpBody::new("1002", "10.0.0.2", 7000, SdpCodec::Pcma));
        let acts = pbx.handle_sip(SimTime::from_secs(2), CALLEE_NODE, ok.into());
        let fwd_ok = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(fwd_ok.status, StatusCode::OK);
        assert_eq!(
            fwd_ok.body.sdp_codec(),
            Some(SdpCodec::Pcma),
            "caller-facing answer carries the negotiated codec"
        );
    }

    /// A mid-dialog re-INVITE (same Call-ID, higher CSeq) relearns the
    /// caller's media port; a plain retransmission is still absorbed.
    #[test]
    fn reinvite_relearns_caller_media_port() {
        let mut pbx = pbx_with_users();
        let (_, callee_facing_port) = establish_call(&mut pbx, "re1");
        assert_eq!(
            pbx.relay_rtp(SimTime::from_secs(4), callee_facing_port),
            Some((CALLER_NODE, 6000)),
            "media relays to the original caller port"
        );

        // Retransmitted INVITE (same CSeq): absorbed, nothing sent.
        let retrans = invite("re1", "1001", "1002", 6000);
        assert!(pbx
            .handle_sip(SimTime::from_secs(4), CALLER_NODE, retrans.into())
            .is_empty());

        // Re-INVITE with a higher CSeq moving media to port 6400.
        let mut re = invite("re1", "1001", "1002", 6400);
        re.headers.set(HeaderName::CSeq, "2 INVITE");
        let acts = pbx.handle_sip(SimTime::from_secs(5), CALLER_NODE, re.into());
        assert_eq!(acts.len(), 1, "200 OK straight back, no callee traffic");
        let ok = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(ok.status, StatusCode::OK);
        assert_eq!(ok.cseq_number(), Some(2));
        assert!(
            ok.body.sdp_audio_port().is_some(),
            "200 re-offers the PBX's caller-facing media port"
        );
        assert_eq!(
            pbx.relay_rtp(SimTime::from_secs(6), callee_facing_port),
            Some((CALLER_NODE, 6400)),
            "media now relays to the relearned port"
        );
    }

    #[test]
    fn fig2_ladder_message_counts() {
        let mut pbx = pbx_with_users();
        let base_in = pbx.stats().sip_in;
        let base_out = pbx.stats().sip_out;
        establish_call(&mut pbx, "ladder");
        // Teardown: caller BYE -> forwarded; callee 200 -> forwarded.
        let bye = Request::new(Method::Bye, sipcore::SipUri::new("1002", "pbx.unb.br"))
            .header(HeaderName::CallId, "ladder".to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        let acts = pbx.handle_sip(SimTime::from_secs(120), CALLER_NODE, bye.into());
        let fwd_bye = sip_of(&acts[0]).as_request().unwrap().clone();
        assert_eq!(fwd_bye.method, Method::Bye);
        let ok = fwd_bye.make_response(StatusCode::OK);
        let acts = pbx.handle_sip(SimTime::from_secs(120), CALLEE_NODE, ok.into());
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::OK
        );

        // Fig. 2: the PBX receives 6 messages (INVITE, 180, 200, ACK, BYE,
        // 200-BYE — the 100 is generated, not received... from the PBX's
        // perspective: in = INVITE, 180, 200, ACK, BYE, 200) and sends 7
        // (100, INVITE, 180, 200, ACK, BYE, 200).
        assert_eq!(pbx.stats().sip_in - base_in, 6);
        assert_eq!(pbx.stats().sip_out - base_out, 7);
        // 13 total messages crossed the wire: 6 + 7.
        assert_eq!(
            pbx.stats().sip_in - base_in + pbx.stats().sip_out - base_out,
            13
        );
    }

    #[test]
    fn answered_call_produces_cdr_with_billsec() {
        let mut pbx = pbx_with_users();
        establish_call(&mut pbx, "cdr-test");
        let bye = Request::new(Method::Bye, sipcore::SipUri::new("1002", "pbx.unb.br"))
            .header(HeaderName::CallId, "cdr-test".to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        let acts = pbx.handle_sip(SimTime::from_secs(123), CALLER_NODE, bye.into());
        let fwd_bye = sip_of(&acts[0]).as_request().unwrap().clone();
        pbx.handle_sip(
            SimTime::from_secs(123),
            CALLEE_NODE,
            fwd_bye.make_response(StatusCode::OK).into(),
        );
        assert_eq!(pbx.cdr.total(), 1);
        let rec = &pbx.cdr.records()[0];
        assert_eq!(rec.disposition, Disposition::Answered);
        assert!(
            (rec.billsec() - 120.0).abs() < 1e-9,
            "answered t=3, ended t=123"
        );
        assert_eq!(rec.caller, "1001");
        assert_eq!(rec.callee, "1002");
        assert_eq!(pbx.active_calls(), 0);
        assert_eq!(pbx.pool.in_use(), 0, "channel released");
    }

    fn test_datagram(seq: u16) -> rtpcore::RtpDatagram {
        rtpcore::RtpDatagram {
            header: rtpcore::RtpHeader {
                marker: false,
                payload_type: 0,
                sequence: seq,
                timestamp: 0,
                ssrc: 1,
            },
            payload: vec![0u8; 160].into(),
        }
    }

    #[test]
    fn rtp_is_relayed_between_legs() {
        let mut pbx = pbx_with_users();
        let (caller_facing_port, callee_facing_port) = establish_call(&mut pbx, "media");
        // Caller sends RTP to the PBX's caller-facing port; it must come
        // out towards the callee's advertised port 7000.
        let d1 = test_datagram(1);
        let acts = pbx.handle_rtp(SimTime::from_secs(4), caller_facing_port, d1.clone());
        assert_eq!(
            acts,
            vec![PbxAction::SendRtp {
                to: CALLEE_NODE,
                to_port: 7000,
                datagram: d1.clone(),
            }]
        );
        // The relayed payload is the caller's buffer, not a copy.
        match &acts[0] {
            PbxAction::SendRtp { datagram, .. } => {
                assert!(std::sync::Arc::ptr_eq(&datagram.payload, &d1.payload));
            }
            other => panic!("unexpected action {other:?}"),
        }
        // Callee's media flows back to the caller's port 6000.
        let d2 = test_datagram(2);
        let acts = pbx.handle_rtp(SimTime::from_secs(4), callee_facing_port, d2.clone());
        assert_eq!(
            acts,
            vec![PbxAction::SendRtp {
                to: CALLER_NODE,
                to_port: 6000,
                datagram: d2,
            }]
        );
        assert_eq!(pbx.stats().rtp_relayed, 2);
        assert_eq!(pbx.stats().rtp_dropped, 0);
        // The route-only fast path agrees with handle_rtp.
        assert_eq!(
            pbx.relay_rtp(SimTime::from_secs(5), caller_facing_port),
            Some((CALLEE_NODE, 7000))
        );
        assert_eq!(pbx.stats().rtp_relayed, 3);
    }

    #[test]
    fn rtp_to_unknown_port_is_dropped() {
        let mut pbx = pbx_with_users();
        let acts = pbx.handle_rtp(SimTime::ZERO, 40_000, test_datagram(1));
        assert!(acts.is_empty());
        assert_eq!(pbx.stats().rtp_dropped, 1);
        assert_eq!(pbx.relay_rtp(SimTime::ZERO, 40_000), None);
        assert_eq!(pbx.stats().rtp_dropped, 2);
    }

    #[test]
    fn channel_exhaustion_blocks_with_486() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.channels = 1;
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        // First call occupies the only channel.
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("c1", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2);
        // Second call is refused with 486.
        let acts = pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("c2", "1001", "1002", 6002).into(),
        );
        assert_eq!(acts.len(), 1);
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::BUSY_HERE);
        assert_eq!(pbx.stats().calls_blocked, 1);
        assert_eq!(pbx.stats().sip_errors_sent, 1);
        assert_eq!(pbx.cdr.count(Disposition::Blocked), 1);
        assert!(
            (pbx.cdr.blocking_probability() - 1.0).abs() < 1e-12,
            "1 of 1 completed attempts blocked so far"
        );
    }

    #[test]
    fn unknown_extension_gets_404() {
        let mut pbx = pbx_with_users();
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("x", "1001", "7777", 6000).into(),
        );
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND, "7777 never registered");
        assert_eq!(pbx.cdr.count(Disposition::Failed), 1);
        assert_eq!(pbx.pool.in_use(), 0, "no channel leaked");
    }

    #[test]
    fn non_numeric_uri_is_rejected_by_dialplan() {
        let mut pbx = pbx_with_users();
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("y", "1001", "alice", 6000).into(),
        );
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn register_with_bad_password_forbidden() {
        let dir = Directory::with_subscribers(1000, 10);
        let mut pbx = Pbx::new(PbxConfig::evaluation_default(PBX_NODE), dir);
        let mut req = register_request("1001");
        req.headers
            .set(HeaderName::Authorization, "Simple 1001 wrong");
        let acts = pbx.handle_sip(SimTime::ZERO, CALLER_NODE, req.into());
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
        // Missing auth entirely -> 401.
        let mut req = register_request("1001");
        req.headers.remove_first(&HeaderName::Authorization);
        let acts = pbx.handle_sip(SimTime::ZERO, CALLER_NODE, req.into());
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::UNAUTHORIZED
        );
    }

    #[test]
    fn callee_busy_is_relayed_and_cleaned_up() {
        let mut pbx = pbx_with_users();
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("busy", "1001", "1002", 6000).into(),
        );
        let fwd_invite = sip_of(&acts[1]).as_request().unwrap().clone();
        let busy = fwd_invite.make_response(StatusCode::BUSY_HERE);
        let acts = pbx.handle_sip(SimTime::from_secs(2), CALLEE_NODE, busy.into());
        // ACK towards callee + relayed 486 towards caller.
        assert_eq!(acts.len(), 2);
        assert_eq!(sip_of(&acts[0]).as_request().unwrap().method, Method::Ack);
        assert_eq!(
            sip_of(&acts[1]).as_response().unwrap().status,
            StatusCode::BUSY_HERE
        );
        assert_eq!(pbx.pool.in_use(), 0);
        assert_eq!(pbx.cdr.count(Disposition::Failed), 1);
    }

    #[test]
    fn cancel_before_answer() {
        let mut pbx = pbx_with_users();
        pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("cx", "1001", "1002", 6000).into(),
        );
        let cancel = Request::new(Method::Cancel, sipcore::SipUri::new("1002", "pbx.unb.br"))
            .header(HeaderName::CallId, "cx".to_owned())
            .header(HeaderName::CSeq, "1 CANCEL");
        let acts = pbx.handle_sip(SimTime::from_secs(2), CALLER_NODE, cancel.into());
        assert_eq!(acts.len(), 3, "200-CANCEL, 487-INVITE, CANCEL onward");
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::OK
        );
        assert_eq!(
            sip_of(&acts[1]).as_response().unwrap().status,
            StatusCode::REQUEST_TERMINATED
        );
        assert_eq!(pbx.cdr.count(Disposition::NoAnswer), 1);
        assert_eq!(pbx.pool.in_use(), 0);
    }

    #[test]
    fn callee_can_hang_up_too() {
        let mut pbx = pbx_with_users();
        establish_call(&mut pbx, "chu");
        // The callee leg's call-id is the b2b one.
        let callee_cid = "b2b-0@pbx.unb.br";
        let bye = Request::new(Method::Bye, sipcore::SipUri::new("1001", "pbx.unb.br"))
            .header(HeaderName::CallId, callee_cid.to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        let acts = pbx.handle_sip(SimTime::from_secs(100), CALLEE_NODE, bye.into());
        let fwd = sip_of(&acts[0]).as_request().unwrap().clone();
        assert_eq!(fwd.method, Method::Bye);
        // Caller confirms.
        let acts = pbx.handle_sip(
            SimTime::from_secs(100),
            CALLER_NODE,
            fwd.make_response(StatusCode::OK).into(),
        );
        assert_eq!(acts.len(), 1, "200 back to the callee");
        assert_eq!(pbx.cdr.count(Disposition::Answered), 1);
        assert_eq!(pbx.pool.in_use(), 0);
    }

    #[test]
    fn retransmitted_invite_absorbed() {
        let mut pbx = pbx_with_users();
        let inv = invite("retx", "1001", "1002", 6000);
        let first = pbx.handle_sip(SimTime::from_secs(1), CALLER_NODE, inv.clone().into());
        assert_eq!(first.len(), 2);
        let second = pbx.handle_sip(SimTime::from_secs(1), CALLER_NODE, inv.into());
        assert!(second.is_empty(), "no duplicate call created");
        assert_eq!(pbx.pool.in_use(), 1);
    }

    #[test]
    fn finish_records_in_progress_calls() {
        let mut pbx = pbx_with_users();
        establish_call(&mut pbx, "open-ended");
        pbx.finish(SimTime::from_secs(200));
        assert_eq!(pbx.cdr.count(Disposition::InProgress), 1);
        assert_eq!(pbx.active_calls(), 0);
    }

    #[test]
    fn peer_call_id_maps_legs() {
        let mut pbx = pbx_with_users();
        establish_call(&mut pbx, "legmap");
        assert_eq!(pbx.peer_call_id("b2b-0@pbx.unb.br"), Some("legmap"));
        assert_eq!(pbx.peer_call_id("nope"), None);
    }

    #[test]
    fn options_keepalive_gets_200() {
        let mut pbx = pbx_with_users();
        let opt = Request::new(Method::Options, sipcore::SipUri::server("pbx.unb.br"))
            .header(HeaderName::CallId, "opt1".to_owned())
            .header(HeaderName::CSeq, "1 OPTIONS");
        let acts = pbx.handle_sip(SimTime::ZERO, CALLER_NODE, opt.into());
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::OK
        );
    }

    #[test]
    fn per_user_call_policy_refuses_over_the_ceiling() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.max_calls_per_user = Some(2);
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        // 1001's first two calls are admitted.
        for cid in ["pol1", "pol2"] {
            let acts = pbx.handle_sip(
                SimTime::from_secs(1),
                CALLER_NODE,
                invite(cid, "1001", "1002", 6000).into(),
            );
            assert_eq!(acts.len(), 2, "{cid} admitted");
        }
        // The third is refused by policy, not for channels.
        let acts = pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("pol3", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 1);
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::FORBIDDEN
        );
        assert_eq!(pbx.stats().calls_policy_refused, 1);
        assert_eq!(pbx.stats().calls_blocked, 0);
        assert_eq!(pbx.cdr.count(Disposition::PolicyRefused), 1);
        // A different caller is unaffected.
        pbx.handle_sip(SimTime::ZERO, CALLEE_NODE, register_request("1003").into());
        let acts = pbx.handle_sip(
            SimTime::from_secs(3),
            CALLEE_NODE,
            invite("pol4", "1003", "1001", 7000).into(),
        );
        assert_eq!(acts.len(), 2, "other users unaffected");
    }

    #[test]
    fn policy_count_decrements_on_teardown() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.max_calls_per_user = Some(1);
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        establish_call(&mut pbx, "seq1");
        // Second concurrent call refused...
        let acts = pbx.handle_sip(
            SimTime::from_secs(5),
            CALLER_NODE,
            invite("seq2", "1001", "1002", 6100).into(),
        );
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::FORBIDDEN
        );
        // ...but after hanging up, a new call is admitted.
        let bye = Request::new(Method::Bye, sipcore::SipUri::new("1002", "pbx.unb.br"))
            .header(HeaderName::CallId, "seq1".to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        let acts = pbx.handle_sip(SimTime::from_secs(100), CALLER_NODE, bye.into());
        let fwd = sip_of(&acts[0]).as_request().unwrap().clone();
        pbx.handle_sip(
            SimTime::from_secs(100),
            CALLEE_NODE,
            fwd.make_response(StatusCode::OK).into(),
        );
        let acts = pbx.handle_sip(
            SimTime::from_secs(101),
            CALLER_NODE,
            invite("seq3", "1001", "1002", 6200).into(),
        );
        assert_eq!(acts.len(), 2, "ceiling freed after hangup");
    }

    #[test]
    fn overload_sheds_with_503_and_retry_after() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.channels = 4;
        cfg.overload = Some(OverloadControl {
            high_watermark: 0.75,
            low_watermark: 0.30,
            retry_after: SimDuration::from_secs(3),
        });
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        // Three calls -> occupancy 0.75 = high watermark.
        for cid in ["s1", "s2", "s3"] {
            let acts = pbx.handle_sip(
                SimTime::from_secs(1),
                CALLER_NODE,
                invite(cid, "1001", "1002", 6000).into(),
            );
            assert_eq!(acts.len(), 2, "{cid} admitted");
        }
        // The next INVITE sees load >= high and is shed.
        let acts = pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("s4", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 1);
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers.get(&HeaderName::RetryAfter), Some("3"));
        assert!(pbx.is_shedding());
        assert_eq!(pbx.stats().calls_shed, 1);
        assert_eq!(pbx.cdr.count(Disposition::Shed), 1);
        assert_eq!(pbx.stats().calls_blocked, 0, "shed, not capacity-blocked");
        // A free channel remains: shedding protects headroom.
        assert_eq!(pbx.pool.in_use(), 3);
    }

    /// The pluggable `Hysteresis` law must produce byte-identical actions
    /// to the legacy inline watermarks — message for message — across
    /// admit, shed, and release. This is the unit-level half of the
    /// digest-compatibility guarantee (the experiment layer pins the full
    /// run digest).
    #[test]
    fn pluggable_hysteresis_law_replays_legacy_actions_exactly() {
        let build = |pluggable: bool| {
            let dir = Directory::with_subscribers(1000, 100);
            let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
            cfg.channels = 4;
            if pluggable {
                cfg.overload_law = Some(ControlLaw::Hysteresis {
                    high_watermark: 0.75,
                    low_watermark: 0.30,
                    retry_after: SimDuration::from_secs(3),
                });
            } else {
                cfg.overload = Some(OverloadControl {
                    high_watermark: 0.75,
                    low_watermark: 0.30,
                    retry_after: SimDuration::from_secs(3),
                });
            }
            let mut pbx = Pbx::new(cfg, dir);
            for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
                pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
            }
            pbx
        };
        let mut legacy = build(false);
        let mut law = build(true);
        // Admit three calls (reaching the high watermark), shed the
        // fourth, tear down to below the low watermark, admit again.
        let step = |legacy: &mut Pbx, law: &mut Pbx, t: u64, node: NodeId, msg: SipMessage| {
            let a = legacy.handle_sip(SimTime::from_secs(t), node, msg.clone());
            let b = law.handle_sip(SimTime::from_secs(t), node, msg);
            assert_eq!(a, b, "action divergence at t={t}");
            a
        };
        for cid in ["p1", "p2", "p3"] {
            step(
                &mut legacy,
                &mut law,
                1,
                CALLER_NODE,
                invite(cid, "1001", "1002", 6000).into(),
            );
        }
        let acts = step(
            &mut legacy,
            &mut law,
            2,
            CALLER_NODE,
            invite("p4", "1001", "1002", 6000).into(),
        );
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers.get(&HeaderName::RetryAfter), Some("3"));
        assert!(
            !resp.headers.contains(&HeaderName::OverloadControl),
            "hysteresis advertises no feedback — wire stays byte-identical"
        );
        assert!(legacy.is_shedding() && law.is_shedding());
        for cid in ["p1", "p2"] {
            let bye = Request::new(Method::Bye, sipcore::SipUri::new("1002", "pbx.unb.br"))
                .header(HeaderName::CallId, cid.to_owned())
                .header(HeaderName::CSeq, "2 BYE");
            let acts = step(&mut legacy, &mut law, 10, CALLER_NODE, bye.into());
            let fwd = sip_of(&acts[0]).as_request().unwrap().clone();
            step(
                &mut legacy,
                &mut law,
                10,
                CALLEE_NODE,
                fwd.make_response(StatusCode::OK).into(),
            );
        }
        let acts = step(
            &mut legacy,
            &mut law,
            11,
            CALLER_NODE,
            invite("p5", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2, "released below low watermark on both");
        assert!(!legacy.is_shedding() && !law.is_shedding());
        assert_eq!(legacy.stats(), law.stats());
        assert_eq!(
            legacy.cdr.count(Disposition::Shed),
            law.cdr.count(Disposition::Shed)
        );
    }

    /// Feedback-driven laws advertise their state on the 100 Trying of
    /// admitted calls and on 503 rejects.
    #[test]
    fn rate_law_feedback_rides_trying_and_503() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.channels = 2;
        cfg.overload_law = Some(ControlLaw::RateBased {
            target_load: 0.5,
            max_rate_cps: 10.0,
            min_rate_cps: 1.0,
            retry_after: SimDuration::from_secs(4),
        });
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        // First INVITE admitted: the Trying carries rate feedback.
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("f1", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2);
        let trying = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(trying.status, StatusCode::TRYING);
        let fb = trying
            .headers
            .get(&HeaderName::OverloadControl)
            .expect("rate law advertises on Trying");
        assert!(fb.starts_with("rate="), "got {fb:?}");
        // Fill the pool; the next INVITE is shed with 503 + feedback.
        pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("f2", "1001", "1002", 6000).into(),
        );
        let acts = pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("f3", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 1);
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers.get(&HeaderName::RetryAfter), Some("4"));
        assert!(resp
            .headers
            .get(&HeaderName::OverloadControl)
            .is_some_and(|v| v.starts_with("rate=")));
        assert_eq!(pbx.stats().calls_shed, 1);
        assert_eq!(pbx.cdr.count(Disposition::Shed), 1);
    }

    /// MOS-predictive CAC rejects on observed link quality even with free
    /// channels — the "3D" axis of 3D-CAC.
    #[test]
    fn mos_cac_rejects_on_poor_link_quality_with_channels_free() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.channels = 8;
        cfg.overload_law = Some(ControlLaw::mos_cac_default());
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        // Clean link: admitted.
        let acts = pbx.handle_sip(
            SimTime::from_secs(1),
            CALLER_NODE,
            invite("q1", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2, "clean link admits");
        // The world reports a degraded link; prediction falls below 3.5.
        pbx.observe_link_quality(0.15, 60.0, 150.0);
        let acts = pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("q2", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 1);
        let resp = sip_of(&acts[0]).as_response().unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        assert!(pbx.is_shedding());
        assert!(pbx.pool.in_use() < 8, "channels were free — quality shed");
        // Link heals: admission resumes.
        pbx.observe_link_quality(0.0, 2.0, 10.0);
        let acts = pbx.handle_sip(
            SimTime::from_secs(3),
            CALLER_NODE,
            invite("q3", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2, "healed link admits again");
        assert!(!pbx.is_shedding());
    }

    #[test]
    fn shedding_hysteresis_disengages_below_low_watermark() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.channels = 4;
        cfg.overload = Some(OverloadControl {
            high_watermark: 0.75,
            low_watermark: 0.30,
            retry_after: SimDuration::from_secs(2),
        });
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        for cid in ["h1", "h2", "h3"] {
            pbx.handle_sip(
                SimTime::from_secs(1),
                CALLER_NODE,
                invite(cid, "1001", "1002", 6000).into(),
            );
        }
        pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("h4", "1001", "1002", 6000).into(),
        );
        assert!(pbx.is_shedding());
        // Tear two calls down -> occupancy 0.25 < low watermark... but the
        // controller only re-evaluates on the next INVITE.
        for cid in ["h1", "h2"] {
            let bye = Request::new(Method::Bye, sipcore::SipUri::new("1002", "pbx.unb.br"))
                .header(HeaderName::CallId, cid.to_owned())
                .header(HeaderName::CSeq, "2 BYE");
            let acts = pbx.handle_sip(SimTime::from_secs(10), CALLER_NODE, bye.into());
            let fwd = sip_of(&acts[0]).as_request().unwrap().clone();
            pbx.handle_sip(
                SimTime::from_secs(10),
                CALLEE_NODE,
                fwd.make_response(StatusCode::OK).into(),
            );
        }
        assert_eq!(pbx.pool.in_use(), 1);
        // 1/4 = 0.25 <= 0.30: shedding disengages and the call is admitted.
        let acts = pbx.handle_sip(
            SimTime::from_secs(11),
            CALLER_NODE,
            invite("h5", "1001", "1002", 6000).into(),
        );
        assert_eq!(acts.len(), 2, "admitted again");
        assert!(!pbx.is_shedding());
    }

    #[test]
    fn hysteresis_keeps_shedding_between_watermarks() {
        let dir = Directory::with_subscribers(1000, 100);
        let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
        cfg.channels = 4;
        cfg.overload = Some(OverloadControl {
            high_watermark: 0.75,
            low_watermark: 0.30,
            retry_after: SimDuration::from_secs(2),
        });
        let mut pbx = Pbx::new(cfg, dir);
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::ZERO, node, register_request(uid).into());
        }
        for cid in ["m1", "m2", "m3"] {
            pbx.handle_sip(
                SimTime::from_secs(1),
                CALLER_NODE,
                invite(cid, "1001", "1002", 6000).into(),
            );
        }
        pbx.handle_sip(
            SimTime::from_secs(2),
            CALLER_NODE,
            invite("m4", "1001", "1002", 6000).into(),
        );
        assert!(pbx.is_shedding());
        // Drop one call: occupancy 0.5 is between the watermarks, so the
        // controller keeps shedding (hysteresis).
        let bye = Request::new(Method::Bye, sipcore::SipUri::new("1002", "pbx.unb.br"))
            .header(HeaderName::CallId, "m1".to_owned())
            .header(HeaderName::CSeq, "2 BYE");
        let acts = pbx.handle_sip(SimTime::from_secs(10), CALLER_NODE, bye.into());
        let fwd = sip_of(&acts[0]).as_request().unwrap().clone();
        pbx.handle_sip(
            SimTime::from_secs(10),
            CALLEE_NODE,
            fwd.make_response(StatusCode::OK).into(),
        );
        let acts = pbx.handle_sip(
            SimTime::from_secs(11),
            CALLER_NODE,
            invite("m5", "1001", "1002", 6000).into(),
        );
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::SERVICE_UNAVAILABLE
        );
        assert!(pbx.is_shedding());
    }

    #[test]
    fn crash_drops_calls_and_loses_registrations() {
        let mut pbx = pbx_with_users();
        establish_call(&mut pbx, "crash1");
        establish_call(&mut pbx, "crash2");
        assert_eq!(pbx.pool.in_use(), 2);
        assert_eq!(pbx.registrar.len(), 2);

        let dropped = pbx.crash(SimTime::from_secs(50));
        assert_eq!(dropped, 2);
        assert_eq!(pbx.active_calls(), 0);
        assert_eq!(pbx.pool.in_use(), 0);
        assert!(pbx.registrar.is_empty(), "location table lost");
        assert_eq!(pbx.cdr.count(Disposition::Failed), 2);
        assert_eq!(pbx.stats().crashes, 1);

        // Until re-registration, calls to the lost extension 404.
        let acts = pbx.handle_sip(
            SimTime::from_secs(51),
            CALLER_NODE,
            invite("post", "1001", "1002", 6000).into(),
        );
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            StatusCode::NOT_FOUND
        );

        // After the endpoints re-REGISTER the system serves calls again.
        for (uid, node) in [("1001", CALLER_NODE), ("1002", CALLEE_NODE)] {
            pbx.handle_sip(SimTime::from_secs(52), node, register_request(uid).into());
        }
        establish_call(&mut pbx, "recovered");
        assert_eq!(pbx.cdr.count(Disposition::Answered), 0); // still open
        assert_eq!(pbx.active_calls(), 1);
    }

    #[test]
    fn channel_peak_tracks_concurrency() {
        let mut pbx = pbx_with_users();
        establish_call(&mut pbx, "p1");
        // A second simultaneous call (re-using same users is fine for the pool).
        pbx.handle_sip(
            SimTime::from_secs(5),
            CALLER_NODE,
            invite("p2", "1001", "1002", 6100).into(),
        );
        assert_eq!(pbx.pool.peak(), 2);
        assert_eq!(pbx.active_calls(), 2);
    }
}
