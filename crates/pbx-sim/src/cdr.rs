//! Call detail records — Asterisk's CDR facility, which the paper lists
//! among the PBX features motivating its selection.

use des::SimTime;
use serde::{Deserialize, Serialize};

/// Final disposition of a call attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Disposition {
    /// Answered and completed normally.
    Answered,
    /// Refused at admission: no free channel (the "blocked call").
    Blocked,
    /// Refused by overload control: the PBX was above its shedding
    /// watermark and answered 503 + Retry-After. Kept distinct from
    /// [`Disposition::Blocked`] so Erlang-B comparisons (which model
    /// capacity, not control policy) stay honest.
    Shed,
    /// Refused by the per-user call policy (caller over its ceiling).
    PolicyRefused,
    /// Callee unknown / not registered.
    Failed,
    /// Callee never answered before the caller gave up.
    NoAnswer,
    /// Still in progress when the experiment window closed.
    InProgress,
}

/// One call's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallRecord {
    /// SIP Call-ID.
    pub call_id: String,
    /// Caller address-of-record.
    pub caller: String,
    /// Dialled destination.
    pub callee: String,
    /// INVITE arrival time.
    pub start: SimTime,
    /// 200 OK time, if answered.
    pub answered: Option<SimTime>,
    /// Teardown time, if ended.
    pub end: Option<SimTime>,
    /// Final disposition.
    pub disposition: Disposition,
}

impl CallRecord {
    /// Billable seconds (answer to end), 0 if never answered.
    #[must_use]
    pub fn billsec(&self) -> f64 {
        match (self.answered, self.end) {
            (Some(a), Some(e)) => e.since(a).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Total duration from INVITE to teardown.
    #[must_use]
    pub fn duration(&self) -> f64 {
        match self.end {
            Some(e) => e.since(self.start).as_secs_f64(),
            None => 0.0,
        }
    }
}

/// Accumulating CDR journal.
#[derive(Debug, Clone, Default)]
pub struct CdrLog {
    records: Vec<CallRecord>,
}

impl CdrLog {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        CdrLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: CallRecord) {
        self.records.push(r);
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[CallRecord] {
        &self.records
    }

    /// Count records with the given disposition.
    #[must_use]
    pub fn count(&self, d: Disposition) -> usize {
        self.records.iter().filter(|r| r.disposition == d).count()
    }

    /// Total attempts.
    #[must_use]
    pub fn total(&self) -> usize {
        self.records.len()
    }

    /// Blocking probability observed: blocked / total attempts.
    #[must_use]
    pub fn blocking_probability(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.count(Disposition::Blocked) as f64 / self.records.len() as f64
    }

    /// Mean billable seconds over answered calls (NaN if none).
    #[must_use]
    pub fn mean_billsec(&self) -> f64 {
        let answered: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.disposition == Disposition::Answered)
            .map(CallRecord::billsec)
            .collect();
        if answered.is_empty() {
            f64::NAN
        } else {
            answered.iter().sum::<f64>() / answered.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::SimDuration;

    fn answered_record(start_s: u64, bill_s: u64) -> CallRecord {
        let start = SimTime::from_secs(start_s);
        let ans = start + SimDuration::from_millis(350);
        CallRecord {
            call_id: format!("c{start_s}"),
            caller: "1001@pbx".into(),
            callee: "2001@pbx".into(),
            start,
            answered: Some(ans),
            end: Some(ans + SimDuration::from_secs(bill_s)),
            disposition: Disposition::Answered,
        }
    }

    #[test]
    fn billsec_and_duration() {
        let r = answered_record(10, 120);
        assert!((r.billsec() - 120.0).abs() < 1e-9);
        assert!((r.duration() - 120.35).abs() < 1e-9);
    }

    #[test]
    fn unanswered_has_zero_billsec() {
        let r = CallRecord {
            call_id: "x".into(),
            caller: "a".into(),
            callee: "b".into(),
            start: SimTime::from_secs(1),
            answered: None,
            end: Some(SimTime::from_secs(2)),
            disposition: Disposition::Blocked,
        };
        assert_eq!(r.billsec(), 0.0);
        assert!((r.duration() - 1.0).abs() < 1e-12);
        let r2 = CallRecord {
            end: None,
            disposition: Disposition::InProgress,
            ..r
        };
        assert_eq!(r2.duration(), 0.0);
    }

    #[test]
    fn journal_counts_and_blocking() {
        let mut log = CdrLog::new();
        for i in 0..8 {
            log.push(answered_record(i, 100));
        }
        for i in 0..2 {
            log.push(CallRecord {
                call_id: format!("b{i}"),
                caller: "c".into(),
                callee: "d".into(),
                start: SimTime::from_secs(50 + i),
                answered: None,
                end: Some(SimTime::from_secs(50 + i)),
                disposition: Disposition::Blocked,
            });
        }
        assert_eq!(log.total(), 10);
        assert_eq!(log.count(Disposition::Answered), 8);
        assert_eq!(log.count(Disposition::Blocked), 2);
        assert_eq!(log.count(Disposition::Failed), 0);
        assert!((log.blocking_probability() - 0.2).abs() < 1e-12);
        assert!((log.mean_billsec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_journal() {
        let log = CdrLog::new();
        assert_eq!(log.total(), 0);
        assert_eq!(log.blocking_probability(), 0.0);
        assert!(log.mean_billsec().is_nan());
        assert!(log.records().is_empty());
    }
}
