//! Voice quality estimation — the ITU-T G.107 E-model.
//!
//! The paper assesses call quality with the Mean Opinion Score measured by
//! VoIPmonitor. VoIPmonitor (like every passive monitor) does not run the
//! subjective ITU-T P.800 listening test; it computes an **objective MOS
//! estimate** from measured network impairments using the E-model. This
//! crate implements that computation:
//!
//! ```text
//! R = Ro − Is − Id − Ie,eff + A        (G.107 Eq. 1, simplified defaults)
//! ```
//!
//! * `Ro − Is = 93.2` — the default signal-to-noise baseline with standard
//!   send/receive loudness ratings;
//! * `Id` — delay impairment, a function of one-way mouth-to-ear delay;
//! * `Ie,eff` — effective equipment impairment: the codec's intrinsic
//!   impairment inflated by packet loss against its loss robustness `Bpl`;
//! * `A` — advantage factor (0 for fixed networks; up to 10 is sometimes
//!   granted for wireless access, which we expose but default to 0).
//!
//! The R-factor maps to MOS via the G.107 Annex B cubic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Default `Ro − Is` baseline R-factor with all G.107 defaults.
pub const DEFAULT_BASE_R: f64 = 93.2;

/// Codec parameters for the `Ie,eff` computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecProfile {
    /// Intrinsic equipment impairment `Ie` (0 for G.711).
    pub ie: f64,
    /// Packet-loss robustness `Bpl` (25.1 for G.711 with PLC, random loss).
    pub bpl: f64,
    /// Codec + packetization delay contribution in ms (one 20 ms frame for
    /// G.711, negligible lookahead).
    pub codec_delay_ms: f64,
}

impl CodecProfile {
    /// ITU-T G.113 Appendix I values for G.711 with packet-loss concealment.
    #[must_use]
    pub fn g711() -> Self {
        CodecProfile {
            ie: 0.0,
            bpl: 25.1,
            codec_delay_ms: 20.0,
        }
    }

    /// G.711 **without** concealment — markedly less loss-robust
    /// (Bpl = 4.3); used by the ablation bench.
    #[must_use]
    pub fn g711_no_plc() -> Self {
        CodecProfile {
            ie: 0.0,
            bpl: 4.3,
            codec_delay_ms: 20.0,
        }
    }

    /// G.729A, for comparison studies (Ie = 11, Bpl = 19).
    #[must_use]
    pub fn g729a() -> Self {
        CodecProfile {
            ie: 11.0,
            bpl: 19.0,
            codec_delay_ms: 25.0,
        }
    }
}

/// Inputs to one E-model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EModelInputs {
    /// One-way network delay in milliseconds (propagation + queueing).
    pub network_delay_ms: f64,
    /// Receive-side jitter buffer delay in milliseconds.
    pub jitter_buffer_ms: f64,
    /// Packet loss probability in `[0, 1]` **after** the jitter buffer
    /// (network loss plus late discards).
    pub packet_loss: f64,
    /// Burstiness ratio `BurstR` (1.0 = random/Bernoulli loss; >1 bursty).
    pub burst_ratio: f64,
    /// Codec profile.
    pub codec: CodecProfile,
    /// Advantage factor `A` (0 conventional, ≤ 10 wireless).
    pub advantage: f64,
}

impl EModelInputs {
    /// Inputs for a pristine G.711 call: no loss, negligible delay.
    #[must_use]
    pub fn ideal_g711() -> Self {
        EModelInputs {
            network_delay_ms: 0.5,
            jitter_buffer_ms: 40.0,
            packet_loss: 0.0,
            burst_ratio: 1.0,
            codec: CodecProfile::g711(),
            advantage: 0.0,
        }
    }

    /// Total one-way mouth-to-ear delay `Ta` in milliseconds.
    #[must_use]
    pub fn total_delay_ms(&self) -> f64 {
        self.network_delay_ms + self.jitter_buffer_ms + self.codec.codec_delay_ms
    }
}

/// Delay impairment `Id` per the widely used G.107 approximation
/// (Cole & Rosenbluth): `Id = 0.024·Ta + 0.11·(Ta − 177.3)·H(Ta − 177.3)`.
#[must_use]
pub fn delay_impairment(ta_ms: f64) -> f64 {
    let ta = ta_ms.max(0.0);
    let mut id = 0.024 * ta;
    if ta > 177.3 {
        id += 0.11 * (ta - 177.3);
    }
    id
}

/// Effective equipment impairment
/// `Ie,eff = Ie + (95 − Ie) · Ppl / (Ppl/BurstR + Bpl)` with `Ppl` in
/// percent (G.107 Eq. 7-29).
#[must_use]
pub fn equipment_impairment(codec: CodecProfile, packet_loss: f64, burst_ratio: f64) -> f64 {
    let ppl = (packet_loss.clamp(0.0, 1.0)) * 100.0;
    let burst = burst_ratio.max(1.0);
    codec.ie + (95.0 - codec.ie) * ppl / (ppl / burst + codec.bpl)
}

/// The transmission rating factor R for the given inputs.
#[must_use]
pub fn r_factor(inputs: &EModelInputs) -> f64 {
    let id = delay_impairment(inputs.total_delay_ms());
    let ie_eff = equipment_impairment(inputs.codec, inputs.packet_loss, inputs.burst_ratio);
    DEFAULT_BASE_R - id - ie_eff + inputs.advantage.clamp(0.0, 20.0)
}

/// Map an R-factor to MOS (G.107 Annex B).
///
/// The raw Annex B cubic dips slightly below 1.0 for R ≲ 6 (a known quirk
/// of the fit); like deployed implementations we clamp the result to the
/// MOS scale `[1.0, 4.5]`, which also makes the mapping monotone.
#[must_use]
pub fn r_to_mos(r: f64) -> f64 {
    if r <= 0.0 {
        1.0
    } else if r >= 100.0 {
        4.5
    } else {
        (1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6).clamp(1.0, 4.5)
    }
}

/// Inverse of [`r_to_mos`] by bisection (returns the R in `[0, 100]` whose
/// MOS is closest to the target).
#[must_use]
pub fn mos_to_r(mos: f64) -> f64 {
    let target = mos.clamp(1.0, 4.5);
    let (mut lo, mut hi) = (0.0f64, 100.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if r_to_mos(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One-call convenience: MOS estimate for the given inputs.
#[must_use]
pub fn estimate_mos(inputs: &EModelInputs) -> f64 {
    r_to_mos(r_factor(inputs))
}

/// ITU quality categories for an R factor (G.109).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityCategory {
    /// R ≥ 90: users very satisfied.
    Best,
    /// 80 ≤ R < 90: satisfied.
    High,
    /// 70 ≤ R < 80: some dissatisfied.
    Medium,
    /// 60 ≤ R < 70: many dissatisfied.
    Low,
    /// R < 60: nearly all dissatisfied.
    Poor,
}

/// Classify an R-factor per G.109.
#[must_use]
pub fn categorize(r: f64) -> QualityCategory {
    if r >= 90.0 {
        QualityCategory::Best
    } else if r >= 80.0 {
        QualityCategory::High
    } else if r >= 70.0 {
        QualityCategory::Medium
    } else if r >= 60.0 {
        QualityCategory::Low
    } else {
        QualityCategory::Poor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_g711_is_toll_quality() {
        // The paper's Table I reports MOS ≈ 4.4–4.46 for unloaded runs.
        let mos = estimate_mos(&EModelInputs::ideal_g711());
        assert!(mos > 4.3 && mos <= 4.5, "mos={mos}");
    }

    #[test]
    fn r_to_mos_anchors() {
        assert_eq!(r_to_mos(-5.0), 1.0);
        assert_eq!(r_to_mos(0.0), 1.0);
        assert_eq!(r_to_mos(100.0), 4.5);
        assert_eq!(r_to_mos(120.0), 4.5);
        // R = 60 -> 1 + 2.1 + 0 = 3.1 exactly (cubic term vanishes).
        assert!((r_to_mos(60.0) - 3.1).abs() < 1e-12);
        // Default baseline ~93.2 -> ~4.41.
        assert!((r_to_mos(93.2) - 4.41).abs() < 0.02);
    }

    #[test]
    fn r_to_mos_monotone() {
        let mut prev = 0.0;
        for i in 0..=1000 {
            let r = f64::from(i) / 10.0;
            let m = r_to_mos(r);
            assert!(m >= prev - 1e-12, "r={r}");
            prev = m;
        }
    }

    #[test]
    fn mos_to_r_inverts() {
        // Below R ≈ 6 the clamped mapping is flat at MOS 1.0 and therefore
        // not invertible; test the invertible region.
        for &r in &[10.0, 30.0, 50.0, 70.0, 93.2, 99.0] {
            let m = r_to_mos(r);
            let back = mos_to_r(m);
            assert!((back - r).abs() < 1e-6, "r={r} back={back}");
        }
        // Clamped extremes.
        assert!(mos_to_r(0.5) <= 1e-6);
        assert!((mos_to_r(5.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn delay_impairment_shape() {
        assert_eq!(delay_impairment(0.0), 0.0);
        assert_eq!(delay_impairment(-10.0), 0.0);
        // Below the 177.3 ms knee: linear 0.024/ms.
        assert!((delay_impairment(100.0) - 2.4).abs() < 1e-12);
        // Above the knee the slope steepens.
        let below = delay_impairment(177.0);
        let above = delay_impairment(277.0);
        assert!(above - below > 0.024 * 100.0 + 10.0, "knee adds 0.11/ms");
    }

    #[test]
    fn loss_impairment_g711_anchors() {
        // 1% random loss on G.711+PLC: Ie,eff = 95·1/(1/1+25.1) ≈ 3.64.
        let ie = equipment_impairment(CodecProfile::g711(), 0.01, 1.0);
        assert!((ie - 3.64).abs() < 0.01, "ie={ie}");
        // No loss: intrinsic only.
        assert_eq!(equipment_impairment(CodecProfile::g711(), 0.0, 1.0), 0.0);
        assert_eq!(equipment_impairment(CodecProfile::g729a(), 0.0, 1.0), 11.0);
        // 100% loss approaches 95.
        let ie = equipment_impairment(CodecProfile::g711(), 1.0, 1.0);
        assert!(ie > 70.0 && ie <= 95.0);
    }

    #[test]
    fn burstiness_hurts() {
        let random = equipment_impairment(CodecProfile::g711(), 0.02, 1.0);
        let bursty = equipment_impairment(CodecProfile::g711(), 0.02, 2.0);
        assert!(bursty > random);
        // BurstR below 1 is clamped to 1.
        let sub = equipment_impairment(CodecProfile::g711(), 0.02, 0.2);
        assert_eq!(sub, random);
    }

    #[test]
    fn plc_matters() {
        let with = equipment_impairment(CodecProfile::g711(), 0.03, 1.0);
        let without = equipment_impairment(CodecProfile::g711_no_plc(), 0.03, 1.0);
        assert!(without > 2.0 * with, "no-PLC should be much worse");
    }

    #[test]
    fn mos_degrades_with_loss_but_survives_moderate_loss() {
        // The paper's observation: even at overload (with blocking), the
        // completed calls keep MOS above 4 because per-call loss stays low.
        let mut inputs = EModelInputs::ideal_g711();
        let m0 = estimate_mos(&inputs);
        inputs.packet_loss = 0.005;
        let m1 = estimate_mos(&inputs);
        inputs.packet_loss = 0.02;
        let m2 = estimate_mos(&inputs);
        inputs.packet_loss = 0.10;
        let m3 = estimate_mos(&inputs);
        assert!(m0 > m1 && m1 > m2 && m2 > m3);
        assert!(m1 > 4.0, "0.5% loss still 'good': {m1}");
        assert!(m3 < 3.6, "10% loss clearly degraded: {m3}");
    }

    #[test]
    fn mos_degrades_with_delay() {
        let mut inputs = EModelInputs::ideal_g711();
        inputs.network_delay_ms = 400.0;
        let slow = estimate_mos(&inputs);
        assert!(slow < 4.0, "satellite-ish delay is audible: {slow}");
        assert!(
            slow > estimate_mos(&EModelInputs {
                network_delay_ms: 800.0,
                ..inputs
            })
        );
    }

    #[test]
    fn advantage_factor_compensates() {
        let mut inputs = EModelInputs::ideal_g711();
        inputs.packet_loss = 0.02;
        let plain = estimate_mos(&inputs);
        inputs.advantage = 10.0;
        let wireless = estimate_mos(&inputs);
        assert!(wireless > plain);
        // Clamped to the G.107 maximum of 20.
        inputs.advantage = 50.0;
        let clamped_r = r_factor(&inputs);
        inputs.advantage = 20.0;
        assert!((clamped_r - r_factor(&inputs)).abs() < 1e-12);
    }

    #[test]
    fn categories() {
        assert_eq!(categorize(95.0), QualityCategory::Best);
        assert_eq!(categorize(85.0), QualityCategory::High);
        assert_eq!(categorize(75.0), QualityCategory::Medium);
        assert_eq!(categorize(65.0), QualityCategory::Low);
        assert_eq!(categorize(10.0), QualityCategory::Poor);
    }

    #[test]
    fn total_delay_composition() {
        let inputs = EModelInputs {
            network_delay_ms: 30.0,
            jitter_buffer_ms: 60.0,
            ..EModelInputs::ideal_g711()
        };
        assert!((inputs.total_delay_ms() - 110.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// MOS is always in [1, 4.5].
        #[test]
        fn mos_bounded(
            delay in 0.0f64..2000.0,
            jb in 0.0f64..500.0,
            loss in 0.0f64..1.0,
            burst in 0.5f64..8.0,
            adv in 0.0f64..20.0,
        ) {
            let inputs = EModelInputs {
                network_delay_ms: delay,
                jitter_buffer_ms: jb,
                packet_loss: loss,
                burst_ratio: burst,
                codec: CodecProfile::g711(),
                advantage: adv,
            };
            let mos = estimate_mos(&inputs);
            prop_assert!((1.0..=4.5).contains(&mos));
        }

        /// More loss never improves MOS (all else equal).
        #[test]
        fn loss_monotone(loss in 0.0f64..0.95, extra in 0.001f64..0.05) {
            let mut a = EModelInputs::ideal_g711();
            a.packet_loss = loss;
            let mut b = a;
            b.packet_loss = loss + extra;
            prop_assert!(estimate_mos(&b) <= estimate_mos(&a) + 1e-12);
        }

        /// More delay never improves MOS.
        #[test]
        fn delay_monotone(d in 0.0f64..900.0, extra in 1.0f64..100.0) {
            let mut a = EModelInputs::ideal_g711();
            a.network_delay_ms = d;
            let mut b = a;
            b.network_delay_ms = d + extra;
            prop_assert!(estimate_mos(&b) <= estimate_mos(&a) + 1e-12);
        }
    }
}
