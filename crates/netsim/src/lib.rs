//! Simulated switched LAN — the testbed network of the paper's Fig. 4.
//!
//! The physical testbed is two SIPp hosts and the Asterisk server hanging
//! off a 10/100 Mb/s switch. This crate models that as a set of directed
//! links, each with a bandwidth, a propagation delay and a finite FIFO
//! output queue (tail-drop). Queueing delay emerges naturally when offered
//! bit-rate approaches link capacity — this is what degrades jitter and,
//! eventually, drops packets at the paper's highest workloads.
//!
//! The network is deliberately **not** coupled to the event queue: callers
//! ask it *when* a packet would be delivered ([`Network::enqueue`]) and
//! schedule their own delivery events, so the same model serves the DES
//! world, unit tests, and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod topology;

use des::rng::Distributions;
use des::FastMap;
use des::{SimDuration, SimTime, StreamRng};
use serde::{Deserialize, Serialize};

/// A node on the network (host or switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// Traffic class of a packet (affects nothing in the FIFO model but lets
/// the monitor and stats tell flows apart cheaply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// SIP signalling datagram.
    Sip,
    /// RTP media datagram.
    Rtp,
    /// RTCP report datagram.
    Rtcp,
}

/// A packet in flight: source, destination, class and opaque payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Traffic class.
    pub class: TrafficClass,
    /// Wire bytes (SIP text or RTP datagram).
    pub payload: Vec<u8>,
}

impl Packet {
    /// Total simulated wire length: payload + UDP/IP/Ethernet overhead
    /// (8 + 20 + 18 = 46 bytes, to keep serialization times honest).
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + 46
    }
}

/// Parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Propagation + per-hop processing delay.
    pub propagation: SimDuration,
    /// Maximum queueing backlog before tail-drop, expressed as time
    /// (backlog bytes / bandwidth). 2–10 ms is typical for a small switch.
    pub max_queue_delay: SimDuration,
    /// Random independent loss probability (models the paper's "packet
    /// errors" at extreme load; 0 for a clean wire).
    pub loss_probability: f64,
}

impl LinkParams {
    /// A healthy 100 Mb/s switched-Ethernet hop.
    #[must_use]
    pub fn fast_ethernet() -> Self {
        LinkParams {
            bandwidth_bps: 100e6,
            propagation: SimDuration::from_micros(50),
            max_queue_delay: SimDuration::from_millis(5),
            loss_probability: 0.0,
        }
    }

    /// A 10 Mb/s hop (the slow half of the paper's 10/100 switch).
    #[must_use]
    pub fn ethernet_10() -> Self {
        LinkParams {
            bandwidth_bps: 10e6,
            propagation: SimDuration::from_micros(50),
            max_queue_delay: SimDuration::from_millis(20),
            loss_probability: 0.0,
        }
    }
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted and (eventually) delivered.
    pub delivered: u64,
    /// Packets tail-dropped at the queue.
    pub dropped_queue: u64,
    /// Packets lost to random errors.
    pub dropped_error: u64,
    /// Payload+overhead bytes carried.
    pub bytes: u64,
    /// Cumulative busy (transmitting) time.
    pub busy: SimDuration,
}

#[derive(Debug, Clone)]
struct Link {
    params: LinkParams,
    /// Time at which the transmitter finishes everything queued so far.
    busy_until: SimTime,
    stats: LinkStats,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; will arrive at the far end at this time.
    Delivered {
        /// Arrival instant at the next hop.
        at: SimTime,
    },
    /// Tail-dropped: the queue backlog exceeded the configured bound.
    DroppedQueueFull,
    /// Lost to a random link error.
    DroppedError,
    /// No such link.
    NoRoute,
}

/// The directed-link network.
#[derive(Debug, Clone, Default)]
pub struct Network {
    links: FastMap<(NodeId, NodeId), Link>,
}

impl Network {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Network::default()
    }

    /// Install a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        self.links.insert(
            (from, to),
            Link {
                params,
                busy_until: SimTime::ZERO,
                stats: LinkStats::default(),
            },
        );
    }

    /// Install both directions with the same parameters.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.add_link(a, b, params);
        self.add_link(b, a, params);
    }

    /// True if a directed link exists.
    #[must_use]
    pub fn has_link(&self, from: NodeId, to: NodeId) -> bool {
        self.links.contains_key(&(from, to))
    }

    /// The smallest one-hop delay any frame can currently experience: the
    /// minimum propagation delay over all links (queueing and
    /// serialization only add on top of it). `None` for an empty network.
    ///
    /// This is the physical floor under the conservative lookahead of a
    /// sharded run: simulation partitions that only exchange traffic
    /// through the network cannot influence each other faster than this,
    /// so any cross-shard dispatch delay at or above the floor is safe to
    /// use as a synchronization horizon.
    #[must_use]
    pub fn min_latency_floor(&self) -> Option<SimDuration> {
        self.links.values().map(|l| l.params.propagation).min()
    }

    /// Current parameters of a directed link, if present.
    #[must_use]
    pub fn link_params(&self, from: NodeId, to: NodeId) -> Option<LinkParams> {
        self.links.get(&(from, to)).map(|l| l.params)
    }

    /// Replace the parameters of an existing directed link at runtime —
    /// the hook the fault injector uses to degrade, partition and heal
    /// wires mid-run. Stats and the transmitter backlog carry over; only
    /// future packets see the new parameters. Returns the previous
    /// parameters, or `None` (and installs nothing) if the link does not
    /// exist.
    pub fn set_link_params(
        &mut self,
        from: NodeId,
        to: NodeId,
        params: LinkParams,
    ) -> Option<LinkParams> {
        self.links
            .get_mut(&(from, to))
            .map(|l| std::mem::replace(&mut l.params, params))
    }

    /// [`Network::set_link_params`] applied to both directions. Returns
    /// the previous `(a->b, b->a)` parameters if both links exist; if
    /// either is missing nothing is changed.
    pub fn set_duplex_link_params(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
    ) -> Option<(LinkParams, LinkParams)> {
        if !(self.has_link(a, b) && self.has_link(b, a)) {
            return None;
        }
        let fwd = self.set_link_params(a, b, params)?;
        let rev = self.set_link_params(b, a, params)?;
        Some((fwd, rev))
    }

    /// Offer `wire_bytes` from `from` to `to` at time `now`.
    ///
    /// On acceptance, returns the arrival time at `to` (queueing +
    /// serialization + propagation). The caller schedules the arrival.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut StreamRng,
    ) -> SendOutcome {
        let Some(link) = self.links.get_mut(&(from, to)) else {
            return SendOutcome::NoRoute;
        };
        if link.params.loss_probability > 0.0 && rng.coin(link.params.loss_probability) {
            link.stats.dropped_error += 1;
            return SendOutcome::DroppedError;
        }
        let start = link.busy_until.max(now);
        let backlog = start.since(now);
        if backlog > link.params.max_queue_delay {
            link.stats.dropped_queue += 1;
            return SendOutcome::DroppedQueueFull;
        }
        let tx = SimDuration::from_secs_f64(wire_bytes as f64 * 8.0 / link.params.bandwidth_bps);
        let done = start + tx;
        link.busy_until = done;
        link.stats.delivered += 1;
        link.stats.bytes += wire_bytes as u64;
        link.stats.busy = link.stats.busy + tx;
        SendOutcome::Delivered {
            at: done + link.params.propagation,
        }
    }

    /// Counters for a directed link.
    #[must_use]
    pub fn stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.links.get(&(from, to)).map(|l| l.stats)
    }

    /// Aggregate counters over every link.
    #[must_use]
    pub fn total_stats(&self) -> LinkStats {
        let mut agg = LinkStats::default();
        for l in self.links.values() {
            agg.delivered += l.stats.delivered;
            agg.dropped_queue += l.stats.dropped_queue;
            agg.dropped_error += l.stats.dropped_error;
            agg.bytes += l.stats.bytes;
            agg.busy = agg.busy + l.stats.busy;
        }
        agg
    }

    /// Utilisation of a directed link over `[0, until]`.
    #[must_use]
    pub fn utilisation(&self, from: NodeId, to: NodeId, until: SimTime) -> f64 {
        let span = until.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.links
            .get(&(from, to))
            .map(|l| l.stats.busy.as_secs_f64() / span)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::seed_from_u64(1)
    }

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);

    #[test]
    fn latency_floor_is_min_propagation() {
        let mut net = Network::new();
        assert_eq!(net.min_latency_floor(), None);
        let mut fast = LinkParams::fast_ethernet();
        fast.propagation = SimDuration::from_micros(50);
        let mut slow = LinkParams::fast_ethernet();
        slow.propagation = SimDuration::from_millis(2);
        net.add_duplex_link(NodeId(0), NodeId(1), slow);
        net.add_link(NodeId(1), NodeId(2), fast);
        assert_eq!(net.min_latency_floor(), Some(SimDuration::from_micros(50)));
        // Faults that retune links move the floor with them.
        net.set_link_params(NodeId(1), NodeId(2), slow);
        assert_eq!(net.min_latency_floor(), Some(SimDuration::from_millis(2)));
    }

    fn one_link(params: LinkParams) -> Network {
        let mut n = Network::new();
        n.add_link(A, B, params);
        n
    }

    #[test]
    fn delivery_time_is_tx_plus_propagation() {
        let mut n = one_link(LinkParams {
            bandwidth_bps: 1e6, // 1 Mb/s: 1000 bytes = 8 ms
            propagation: SimDuration::from_millis(2),
            max_queue_delay: SimDuration::from_secs(1),
            loss_probability: 0.0,
        });
        let out = n.enqueue(SimTime::ZERO, A, B, 1000, &mut rng());
        match out {
            SendOutcome::Delivered { at } => {
                assert_eq!(at, SimTime::from_millis(10), "8 ms tx + 2 ms prop");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut n = one_link(LinkParams {
            bandwidth_bps: 1e6,
            propagation: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_secs(1),
            loss_probability: 0.0,
        });
        let mut r = rng();
        let t1 = match n.enqueue(SimTime::ZERO, A, B, 1000, &mut r) {
            SendOutcome::Delivered { at } => at,
            o => panic!("{o:?}"),
        };
        let t2 = match n.enqueue(SimTime::ZERO, A, B, 1000, &mut r) {
            SendOutcome::Delivered { at } => at,
            o => panic!("{o:?}"),
        };
        assert_eq!(t1, SimTime::from_millis(8));
        assert_eq!(t2, SimTime::from_millis(16), "second waits for the first");
    }

    #[test]
    fn idle_link_does_not_accumulate_backlog() {
        let mut n = one_link(LinkParams {
            bandwidth_bps: 1e6,
            propagation: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_millis(10),
            loss_probability: 0.0,
        });
        let mut r = rng();
        n.enqueue(SimTime::ZERO, A, B, 1000, &mut r);
        // 1 s later the link is idle again; a new packet sees no queue.
        let t = match n.enqueue(SimTime::from_secs(1), A, B, 1000, &mut r) {
            SendOutcome::Delivered { at } => at,
            o => panic!("{o:?}"),
        };
        assert_eq!(t, SimTime::from_secs(1) + SimDuration::from_millis(8));
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let mut n = one_link(LinkParams {
            bandwidth_bps: 1e6,
            propagation: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_millis(20), // fits 2.5 packets
            loss_probability: 0.0,
        });
        let mut r = rng();
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match n.enqueue(SimTime::ZERO, A, B, 1000, &mut r) {
                SendOutcome::Delivered { .. } => delivered += 1,
                SendOutcome::DroppedQueueFull => dropped += 1,
                o => panic!("{o:?}"),
            }
        }
        assert!((3..=4).contains(&delivered), "delivered={delivered}");
        assert_eq!(delivered + dropped, 10);
        let stats = n.stats(A, B).unwrap();
        assert_eq!(stats.delivered, delivered);
        assert_eq!(stats.dropped_queue, dropped);
    }

    #[test]
    fn random_loss_drops_roughly_p_fraction() {
        let mut n = one_link(LinkParams {
            bandwidth_bps: 1e9,
            propagation: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_secs(10),
            loss_probability: 0.1,
        });
        let mut r = rng();
        let mut errors = 0u64;
        let total = 20_000u64;
        for i in 0..total {
            if matches!(
                n.enqueue(SimTime::from_millis(i), A, B, 100, &mut r),
                SendOutcome::DroppedError
            ) {
                errors += 1;
            }
        }
        let frac = errors as f64 / total as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac={frac}");
        assert_eq!(n.stats(A, B).unwrap().dropped_error, errors);
    }

    #[test]
    fn no_route_is_reported() {
        let mut n = Network::new();
        assert_eq!(
            n.enqueue(SimTime::ZERO, A, B, 10, &mut rng()),
            SendOutcome::NoRoute
        );
        assert!(!n.has_link(A, B));
        assert!(n.stats(A, B).is_none());
    }

    #[test]
    fn duplex_links_are_independent() {
        let mut n = Network::new();
        n.add_duplex_link(A, B, LinkParams::fast_ethernet());
        assert!(n.has_link(A, B) && n.has_link(B, A));
        let mut r = rng();
        // Saturate A->B; B->A must be unaffected.
        for _ in 0..100 {
            n.enqueue(SimTime::ZERO, A, B, 10_000, &mut r);
        }
        let t = match n.enqueue(SimTime::ZERO, B, A, 100, &mut r) {
            SendOutcome::Delivered { at } => at,
            o => panic!("{o:?}"),
        };
        assert!(t < SimTime::from_millis(1), "reverse direction idle");
    }

    #[test]
    fn utilisation_and_totals() {
        let mut n = one_link(LinkParams {
            bandwidth_bps: 1e6,
            propagation: SimDuration::ZERO,
            max_queue_delay: SimDuration::from_secs(10),
            loss_probability: 0.0,
        });
        let mut r = rng();
        // 10 packets × 8 ms = 80 ms busy in 1 s: 8% utilisation.
        for i in 0..10u64 {
            n.enqueue(SimTime::from_millis(i * 100), A, B, 1000, &mut r);
        }
        let u = n.utilisation(A, B, SimTime::from_secs(1));
        assert!((u - 0.08).abs() < 1e-9, "u={u}");
        assert_eq!(n.utilisation(A, B, SimTime::ZERO), 0.0);
        let tot = n.total_stats();
        assert_eq!(tot.delivered, 10);
        assert_eq!(tot.bytes, 10_000);
    }

    #[test]
    fn packet_wire_overhead() {
        let p = Packet {
            src: A,
            dst: B,
            class: TrafficClass::Rtp,
            payload: vec![0u8; 172],
        };
        assert_eq!(p.wire_bytes(), 218, "172 RTP + 46 UDP/IP/Eth");
    }

    #[test]
    fn g711_stream_fits_100mbps_comfortably() {
        // Sanity: 480 unidirectional G.711 flows (240 calls relayed) is
        // 480 × 50 pps × 218 B ≈ 42 Mb/s — under the 100 Mb/s line rate,
        // matching the paper's observation that the wire is not the
        // bottleneck.
        let flows = 480.0;
        let bps = flows * 50.0 * 218.0 * 8.0;
        assert!(bps < 100e6 * 0.5, "bps={bps}");
    }
}
