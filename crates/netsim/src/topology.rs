//! Canned topologies — the paper's Fig. 4 star in particular.

use crate::{LinkParams, Network, NodeId};
use des::SimTime;

/// The Fig. 4 testbed: SIP call-generator client, SIP call-generator
/// server, and the Asterisk PBX, all attached to one switch.
#[derive(Debug, Clone)]
pub struct StarTopology {
    /// The switch at the centre.
    pub switch: NodeId,
    /// All attached hosts.
    pub hosts: Vec<NodeId>,
    /// The network with all host↔switch links installed.
    pub network: Network,
}

/// Well-known node numbers for the Fig. 4 testbed.
pub mod nodes {
    use crate::NodeId;
    /// The switch.
    pub const SWITCH: NodeId = NodeId(0);
    /// SIPp call-generator client (UAC side).
    pub const SIPP_CLIENT: NodeId = NodeId(1);
    /// SIPp call-generator server (UAS side).
    pub const SIPP_SERVER: NodeId = NodeId(2);
    /// The Asterisk PBX.
    pub const PBX: NodeId = NodeId(3);
}

impl StarTopology {
    /// Build a star of `hosts` around `switch`, each attachment using the
    /// same link parameters.
    #[must_use]
    pub fn new(switch: NodeId, hosts: &[NodeId], params: LinkParams) -> Self {
        let mut network = Network::new();
        for &h in hosts {
            network.add_duplex_link(h, switch, params);
        }
        StarTopology {
            switch,
            hosts: hosts.to_vec(),
            network,
        }
    }

    /// The paper's testbed: three hosts on a 100 Mb/s switch.
    #[must_use]
    pub fn fig4_testbed() -> Self {
        StarTopology::new(
            nodes::SWITCH,
            &[nodes::SIPP_CLIENT, nodes::SIPP_SERVER, nodes::PBX],
            LinkParams::fast_ethernet(),
        )
    }

    /// Next hop from `from` towards `dst`: the destination itself if a
    /// direct link exists (host → switch), otherwise via the switch.
    #[must_use]
    pub fn next_hop(&self, from: NodeId, dst: NodeId) -> NodeId {
        if self.network.has_link(from, dst) {
            dst
        } else {
            self.switch
        }
    }

    /// End-to-end path between two hosts.
    #[must_use]
    pub fn path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        if from == to {
            return vec![from];
        }
        if self.network.has_link(from, to) {
            return vec![from, to];
        }
        vec![from, self.switch, to]
    }

    /// Aggregate utilisation of the busiest attachment (either direction)
    /// at time `until` — a proxy for "is the wire the bottleneck?".
    #[must_use]
    pub fn peak_utilisation(&self, until: SimTime) -> f64 {
        let mut peak: f64 = 0.0;
        for &h in &self.hosts {
            peak = peak.max(self.network.utilisation(h, self.switch, until));
            peak = peak.max(self.network.utilisation(self.switch, h, until));
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::{SimTime, StreamRng};

    #[test]
    fn fig4_testbed_wiring() {
        let topo = StarTopology::fig4_testbed();
        assert_eq!(topo.hosts.len(), 3);
        for &h in &topo.hosts {
            assert!(topo.network.has_link(h, nodes::SWITCH));
            assert!(topo.network.has_link(nodes::SWITCH, h));
        }
        assert!(
            !topo.network.has_link(nodes::SIPP_CLIENT, nodes::PBX),
            "hosts only reach each other via the switch"
        );
    }

    #[test]
    fn next_hop_routes_via_switch() {
        let topo = StarTopology::fig4_testbed();
        assert_eq!(topo.next_hop(nodes::SIPP_CLIENT, nodes::PBX), nodes::SWITCH);
        assert_eq!(
            topo.next_hop(nodes::SIPP_CLIENT, nodes::SWITCH),
            nodes::SWITCH
        );
        assert_eq!(topo.next_hop(nodes::SWITCH, nodes::PBX), nodes::PBX);
    }

    #[test]
    fn paths() {
        let topo = StarTopology::fig4_testbed();
        assert_eq!(
            topo.path(nodes::SIPP_CLIENT, nodes::PBX),
            vec![nodes::SIPP_CLIENT, nodes::SWITCH, nodes::PBX]
        );
        assert_eq!(
            topo.path(nodes::PBX, nodes::SWITCH),
            vec![nodes::PBX, nodes::SWITCH]
        );
        assert_eq!(topo.path(nodes::PBX, nodes::PBX), vec![nodes::PBX]);
    }

    #[test]
    fn peak_utilisation_tracks_traffic() {
        let mut topo = StarTopology::fig4_testbed();
        let mut rng = StreamRng::seed_from_u64(3);
        assert_eq!(topo.peak_utilisation(SimTime::from_secs(1)), 0.0);
        for _ in 0..1000 {
            topo.network.enqueue(
                SimTime::ZERO,
                nodes::SIPP_CLIENT,
                nodes::SWITCH,
                1500,
                &mut rng,
            );
        }
        assert!(topo.peak_utilisation(SimTime::from_secs(1)) > 0.0);
    }
}
