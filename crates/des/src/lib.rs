//! Deterministic discrete-event simulation (DES) engine.
//!
//! This is the substrate on which the empirical side of the paper runs: the
//! simulated network, PBX and load generators are all event handlers driven
//! by a single future-event list. Design goals:
//!
//! * **Determinism** — integer nanosecond timestamps, a stable FIFO
//!   tie-break for simultaneous events, and splittable counter-based RNG
//!   streams mean a run is a pure function of its seed. Parallel parameter
//!   sweeps (the work-stealing executor in the `capacity` crate) therefore
//!   reproduce bit-identical journals regardless of thread scheduling.
//! * **Throughput** — a future-event list with two interchangeable
//!   backends (a reference `BinaryHeap` and a hierarchical timing wheel
//!   with far-future overflow, selected via [`SchedulerKind`]), no
//!   per-event boxing for the common case, and O(1) statistics
//!   accumulators; an A = 240 Erlang Table-I cell pushes ~9 million RTP
//!   packet events through the queue in well under a second in release
//!   builds.
//!
//! # Example
//!
//! ```
//! use des::{Scheduler, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule(SimTime::from_secs_f64(1.0), Ev::Ping);
//! sched.schedule(SimTime::from_secs_f64(0.5), Ev::Pong);
//! let (t, ev) = sched.pop().unwrap();
//! assert_eq!(ev, Ev::Pong);
//! assert_eq!(t, SimTime::from_secs_f64(0.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod engine;
pub mod fastmap;
pub mod phase_timer;
pub mod pool;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod timeseries;

pub use cancel::{GenTag, Generation};
pub use engine::{EventHandler, Scheduler, SchedulerKind, Simulation, StepOutcome};
pub use fastmap::FastMap;
pub use phase_timer::{Phase, PhaseBreakdown, PhaseTimer};
pub use rng::{stream_seed, Distributions, RngStream, StreamRng};
pub use shard::{ExecStats, ShardCtx, ShardWorld, ShardedSim};
pub use stats::{BatchMeans, Counter, Histogram, TimeWeighted, Welford};
pub use time::{SimDuration, SimTime};
pub use timeseries::TimeSeries;
