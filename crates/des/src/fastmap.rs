//! Deterministic fast hashing for the simulator's hot small-key maps.
//!
//! `std`'s default hasher (SipHash behind `RandomState`) costs tens of
//! nanoseconds per lookup and is seeded randomly per process. The maps on
//! the per-packet path — directed links, PBX media ports, monitor flows —
//! are keyed by word-sized integers and probed millions of times per run,
//! so both properties are wrong there: the cost dominates the event loop
//! and the seeding makes iteration order vary across processes. This
//! multiply-xor hasher (the rustc `FxHash` construction) is deterministic
//! and an order of magnitude cheaper on integer keys.
//!
//! Iteration order of a [`FastMap`] is still arbitrary (bucket order).
//! Callers that fold floats out of one must sort the keys first — see the
//! monitor's report path in `vmon`.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-xor hasher: deterministic and cheap on the
/// word-sized keys the simulator uses. Not DoS-resistant — only for maps
/// whose keys the simulation itself controls.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn works_as_a_map() {
        let mut m: FastMap<(u32, u32), &str> = FastMap::default();
        m.insert((1, 2), "a");
        m.insert((2, 1), "b");
        assert_eq!(m.get(&(1, 2)), Some(&"a"));
        assert_eq!(m.get(&(2, 1)), Some(&"b"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is long");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is long");
        assert_eq!(a.finish(), b.finish());
    }
}
