//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of the simulation (arrival process, holding
//! times, network perturbations) draws from its **own named stream** derived
//! from the master seed. That way adding a new consumer of randomness never
//! perturbs the draws seen by existing components — the classic "common
//! random numbers" discipline for comparable experiments — and parallel
//! replications (fanned out by the `capacity` sweep executor) are trivially
//! reproducible because streams carry no shared state.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded
//! through SplitMix64 as its authors recommend. Both are implemented here in
//! ~40 lines rather than pulled from a crate so the whole simulation is
//! self-contained and auditable; the [`rand`] `RngCore` trait is implemented
//! for interoperability.

use rand::RngCore;

/// SplitMix64 step — used for seeding and for stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a decorrelated seed for replication `rep` of an experiment run
/// with master seed `seed`.
///
/// Earlier sweep code used `seed ^ rep.wrapping_mul(GOLDEN)`, which is a
/// linear map of `rep`: consecutive replications share most high bits and
/// the XOR preserves bit-level structure, so replication seeds (and hence
/// the xoshiro states seeded from them) are correlated in exactly the runs
/// that are then averaged together. Passing the combination through a full
/// SplitMix64 finalizer avalanches every input bit into every output bit —
/// one flipped bit in `rep` flips each output bit with probability ½.
/// Every replication loop (`farm`, `figures`, `policy`) routes through
/// this helper so the derivation can never drift apart again.
#[inline]
#[must_use]
pub fn stream_seed(seed: u64, rep: u64) -> u64 {
    let mut state = seed.wrapping_add(rep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// FNV-1a over a label, used to give each named stream a distinct seed
/// offset (stable across platforms and runs).
#[inline]
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct StreamRng {
    s: [u64; 4],
}

impl StreamRng {
    /// Seed a generator from a 64-bit seed via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive.
        if s == [0, 0, 0, 0] {
            StreamRng { s: [1, 2, 3, 4] }
        } else {
            StreamRng { s }
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A factory of independent named random streams sharing a master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngStream {
    master: u64,
}

impl RngStream {
    /// Create a stream factory for a master seed.
    #[must_use]
    pub fn new(master: u64) -> Self {
        RngStream { master }
    }

    /// Derive the generator for a named component ("arrivals", "network"…).
    #[must_use]
    pub fn stream(&self, label: &str) -> StreamRng {
        StreamRng::seed_from_u64(self.master ^ label_hash(label))
    }

    /// Derive a generator for a named component plus an index (e.g. one
    /// stream per replication).
    #[must_use]
    pub fn indexed(&self, label: &str, index: u64) -> StreamRng {
        let mut mix = self.master ^ label_hash(label) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        StreamRng::seed_from_u64(splitmix64(&mut mix))
    }
}

/// Distribution sampling on top of any [`RngCore`].
///
/// These samplers use inverse-CDF / Box–Muller forms so they are exactly
/// reproducible from the raw bit stream, independent of any external
/// distribution crate's implementation details.
pub trait Distributions: RngCore {
    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` that never returns exactly zero (safe for `ln`).
    #[inline]
    fn open_unit_f64(&mut self) -> f64 {
        loop {
            let u = self.unit_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // 128-bit multiply rejection sampling.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Threshold test for the rare biased region.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn coin(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Exponential with the given mean (inverse-CDF).
    #[inline]
    fn exp_mean(&mut self, mean: f64) -> f64 {
        -mean * self.open_unit_f64().ln()
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// stateless, which keeps streams splittable).
    #[inline]
    fn std_normal(&mut self) -> f64 {
        let u1 = self.open_unit_f64();
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    #[inline]
    fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Lognormal parameterised by the mean and standard deviation of the
    /// *resulting* distribution (not of the underlying normal) — the natural
    /// way to specify call holding times.
    #[inline]
    fn lognormal_mean_sd(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive");
        let cv2 = (sd / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        (mu + sigma2.sqrt() * self.std_normal()).exp()
    }

    /// Poisson-distributed count with the given mean (Knuth for small
    /// means, normal approximation above 64).
    #[inline]
    fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.normal(mean, mean.sqrt()).round();
            return if x < 0.0 { 0 } else { x as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.unit_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

impl<T: RngCore + ?Sized> Distributions for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StreamRng::seed_from_u64(42);
        let mut b = StreamRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamRng::seed_from_u64(1);
        let mut b = StreamRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn named_streams_are_independent_and_stable() {
        let f = RngStream::new(7);
        let x1: Vec<u64> = {
            let mut r = f.stream("arrivals");
            (0..8).map(|_| r.next_raw()).collect()
        };
        let x2: Vec<u64> = {
            let mut r = f.stream("arrivals");
            (0..8).map(|_| r.next_raw()).collect()
        };
        let y: Vec<u64> = {
            let mut r = f.stream("network");
            (0..8).map(|_| r.next_raw()).collect()
        };
        assert_eq!(x1, x2, "same label, same stream");
        assert_ne!(x1, y, "different labels, different streams");
        let z: Vec<u64> = {
            let mut r = f.indexed("rep", 3);
            (0..8).map(|_| r.next_raw()).collect()
        };
        let z2: Vec<u64> = {
            let mut r = f.indexed("rep", 4);
            (0..8).map(|_| r.next_raw()).collect()
        };
        assert_ne!(z, z2, "different indices, different streams");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StreamRng::seed_from_u64(9);
        for _ in 0..100_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = StreamRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = StreamRng::seed_from_u64(11);
        let target = 120.0;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exp_mean(target);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - target).abs() / target < 0.02, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = StreamRng::seed_from_u64(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn lognormal_moments() {
        let mut r = StreamRng::seed_from_u64(17);
        let n = 300_000;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_sd(180.0, 60.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(xs.iter().all(|&x| x > 0.0));
        assert!((mean - 180.0).abs() / 180.0 < 0.02, "mean={mean}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = StreamRng::seed_from_u64(19);
        for &lambda in &[0.5, 4.0, 30.0, 200.0] {
            let n = 50_000;
            let mean = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-1.0), 0);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = StreamRng::seed_from_u64(23);
        let n = 120_000;
        let mut buckets = [0u32; 6];
        for _ in 0..n {
            let x = r.below(6);
            assert!(x < 6);
            buckets[x as usize] += 1;
        }
        for &b in &buckets {
            let expect = n as f64 / 6.0;
            assert!((f64::from(b) - expect).abs() / expect < 0.05);
        }
    }

    #[test]
    fn coin_probability() {
        let mut r = StreamRng::seed_from_u64(29);
        let n = 100_000;
        let heads = (0..n).filter(|_| r.coin(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac={frac}");
        assert_eq!((0..100).filter(|_| r.coin(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.coin(1.0)).count(), 100);
    }

    #[test]
    fn fill_bytes_covers_remainders() {
        let mut r = StreamRng::seed_from_u64(31);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is implausible");
        let mut buf2 = [0u8; 8];
        r.try_fill_bytes(&mut buf2).unwrap();
    }

    #[test]
    fn rngcore_next_u32_works() {
        let mut r = StreamRng::seed_from_u64(37);
        // Just exercise the path; value distribution checked via unit_f64.
        let _ = r.next_u32();
        let _ = r.next_u64();
    }

    #[test]
    fn stream_seed_is_deterministic_and_distinct() {
        assert_eq!(stream_seed(2015, 3), stream_seed(2015, 3));
        let mut seen = std::collections::BTreeSet::new();
        for rep in 0..1000u64 {
            assert!(seen.insert(stream_seed(2015, rep)), "collision at {rep}");
        }
        assert_ne!(stream_seed(2015, 0), stream_seed(2016, 0));
    }

    #[test]
    fn stream_seed_avalanches_across_reps() {
        // The point of the helper: adjacent replication indices must not
        // leave bit structure in the derived seeds. Expect close to 32 of
        // 64 bits to flip between consecutive reps — the old
        // `seed ^ rep * GOLDEN` derivation leaves far fewer in the low
        // bits and perfectly correlated high bits.
        let mut total = 0u32;
        let n = 256u64;
        for rep in 0..n {
            total += (stream_seed(99, rep) ^ stream_seed(99, rep + 1)).count_ones();
        }
        let mean = f64::from(total) / n as f64;
        assert!((mean - 32.0).abs() < 2.0, "mean flips {mean}");
    }
}
