//! Bounded time-series recording for simulation signals.
//!
//! Long experiments produce far more samples (per-second CPU, channel
//! occupancy, queue depths) than any report needs. [`TimeSeries`] records
//! with a fixed memory bound: when full it halves its resolution by
//! keeping every other sample, so a run of any length costs O(capacity)
//! memory while preserving the signal's shape.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A bounded (time, value) series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    capacity: usize,
    /// Current decimation: keep one sample in `stride`.
    stride: u64,
    /// Samples seen since the last kept one.
    skip: u64,
    samples: Vec<(SimTime, f64)>,
    total_recorded: u64,
}

impl TimeSeries {
    /// A series that never stores more than `capacity` points.
    ///
    /// # Panics
    /// If `capacity < 2`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "capacity must be at least 2");
        TimeSeries {
            capacity,
            stride: 1,
            skip: 0,
            samples: Vec::new(),
            total_recorded: 0,
        }
    }

    /// Record one sample (must be time-ordered).
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.total_recorded += 1;
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        self.skip = self.stride - 1;
        self.samples.push((at, value));
        if self.samples.len() >= self.capacity {
            // Halve resolution: drop every other stored point.
            let mut keep = Vec::with_capacity(self.capacity / 2 + 1);
            for (i, s) in self.samples.iter().enumerate() {
                if i % 2 == 0 {
                    keep.push(*s);
                }
            }
            self.samples = keep;
            self.stride *= 2;
        }
    }

    /// Stored points (decimated), in time order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Total samples ever recorded (before decimation).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Minimum stored value (NaN when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NAN, f64::min)
    }

    /// Maximum stored value (NaN when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NAN, f64::max)
    }

    /// Mean of stored values (NaN when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Resample to at most `buckets` points by bucket-averaging — the
    /// form a plot or report consumes.
    #[must_use]
    pub fn resample(&self, buckets: usize) -> Vec<(SimTime, f64)> {
        if self.samples.is_empty() || buckets == 0 {
            return Vec::new();
        }
        if self.samples.len() <= buckets {
            return self.samples.clone();
        }
        let per = self.samples.len().div_ceil(buckets);
        self.samples
            .chunks(per)
            .map(|chunk| {
                let mid = chunk[chunk.len() / 2].0;
                let mean = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
                (mid, mean)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_everything_under_capacity() {
        let mut ts = TimeSeries::new(100);
        for i in 0..50u64 {
            ts.record(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(ts.points().len(), 50);
        assert_eq!(ts.total_recorded(), 50);
        assert_eq!(ts.min(), 0.0);
        assert_eq!(ts.max(), 49.0);
        assert!((ts.mean() - 24.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_memory_under_flood() {
        let mut ts = TimeSeries::new(64);
        for i in 0..1_000_000u64 {
            ts.record(SimTime::from_millis(i), (i % 100) as f64);
        }
        assert!(
            ts.points().len() < 64,
            "stayed bounded: {}",
            ts.points().len()
        );
        assert_eq!(ts.total_recorded(), 1_000_000);
        // Time ordering preserved.
        assert!(ts.points().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn decimation_preserves_shape() {
        // A slow ramp: after decimation the stored series still spans the
        // full range monotonically.
        let mut ts = TimeSeries::new(32);
        let n = 10_000u64;
        for i in 0..n {
            ts.record(SimTime::from_millis(i), i as f64);
        }
        let pts = ts.points();
        assert!(pts.windows(2).all(|w| w[1].1 > w[0].1), "still a ramp");
        assert!(pts[0].1 < 1000.0, "keeps early samples");
        assert!(
            pts.last().unwrap().1 > (n as f64) * 0.8,
            "keeps late samples"
        );
    }

    #[test]
    fn resample_buckets() {
        let mut ts = TimeSeries::new(1024);
        for i in 0..600u64 {
            ts.record(SimTime::from_secs(i), if i < 300 { 0.0 } else { 10.0 });
        }
        let r = ts.resample(10);
        assert!(r.len() <= 10);
        assert!(r.first().unwrap().1 < 1.0, "early buckets low");
        assert!(r.last().unwrap().1 > 9.0, "late buckets high");
        // Fewer samples than buckets: identity.
        let mut small = TimeSeries::new(16);
        small.record(SimTime::ZERO, 1.0);
        assert_eq!(small.resample(10).len(), 1);
        assert!(small.resample(0).is_empty());
    }

    #[test]
    fn empty_series_stats_are_nan() {
        let ts = TimeSeries::new(8);
        assert!(ts.min().is_nan());
        assert!(ts.max().is_nan());
        assert!(ts.mean().is_nan());
        assert!(ts.resample(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_capacity_rejected() {
        let _ = TimeSeries::new(1);
    }
}
