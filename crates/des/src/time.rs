//! Simulation time: integer nanoseconds since simulation start.
//!
//! Floating-point clocks accumulate representation error and make event
//! ordering platform-dependent; an unsigned 64-bit nanosecond counter gives
//! ~584 years of range, exact arithmetic, and a total order.

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock (nanoseconds since time zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future — useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to the nearest nanosecond; negative
    /// values saturate to zero).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimTime(0);
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier` (saturating at zero).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds; negatives saturate to zero).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer multiplication.
    #[must_use]
    pub const fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1500));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn negative_and_nan_saturate() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500_000_000);
        let mut t2 = SimTime::from_secs(1);
        t2 += SimDuration::from_secs(2);
        assert_eq!(t2, SimTime::from_secs(3));
        let d = SimDuration::from_secs(3) - SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(2));
        // Subtraction saturates rather than wrapping.
        let d = SimDuration::from_secs(1) - SimDuration::from_secs(5);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(20).times(50),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimTime::MAX,
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3),
                SimTime::MAX
            ]
        );
    }

    #[test]
    fn round_trips_and_display() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-9);
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_millis(20)), "0.020000s");
        assert!((SimDuration::from_millis(20).as_millis_f64() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_add_at_horizon() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
