//! The future-event list and simulation driver.
//!
//! Events of user type `E` are kept in a binary max-heap wrapped so that the
//! *earliest* time pops first; simultaneous events pop in scheduling (FIFO)
//! order thanks to a monotonically increasing sequence number. This stable
//! tie-break is what makes runs reproducible: a SIP 200-OK scheduled before
//! an RTP packet at the same instant is always delivered first.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: fire time, insertion sequence, payload.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event list.
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// An empty scheduler with pre-reserved capacity for `cap` events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Scheduler {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulation time (the fire time of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires
    /// immediately after the current one, preserving causality rather than
    /// panicking deep inside a long run.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue went back in time");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Fire time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (throughput accounting).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A world that consumes events and schedules follow-ups.
pub trait EventHandler<E> {
    /// Handle `event` firing at time `at`; schedule any follow-up events on
    /// `sched`.
    fn handle(&mut self, at: SimTime, event: E, sched: &mut Scheduler<E>);
}

/// Outcome of driving a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed.
    Progressed,
    /// The event queue is empty.
    Exhausted,
    /// The time horizon was reached (the next event lies beyond it and
    /// remains queued).
    HorizonReached,
}

/// Couples a [`Scheduler`] with an [`EventHandler`] world and drives the
/// event loop.
pub struct Simulation<W, E> {
    /// The world state (public: experiments read results out of it).
    pub world: W,
    /// The future-event list.
    pub sched: Scheduler<E>,
    events_processed: u64,
}

impl<W: EventHandler<E>, E> Simulation<W, E> {
    /// Build a simulation around an initial world.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// Process a single event, honouring an optional time horizon.
    pub fn step(&mut self, horizon: SimTime) -> StepOutcome {
        match self.sched.peek_time() {
            None => StepOutcome::Exhausted,
            Some(t) if t > horizon => StepOutcome::HorizonReached,
            Some(_) => {
                let (at, ev) = self.sched.pop().expect("peeked event vanished");
                self.world.handle(at, ev, &mut self.sched);
                self.events_processed += 1;
                StepOutcome::Progressed
            }
        }
    }

    /// Run until the queue empties or the horizon passes; returns the number
    /// of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.events_processed;
        while self.step(horizon) == StepOutcome::Progressed {}
        self.events_processed - start
    }

    /// Run to queue exhaustion.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(3), "c");
        s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            s.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(5), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(10), "later");
        s.pop();
        s.schedule(SimTime::from_secs(1), "past");
        let (t, e) = s.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_secs(10), "clamped to now");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(2), "first");
        s.pop();
        s.schedule_in(SimDuration::from_secs(3), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn bookkeeping() {
        let mut s = Scheduler::<u8>::with_capacity(16);
        assert!(s.is_empty());
        s.schedule(SimTime::from_secs(1), 1);
        s.schedule(SimTime::from_secs(2), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.scheduled_total(), 2);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(1)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.scheduled_total(), 2, "clear keeps the total");
    }

    /// A world that multiplies: every event spawns `n-1` follow-ups.
    struct Spawner {
        fired: Vec<(SimTime, u32)>,
    }
    impl EventHandler<u32> for Spawner {
        fn handle(&mut self, at: SimTime, n: u32, sched: &mut Scheduler<u32>) {
            self.fired.push((at, n));
            if n > 0 {
                sched.schedule(at + SimDuration::from_secs(1), n - 1);
            }
        }
    }

    #[test]
    fn simulation_drives_cascades() {
        let mut sim = Simulation::new(Spawner { fired: vec![] });
        sim.sched.schedule(SimTime::from_secs(1), 3u32);
        let n = sim.run_to_completion();
        assert_eq!(n, 4);
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(
            sim.world.fired,
            vec![
                (SimTime::from_secs(1), 3),
                (SimTime::from_secs(2), 2),
                (SimTime::from_secs(3), 1),
                (SimTime::from_secs(4), 0),
            ]
        );
    }

    #[test]
    fn horizon_stops_but_keeps_events() {
        let mut sim = Simulation::new(Spawner { fired: vec![] });
        sim.sched.schedule(SimTime::from_secs(1), 10u32);
        let n = sim.run_until(SimTime::from_secs(3));
        assert_eq!(n, 3, "events at t=1,2,3");
        assert_eq!(sim.step(SimTime::from_secs(3)), StepOutcome::HorizonReached);
        assert_eq!(sim.sched.len(), 1, "t=4 event still queued");
        // Extending the horizon resumes.
        let n2 = sim.run_to_completion();
        assert_eq!(n2, 8);
        assert_eq!(sim.step(SimTime::MAX), StepOutcome::Exhausted);
    }

    #[test]
    fn large_heap_remains_ordered() {
        // Pseudo-random insertion order, verify global ordering on drain.
        let mut s = Scheduler::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.schedule(SimTime::from_nanos(x % 1_000_000), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = s.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
