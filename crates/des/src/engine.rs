//! The future-event list and simulation driver.
//!
//! Events of user type `E` are kept in one of two interchangeable
//! future-event-list backends:
//!
//! * **Heap** — a binary max-heap wrapped so that the *earliest* time pops
//!   first. This is the reference implementation: small, obviously correct,
//!   and the baseline every optimisation is validated against.
//! * **Wheel** — a hierarchical timing wheel: a ring of near-term buckets
//!   (each [`WHEEL_SLOT_NS`] wide, [`WHEEL_SLOTS`] of them, ≈2 s of
//!   horizon) plus an overflow heap for far-future events. Scheduling into
//!   the near term touches a bucket-local heap of a handful of events
//!   instead of a global heap of thousands, which is what makes the
//!   media-saturated capacity runs cheap. Overflow events are promoted
//!   into their bucket when the cursor reaches their slot.
//!
//! Either way, simultaneous events pop in scheduling (FIFO) order thanks to
//! a monotonically increasing sequence number shared by both backends. This
//! stable `(time, seq)` tie-break is what makes runs reproducible: a SIP
//! 200-OK scheduled before an RTP packet at the same instant is always
//! delivered first, and the two backends produce bit-identical pop orders
//! (enforced by `tests/determinism.rs`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Width of one near-term wheel bucket in nanoseconds (≈0.52 ms — finer
/// than the 20 ms media frame period, coarser than LAN hop latencies, so
/// in-flight packets land a few buckets ahead of the cursor).
pub const WHEEL_SLOT_NS: u64 = 1 << 19;

/// Number of near-term buckets; the wheel horizon is
/// `WHEEL_SLOT_NS × WHEEL_SLOTS` ≈ 2.1 s. Hangups (120 s holding times),
/// registration expiries and scheduled faults overflow to the far heap.
pub const WHEEL_SLOTS: usize = 4096;

/// A pending event: fire time, insertion sequence, payload.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which future-event-list backend a [`Scheduler`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Global binary heap — the reference implementation.
    #[default]
    Heap,
    /// Hierarchical timing wheel with overflow heap — the fast path.
    Wheel,
}

/// Hierarchical timing wheel: near-term bucket ring + far-future overflow.
///
/// Invariants (checked by the cross-backend determinism tests):
/// * every bucket holds only events whose absolute slot lies in
///   `[cursor, cursor + WHEEL_SLOTS)`;
/// * overflow events always have `slot > cursor` (promotion happens the
///   moment the cursor arrives at a slot, before anything pops from it);
/// * `(time, seq)` orders pops exactly like the global heap.
struct TimingWheel<E> {
    buckets: Vec<BinaryHeap<Scheduled<E>>>,
    overflow: BinaryHeap<Scheduled<E>>,
    /// Absolute slot index the wheel has drained up to.
    cursor: u64,
    /// Events currently resident in buckets.
    wheel_len: usize,
    /// Total pending events (buckets + overflow).
    len: usize,
}

fn slot_of(at: SimTime) -> u64 {
    at.as_nanos() / WHEEL_SLOT_NS
}

impl<E> TimingWheel<E> {
    fn new() -> Self {
        TimingWheel {
            // Seed every bucket with a minimal capacity so the steady
            // state never pays a first-push allocation as the cursor
            // sweeps into previously untouched slots (~3 MB once, versus
            // thousands of one-off allocations spread over early
            // revolutions).
            buckets: (0..WHEEL_SLOTS)
                .map(|_| BinaryHeap::with_capacity(4))
                .collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            wheel_len: 0,
            len: 0,
        }
    }

    fn bucket_index(&self, abs_slot: u64) -> usize {
        (abs_slot % WHEEL_SLOTS as u64) as usize
    }

    fn push(&mut self, s: Scheduled<E>) {
        // Events behind the cursor (the clock trails the cursor after a
        // horizon stop) are clamped into the cursor bucket; (time, seq)
        // ordering inside the bucket keeps the pop order exact.
        let slot = slot_of(s.at).max(self.cursor);
        self.len += 1;
        if slot < self.cursor + WHEEL_SLOTS as u64 {
            let idx = self.bucket_index(slot);
            self.buckets[idx].push(s);
            self.wheel_len += 1;
        } else {
            self.overflow.push(s);
        }
    }

    /// Move overflow events whose slot the cursor has reached into their
    /// bucket so they merge into the (time, seq) order.
    fn promote_due(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if slot_of(top.at) > self.cursor {
                break;
            }
            let s = self.overflow.pop().expect("peeked overflow entry");
            let idx = self.bucket_index(slot_of(s.at));
            self.buckets[idx].push(s);
            self.wheel_len += 1;
        }
    }

    /// Absolute slot of the next non-empty bucket at or after the cursor.
    fn next_bucket_slot(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        (0..WHEEL_SLOTS as u64)
            .map(|off| self.cursor + off)
            .find(|&slot| !self.buckets[self.bucket_index(slot)].is_empty())
    }

    /// Advance the cursor to the slot holding the next event (promoting
    /// overflow on arrival). Returns false when nothing is pending.
    fn seek_next(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            self.promote_due();
            if !self.buckets[self.bucket_index(self.cursor)].is_empty() {
                return true;
            }
            let wheel_next = self.next_bucket_slot();
            let over_next = self.overflow.peek().map(|s| slot_of(s.at));
            self.cursor = match (wheel_next, over_next) {
                (Some(w), Some(o)) => w.min(o),
                (Some(w), None) => w,
                (None, Some(o)) => o,
                (None, None) => return false,
            };
        }
    }

    /// Fire key of the next event without mutating the wheel.
    fn next_key(&self) -> Option<(SimTime, u64)> {
        let over = self.overflow.peek().map(|s| (s.at, s.seq));
        let wheel = self
            .next_bucket_slot()
            .and_then(|slot| self.buckets[self.bucket_index(slot)].peek())
            .map(|s| (s.at, s.seq));
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Pop the next event if it fires at or before `horizon`.
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<Scheduled<E>> {
        if !self.seek_next() {
            return None;
        }
        let idx = self.bucket_index(self.cursor);
        if self.buckets[idx].peek().map(|s| s.at) > Some(horizon) {
            return None;
        }
        let s = self.buckets[idx].pop().expect("seek found an event");
        self.wheel_len -= 1;
        self.len -= 1;
        Some(s)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Wheel(Box<TimingWheel<E>>),
}

/// The future-event list.
pub struct Scheduler<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    /// Sequence-stream offset: keys are `counter * stride + lane`.
    ///
    /// A standalone scheduler uses `lane = 0, stride = 1`, which makes the
    /// key exactly the insertion counter (the historical behaviour).
    /// Sharded runs give every shard its own lane with `stride = shards`,
    /// so keys are globally unique across shards and a cross-shard event
    /// carries the same `(time, seq)` no matter which executor delivers
    /// it — that key equality is what makes the parallel executor
    /// digest-exact against the sequential one.
    lane: u64,
    stride: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty heap-backed scheduler at time zero (the reference backend).
    #[must_use]
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::Heap)
    }

    /// An empty scheduler on the chosen backend.
    #[must_use]
    pub fn with_kind(kind: SchedulerKind) -> Self {
        Self::with_kind_and_capacity(kind, 0)
    }

    /// An empty heap-backed scheduler with pre-reserved capacity for `cap`
    /// events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kind_and_capacity(SchedulerKind::Heap, cap)
    }

    /// An empty scheduler on the chosen backend, pre-sized for roughly
    /// `cap` concurrently pending events (the heap reserves exactly; the
    /// wheel sizes its overflow, since bucket occupancy is self-limiting).
    #[must_use]
    pub fn with_kind_and_capacity(kind: SchedulerKind, cap: usize) -> Self {
        let backend = match kind {
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::with_capacity(cap)),
            SchedulerKind::Wheel => {
                let mut wheel = TimingWheel::new();
                wheel.overflow.reserve(cap / 4);
                Backend::Wheel(Box::new(wheel))
            }
        };
        Scheduler {
            backend,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            lane: 0,
            stride: 1,
        }
    }

    /// Assign this scheduler a sequence lane: keys become
    /// `counter * stride + lane` instead of the bare counter.
    ///
    /// Must be called before anything is scheduled — the lane is part of
    /// every key, and re-laning a live queue would reorder ties.
    ///
    /// # Panics
    /// If events were already scheduled, `stride` is zero, or
    /// `lane >= stride`.
    pub fn set_seq_stream(&mut self, lane: u64, stride: u64) {
        assert_eq!(
            self.scheduled_total, 0,
            "sequence lane must be set before the first schedule"
        );
        assert!(stride > 0 && lane < stride, "lane must lie within stride");
        self.lane = lane;
        self.stride = stride;
    }

    /// The `(lane, stride)` pair keys are drawn from (see
    /// [`Scheduler::set_seq_stream`]); `(0, 1)` for a standalone
    /// scheduler.
    #[must_use]
    pub fn seq_stream(&self) -> (u64, u64) {
        (self.lane, self.stride)
    }

    /// Allocate the next sequence key without scheduling anything.
    ///
    /// Cross-shard sends are stamped by the *source* shard: the source
    /// consumes one of its keys here and the destination inserts the
    /// event with [`Scheduler::schedule_keyed`]. Because the key is fixed
    /// at send time, the pop order at the destination is independent of
    /// when (or on which thread) the message is delivered.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq * self.stride + self.lane;
        self.next_seq += 1;
        seq
    }

    /// Insert an event carrying a pre-allocated sequence key (from
    /// [`Scheduler::alloc_seq`] on the sending scheduler). Does not
    /// consume a local key. `at` is clamped to `now` like
    /// [`Scheduler::schedule`].
    pub fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        let at = at.max(self.now);
        self.scheduled_total += 1;
        let s = Scheduled { at, seq, event };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(s),
            Backend::Wheel(wheel) => wheel.push(s),
        }
    }

    /// Which backend this scheduler runs on.
    #[must_use]
    pub fn kind(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// The current simulation time (the fire time of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires
    /// immediately after the current one, preserving causality rather than
    /// panicking deep inside a long run.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq * self.stride + self.lane;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let s = Scheduled { at, seq, event };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(s),
            Backend::Wheel(wheel) => wheel.push(s),
        }
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Pop the next event only if it fires at or before `horizon`,
    /// advancing the clock to its fire time. A single call replaces the
    /// peek-then-pop sequence the event loop used to make; on the wheel
    /// backend the peek would cost a bucket scan, so the fused form is
    /// what [`Simulation::step`] and `run_until` drive.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let s = match &mut self.backend {
            Backend::Heap(heap) => {
                if heap.peek().map(|s| s.at) > Some(horizon) {
                    return None;
                }
                heap.pop()?
            }
            Backend::Wheel(wheel) => wheel.pop_at_or_before(horizon)?,
        };
        debug_assert!(s.at >= self.now, "event queue went back in time");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// `(time, seq)` key of the next pending event, if any.
    ///
    /// Mutating so the wheel backend can advance its cursor (promoting
    /// overflow on the way) instead of scanning all buckets: after
    /// `seek_next` the cursor bucket holds the globally minimal key,
    /// because every other bucket and the overflow hold only events in
    /// strictly later slots. The sharded executors lean on this to merge
    /// per-shard queues by key without popping.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|s| (s.at, s.seq)),
            Backend::Wheel(wheel) => {
                if !wheel.seek_next() {
                    return None;
                }
                let idx = wheel.bucket_index(wheel.cursor);
                wheel.buckets[idx].peek().map(|s| (s.at, s.seq))
            }
        }
    }

    /// Fire time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|s| s.at),
            Backend::Wheel(wheel) => wheel.next_key().map(|(at, _)| at),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len,
        }
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (throughput accounting).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events without changing the clock.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Wheel(wheel) => wheel.clear(),
        }
    }
}

/// A world that consumes events and schedules follow-ups.
pub trait EventHandler<E> {
    /// Handle `event` firing at time `at`; schedule any follow-up events on
    /// `sched`.
    fn handle(&mut self, at: SimTime, event: E, sched: &mut Scheduler<E>);
}

/// Outcome of driving a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed.
    Progressed,
    /// The event queue is empty.
    Exhausted,
    /// The time horizon was reached (the next event lies beyond it and
    /// remains queued).
    HorizonReached,
}

/// Couples a [`Scheduler`] with an [`EventHandler`] world and drives the
/// event loop.
pub struct Simulation<W, E> {
    /// The world state (public: experiments read results out of it).
    pub world: W,
    /// The future-event list.
    pub sched: Scheduler<E>,
    events_processed: u64,
}

impl<W: EventHandler<E>, E> Simulation<W, E> {
    /// Build a simulation around an initial world (heap scheduler).
    pub fn new(world: W) -> Self {
        Self::with_scheduler(world, Scheduler::new())
    }

    /// Build a simulation around an initial world and a pre-built (and
    /// possibly pre-sized / wheel-backed) scheduler.
    pub fn with_scheduler(world: W, sched: Scheduler<E>) -> Self {
        Simulation {
            world,
            sched,
            events_processed: 0,
        }
    }

    /// Process a single event, honouring an optional time horizon.
    pub fn step(&mut self, horizon: SimTime) -> StepOutcome {
        match self.sched.pop_at_or_before(horizon) {
            Some((at, ev)) => {
                self.world.handle(at, ev, &mut self.sched);
                self.events_processed += 1;
                StepOutcome::Progressed
            }
            None if self.sched.is_empty() => StepOutcome::Exhausted,
            None => StepOutcome::HorizonReached,
        }
    }

    /// Run until the queue empties or the horizon passes; returns the number
    /// of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.events_processed;
        while let Some((at, ev)) = self.sched.pop_at_or_before(horizon) {
            self.world.handle(at, ev, &mut self.sched);
            self.events_processed += 1;
        }
        self.events_processed - start
    }

    /// Run to queue exhaustion.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const BOTH: [SchedulerKind; 2] = [SchedulerKind::Heap, SchedulerKind::Wheel];

    #[test]
    fn pops_in_time_order() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            s.schedule(SimTime::from_secs(3), "c");
            s.schedule(SimTime::from_secs(1), "a");
            s.schedule(SimTime::from_secs(2), "b");
            let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{kind:?}");
        }
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                s.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            s.schedule(SimTime::from_secs(5), ());
            assert_eq!(s.now(), SimTime::ZERO);
            s.pop();
            assert_eq!(s.now(), SimTime::from_secs(5), "{kind:?}");
        }
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            s.schedule(SimTime::from_secs(10), "later");
            s.pop();
            s.schedule(SimTime::from_secs(1), "past");
            let (t, e) = s.pop().unwrap();
            assert_eq!(e, "past");
            assert_eq!(t, SimTime::from_secs(10), "clamped to now ({kind:?})");
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            s.schedule(SimTime::from_secs(2), "first");
            s.pop();
            s.schedule_in(SimDuration::from_secs(3), "second");
            let (t, _) = s.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(5), "{kind:?}");
        }
    }

    #[test]
    fn bookkeeping() {
        for kind in BOTH {
            let mut s = Scheduler::<u8>::with_kind_and_capacity(kind, 16);
            assert!(s.is_empty());
            assert_eq!(s.kind(), kind);
            s.schedule(SimTime::from_secs(1), 1);
            s.schedule(SimTime::from_secs(2), 2);
            assert_eq!(s.len(), 2);
            assert_eq!(s.scheduled_total(), 2);
            assert_eq!(s.peek_time(), Some(SimTime::from_secs(1)));
            s.clear();
            assert!(s.is_empty());
            assert_eq!(s.scheduled_total(), 2, "clear keeps the total");
        }
    }

    #[test]
    fn pop_at_or_before_honours_horizon() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            s.schedule(SimTime::from_secs(1), "a");
            s.schedule(SimTime::from_secs(3), "b");
            assert_eq!(
                s.pop_at_or_before(SimTime::from_secs(2)).map(|(_, e)| e),
                Some("a")
            );
            assert_eq!(s.pop_at_or_before(SimTime::from_secs(2)), None);
            assert_eq!(s.len(), 1, "event beyond horizon stays queued");
            // The clock did not move past the horizon refusal.
            assert_eq!(s.now(), SimTime::from_secs(1));
            assert_eq!(
                s.pop_at_or_before(SimTime::MAX).map(|(_, e)| e),
                Some("b"),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn wheel_overflow_events_merge_in_order() {
        // Far-future events (beyond the ~2 s wheel horizon) must interleave
        // exactly with near-term events scheduled later for the same times.
        let horizon_ns = WHEEL_SLOT_NS * WHEEL_SLOTS as u64;
        let mut w = Scheduler::with_kind(SchedulerKind::Wheel);
        let mut h = Scheduler::new();
        for s in [&mut w, &mut h] {
            // Beyond the horizon at insert time: lands in overflow.
            s.schedule(SimTime::from_nanos(horizon_ns + 5), "far-first");
            s.schedule(SimTime::from_nanos(horizon_ns + 5), "far-second");
            s.schedule(SimTime::from_nanos(10), "near");
        }
        loop {
            let a = w.pop();
            let b = h.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
            // After draining "near", schedule a same-time rival that goes
            // straight into a bucket while its twin sits in overflow.
            if a.map(|(_, e)| e) == Some("near") {
                w.schedule(SimTime::from_nanos(horizon_ns + 5), "bucket-late");
                h.schedule(SimTime::from_nanos(horizon_ns + 5), "bucket-late");
            }
        }
    }

    #[test]
    fn backends_pop_identically_under_random_load() {
        // Mixed near/far/simultaneous churn: both backends must agree on
        // every (time, seq) pop, including re-scheduling during the drain.
        let mut w = Scheduler::with_kind(SchedulerKind::Wheel);
        let mut h = Scheduler::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..5000u32 {
            // Spread between sub-slot times and multi-second far times.
            let t = next() % 5_000_000_000;
            w.schedule(SimTime::from_nanos(t), i);
            h.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = 0u32;
        loop {
            let a = w.pop();
            let b = h.pop();
            assert_eq!(a, b, "diverged after {popped} pops");
            let Some((t, _)) = a else { break };
            popped += 1;
            // Occasionally re-inject near the current time.
            if popped.is_multiple_of(7) {
                let dt = next() % 50_000_000;
                w.schedule(t + SimDuration::from_nanos(dt), 1_000_000 + popped);
                h.schedule(t + SimDuration::from_nanos(dt), 1_000_000 + popped);
            }
        }
        assert!(popped > 5000);
    }

    /// A world that multiplies: every event spawns `n-1` follow-ups.
    struct Spawner {
        fired: Vec<(SimTime, u32)>,
    }
    impl EventHandler<u32> for Spawner {
        fn handle(&mut self, at: SimTime, n: u32, sched: &mut Scheduler<u32>) {
            self.fired.push((at, n));
            if n > 0 {
                sched.schedule(at + SimDuration::from_secs(1), n - 1);
            }
        }
    }

    #[test]
    fn simulation_drives_cascades() {
        let mut sim = Simulation::new(Spawner { fired: vec![] });
        sim.sched.schedule(SimTime::from_secs(1), 3u32);
        let n = sim.run_to_completion();
        assert_eq!(n, 4);
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(
            sim.world.fired,
            vec![
                (SimTime::from_secs(1), 3),
                (SimTime::from_secs(2), 2),
                (SimTime::from_secs(3), 1),
                (SimTime::from_secs(4), 0),
            ]
        );
    }

    #[test]
    fn horizon_stops_but_keeps_events() {
        for kind in BOTH {
            let mut sim =
                Simulation::with_scheduler(Spawner { fired: vec![] }, Scheduler::with_kind(kind));
            sim.sched.schedule(SimTime::from_secs(1), 10u32);
            let n = sim.run_until(SimTime::from_secs(3));
            assert_eq!(n, 3, "events at t=1,2,3 ({kind:?})");
            assert_eq!(sim.step(SimTime::from_secs(3)), StepOutcome::HorizonReached);
            assert_eq!(sim.sched.len(), 1, "t=4 event still queued");
            // Extending the horizon resumes.
            let n2 = sim.run_to_completion();
            assert_eq!(n2, 8);
            assert_eq!(sim.step(SimTime::MAX), StepOutcome::Exhausted);
        }
    }

    #[test]
    fn seq_streams_interleave_like_a_single_counter() {
        // Two laned schedulers cross-feeding each other must pop ties in
        // the deterministic lane-interleaved key order on both backends.
        for kind in BOTH {
            let mut a = Scheduler::with_kind(kind);
            let mut b = Scheduler::with_kind(kind);
            a.set_seq_stream(0, 2);
            b.set_seq_stream(1, 2);
            let t = SimTime::from_secs(1);
            a.schedule(t, "a0"); // key 0
            b.schedule(t, "b0"); // key 1
            let cross = b.alloc_seq(); // key 3 (b's counter is at 1)
            a.schedule(t, "a1"); // key 2
            a.schedule_keyed(t, cross, "b->a");
            let order: Vec<_> = std::iter::from_fn(|| a.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a0", "a1", "b->a"], "{kind:?}");
            assert_eq!(b.pop().map(|(_, e)| e), Some("b0"));
        }
    }

    #[test]
    fn schedule_keyed_counts_and_clamps() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            s.schedule(SimTime::from_secs(5), "now-mover");
            s.pop();
            s.schedule_keyed(SimTime::from_secs(1), 99, "past");
            assert_eq!(s.scheduled_total(), 2, "keyed inserts count ({kind:?})");
            let (t, e) = s.pop().unwrap();
            assert_eq!((t, e), (SimTime::from_secs(5), "past"), "clamped to now");
        }
    }

    #[test]
    #[should_panic(expected = "before the first schedule")]
    fn set_seq_stream_rejects_live_queue() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(1), ());
        s.set_seq_stream(0, 2);
    }

    #[test]
    fn peek_key_matches_pop_under_random_load() {
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            let mut x: u64 = 0x1234_5678_9ABC_DEF0;
            for i in 0..3000u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.schedule(SimTime::from_nanos(x % 5_000_000_000), i);
            }
            while let Some(key) = s.peek_key() {
                let (at, ev) = s.pop().expect("peeked");
                // Recompute the expected key: seq was assigned in insert order,
                // so just check time agreement plus monotone keys via pops.
                assert_eq!(key.0, at, "{kind:?}");
                let _ = ev;
            }
            assert!(s.pop().is_none());
        }
    }

    #[test]
    fn peek_key_agrees_across_backends() {
        let mut w = Scheduler::with_kind(SchedulerKind::Wheel);
        let mut h = Scheduler::new();
        let horizon_ns = WHEEL_SLOT_NS * WHEEL_SLOTS as u64;
        for s in [&mut w, &mut h] {
            s.schedule(SimTime::from_nanos(horizon_ns + 7), "far");
            s.schedule(SimTime::from_nanos(42), "near");
            s.schedule(SimTime::from_nanos(42), "near-tie");
        }
        loop {
            assert_eq!(w.peek_key(), h.peek_key());
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn large_queue_remains_ordered() {
        // Pseudo-random insertion order, verify global ordering on drain.
        for kind in BOTH {
            let mut s = Scheduler::with_kind(kind);
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.schedule(SimTime::from_nanos(x % 1_000_000), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, ())) = s.pop() {
                assert!(t >= last, "{kind:?}");
                last = t;
            }
        }
    }
}
