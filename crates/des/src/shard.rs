//! Sharded discrete-event execution with a conservative sync horizon.
//!
//! A simulation whose state divides into independent partitions — the
//! capacity farm's PBX servers with their pinned calls and media flows —
//! can run one event wheel *per shard* instead of one global wheel.
//! Shards only influence each other through explicit cross-shard
//! messages, and every such message takes at least the **lookahead** `L`
//! of simulated time to arrive (network propagation plus the minimum
//! signalling hop delay). That bound is what makes conservative parallel
//! simulation possible: within any window of width `H ≤ L`, no event a
//! shard executes can schedule work for another shard *inside the same
//! window*, so all shards can burn through a window concurrently and
//! exchange their cross-sends at a barrier before the next window opens.
//!
//! Two executors drive the same [`ShardWorld`] model:
//!
//! * [`ShardedSim::run_sequential`] — a global-interleave reference: one
//!   thread repeatedly pops the globally smallest `(time, seq)` key
//!   across all shard queues. This is exactly the classic single-wheel
//!   event loop, just with the queue split per shard.
//! * [`ShardedSim::run_parallel`] — worker threads own disjoint shard
//!   sets and race through lookahead-wide windows, exchanging cross-shard
//!   messages through per-`(src, dst)` mailboxes at horizon barriers.
//!
//! Both produce **bit-identical results** at any thread count. The key
//! argument: every event carries a `(time, seq)` key where `seq` is
//! allocated from the *sending* shard's lane-striped counter
//! ([`Scheduler::set_seq_stream`]) at send time. Each shard's handler
//! sequence is therefore the key-sorted merge of (a) its own follow-ups
//! and (b) cross-sends stamped by peers — and both executors deliver
//! cross-sends before the destination's clock can reach their fire time
//! (immediately in the sequential interleave; at the window barrier in
//! the parallel one, where `fire ≥ send + L ≥` next window start). Same
//! per-shard event sequences ⇒ same per-shard trajectories ⇒ same
//! digests. Worker count, mailbox drain order and barrier timing are all
//! invisible to the model.

use crate::engine::Scheduler;
use crate::pool;
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A cross-shard message in flight: destination shard, fire time, and the
/// sequence key allocated by the *sender* at send time.
struct CrossMsg<E> {
    dst: usize,
    at: SimTime,
    seq: u64,
    ev: E,
}

/// Handler context for one shard: its private scheduler plus the
/// cross-shard send port.
pub struct ShardCtx<'a, E> {
    /// The shard's private future-event list — schedule local follow-ups
    /// here exactly as in a single-wheel simulation.
    pub sched: &'a mut Scheduler<E>,
    outbox: &'a mut Vec<CrossMsg<E>>,
    shard: usize,
    shards: usize,
    lookahead: SimDuration,
}

impl<E> ShardCtx<'_, E> {
    /// This shard's index.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the simulation.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The conservative lookahead: the minimum simulated delay every
    /// cross-shard send must respect.
    #[must_use]
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Send `ev` to shard `dst`, firing at absolute time `at`.
    ///
    /// A send to the local shard is an ordinary schedule. A cross-shard
    /// send consumes one of this shard's sequence keys so the destination
    /// pops it at a position independent of delivery timing.
    ///
    /// # Panics
    /// If `dst` is out of range, or a cross-shard `at` violates the
    /// lookahead bound (`at < now + lookahead`) — that would let an event
    /// land inside the currently executing window and break determinism.
    pub fn send(&mut self, dst: usize, at: SimTime, ev: E) {
        if dst == self.shard {
            self.sched.schedule(at, ev);
            return;
        }
        assert!(dst < self.shards, "shard {dst} out of range");
        assert!(
            at >= self.sched.now().saturating_add(self.lookahead),
            "cross-shard send violates the conservative lookahead"
        );
        let seq = self.sched.alloc_seq();
        self.outbox.push(CrossMsg { dst, at, seq, ev });
    }
}

/// A world partition that handles its shard's events and may message
/// other shards through the context.
pub trait ShardWorld: Send {
    /// The event type flowing through every shard's wheel.
    type Ev: Send;

    /// Handle `ev` firing at `at` on this shard. Local follow-ups go on
    /// `ctx.sched`; cross-shard work goes through [`ShardCtx::send`] and
    /// must respect the lookahead.
    fn handle(&mut self, at: SimTime, ev: Self::Ev, ctx: &mut ShardCtx<'_, Self::Ev>);
}

/// `mail[src][dst]`: cross-sends from shard `src` to shard `dst`,
/// flushed before the exchange barrier and drained after it.
type MailGrid<E> = Vec<Vec<Mutex<Vec<CrossMsg<E>>>>>;

/// One shard: its world partition, private scheduler, and bookkeeping.
struct ShardCell<W: ShardWorld> {
    world: W,
    sched: Scheduler<W::Ev>,
    events: u64,
    outbox: Vec<CrossMsg<W::Ev>>,
}

/// What an executor run did: totals for throughput accounting plus the
/// parallel-only synchronization costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Events handled across all shards by this call.
    pub events: u64,
    /// Worker threads actually used (after the [`pool`] budget clamp);
    /// 1 for the sequential executor.
    pub workers: usize,
    /// Horizon windows executed (0 for the sequential executor).
    pub windows: u64,
    /// Wall-clock seconds worker threads spent blocked at horizon
    /// barriers, summed over workers.
    pub sync_barrier_s: f64,
}

/// A set of shards sharing a conservative lookahead, runnable by either
/// executor.
pub struct ShardedSim<W: ShardWorld> {
    cells: Vec<ShardCell<W>>,
    lookahead: SimDuration,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Build a sharded simulation from primed `(world, scheduler)` pairs.
    ///
    /// Shard `i`'s scheduler must already be laned as
    /// `set_seq_stream(i, n)` **before anything was scheduled on it** —
    /// the lane is part of every event key, and key uniqueness across
    /// shards is what both executors' determinism rests on.
    ///
    /// # Panics
    /// If `cells` is empty, `lookahead` is zero, or a scheduler's lane
    /// does not match its shard index.
    #[must_use]
    pub fn new(lookahead: SimDuration, cells: Vec<(W, Scheduler<W::Ev>)>) -> Self {
        assert!(!cells.is_empty(), "need at least one shard");
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative execution needs a positive lookahead"
        );
        let n = cells.len();
        let cells = cells
            .into_iter()
            .enumerate()
            .map(|(i, (world, sched))| {
                assert_eq!(
                    sched.seq_stream(),
                    (i as u64, n as u64),
                    "shard {i} scheduler is not laned as ({i}, {n})"
                );
                ShardCell {
                    world,
                    sched,
                    events: 0,
                    outbox: Vec::new(),
                }
            })
            .collect();
        ShardedSim { cells, lookahead }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The conservative lookahead this simulation was built with.
    #[must_use]
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Shard `i`'s world, for reading results out after a run.
    #[must_use]
    pub fn world(&self, i: usize) -> &W {
        &self.cells[i].world
    }

    /// Shard `i`'s current clock (fire time of its last handled event).
    #[must_use]
    pub fn shard_now(&self, i: usize) -> SimTime {
        self.cells[i].sched.now()
    }

    /// Events handled by shard `i` so far.
    #[must_use]
    pub fn shard_events(&self, i: usize) -> u64 {
        self.cells[i].events
    }

    /// Consume the simulation, yielding the shard worlds in index order.
    #[must_use]
    pub fn into_worlds(self) -> Vec<W> {
        self.cells.into_iter().map(|c| c.world).collect()
    }

    /// Reference executor: one thread pops the globally smallest
    /// `(time, seq)` key across all shards until every queue is empty or
    /// past `horizon`. Cross-shard sends are delivered immediately —
    /// safe because the lookahead guarantees no destination has reached
    /// their fire time yet.
    pub fn run_sequential(&mut self, horizon: SimTime) -> ExecStats {
        let n = self.cells.len();
        let lookahead = self.lookahead;
        let mut keys: Vec<Option<(SimTime, u64)>> =
            self.cells.iter_mut().map(|c| c.sched.peek_key()).collect();
        let mut events = 0u64;
        loop {
            let mut best: Option<(usize, (SimTime, u64))> = None;
            for (i, k) in keys.iter().enumerate() {
                if let Some(key) = *k {
                    if key.0 <= horizon && best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((i, key));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let cell = &mut self.cells[i];
            let (at, ev) = cell
                .sched
                .pop_at_or_before(horizon)
                .expect("peeked key within horizon");
            let mut ctx = ShardCtx {
                sched: &mut cell.sched,
                outbox: &mut cell.outbox,
                shard: i,
                shards: n,
                lookahead,
            };
            cell.world.handle(at, ev, &mut ctx);
            cell.events += 1;
            events += 1;
            if !cell.outbox.is_empty() {
                let msgs = std::mem::take(&mut cell.outbox);
                for m in msgs {
                    self.cells[m.dst].sched.schedule_keyed(m.at, m.seq, m.ev);
                    keys[m.dst] = self.cells[m.dst].sched.peek_key();
                }
            }
            keys[i] = self.cells[i].sched.peek_key();
        }
        ExecStats {
            events,
            workers: 1,
            windows: 0,
            sync_barrier_s: 0.0,
        }
    }

    /// Parallel executor: up to `threads` workers (clamped by the global
    /// [`pool`] budget and the shard count) own disjoint shard sets and
    /// execute lookahead-wide windows separated by barriers.
    ///
    /// Per window: each worker drains its shards up to the window end,
    /// buffering cross-sends; a barrier makes all mailboxes visible; each
    /// worker sorts inbound messages into its shards' wheels (keys were
    /// stamped at send time, so drain order is irrelevant), publishes the
    /// minimum pending key time over its shards, and a second barrier
    /// lets every worker agree on the next non-empty window — empty
    /// windows are skipped wholesale rather than barriered through.
    ///
    /// Digest-exact versus [`ShardedSim::run_sequential`] at any worker
    /// count.
    pub fn run_parallel(&mut self, horizon: SimTime, threads: usize) -> ExecStats {
        let n = self.cells.len();
        let permit = pool::acquire(threads.max(1).min(n));
        let workers = permit.workers().min(n);
        let h_ns = self.lookahead.as_nanos().max(1);
        let horizon_ns = horizon.as_nanos();

        let mut first = u64::MAX;
        for c in &mut self.cells {
            if let Some((t, _)) = c.sched.peek_key() {
                first = first.min(t.as_nanos());
            }
        }
        if first == u64::MAX || first > horizon_ns {
            return ExecStats {
                events: 0,
                workers,
                windows: 0,
                sync_barrier_s: 0.0,
            };
        }
        let first_window = first / h_ns;

        let events_before: u64 = self.cells.iter().map(|c| c.events).sum();
        let lookahead = self.lookahead;
        let mail: MailGrid<W::Ev> = (0..n)
            .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = Barrier::new(workers);
        // Per-worker minimum pending key time (ns), u64::MAX when idle.
        let mins: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let windows = AtomicU64::new(0);

        // Round-robin shard → worker assignment; workers move their cells
        // into the scope and give them back when it joins.
        let mut assigned: Vec<Vec<(usize, &mut ShardCell<W>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, cell) in self.cells.iter_mut().enumerate() {
            assigned[i % workers].push((i, cell));
        }

        let barrier_nanos: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = assigned
                .into_iter()
                .enumerate()
                .map(|(w, mut cells)| {
                    let (mail, barrier, mins, windows) = (&mail, &barrier, &mins, &windows);
                    s.spawn(move || {
                        let mut waited: u64 = 0;
                        let mut window = first_window;
                        loop {
                            if w == 0 {
                                windows.fetch_add(1, Ordering::Relaxed);
                            }
                            let wh = SimTime::from_nanos(
                                ((window + 1).saturating_mul(h_ns) - 1).min(horizon_ns),
                            );
                            for (idx, cell) in &mut cells {
                                while let Some((at, ev)) = cell.sched.pop_at_or_before(wh) {
                                    let mut ctx = ShardCtx {
                                        sched: &mut cell.sched,
                                        outbox: &mut cell.outbox,
                                        shard: *idx,
                                        shards: n,
                                        lookahead,
                                    };
                                    cell.world.handle(at, ev, &mut ctx);
                                    cell.events += 1;
                                }
                                for m in cell.outbox.drain(..) {
                                    mail[*idx][m.dst].lock().expect("mailbox lock").push(m);
                                }
                            }
                            let t0 = std::time::Instant::now();
                            barrier.wait();
                            waited += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

                            let mut local_min = u64::MAX;
                            for (idx, cell) in &mut cells {
                                for src_row in mail.iter() {
                                    let mut inbox = src_row[*idx].lock().expect("mailbox lock");
                                    for m in inbox.drain(..) {
                                        cell.sched.schedule_keyed(m.at, m.seq, m.ev);
                                    }
                                }
                                if let Some((t, _)) = cell.sched.peek_key() {
                                    local_min = local_min.min(t.as_nanos());
                                }
                            }
                            mins[w].store(local_min, Ordering::SeqCst);
                            let t0 = std::time::Instant::now();
                            barrier.wait();
                            waited += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

                            let global_min = mins
                                .iter()
                                .map(|m| m.load(Ordering::SeqCst))
                                .min()
                                .unwrap_or(u64::MAX);
                            if global_min == u64::MAX || global_min > horizon_ns {
                                break;
                            }
                            window = global_min / h_ns;
                        }
                        waited
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .sum()
        });

        let events_after: u64 = self.cells.iter().map(|c| c.events).sum();
        ExecStats {
            events: events_after - events_before,
            workers,
            windows: windows.load(Ordering::Relaxed),
            sync_barrier_s: barrier_nanos as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SchedulerKind;

    const LOOKAHEAD: SimDuration = SimDuration::from_millis(20);

    /// A deterministic chaos world: every event mixes into a running
    /// digest, spawns a local follow-up, and sometimes fires a
    /// lookahead-respecting message at another shard.
    struct Mixer {
        id: usize,
        n: usize,
        digest: u64,
        state: u64,
        budget: u32,
    }

    fn xorshift(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    impl ShardWorld for Mixer {
        type Ev = u64;
        fn handle(&mut self, at: SimTime, v: u64, ctx: &mut ShardCtx<'_, u64>) {
            self.digest =
                (self.digest ^ at.as_nanos().wrapping_add(v)).wrapping_mul(0x0100_0000_01b3);
            self.state = xorshift(self.state ^ v);
            let r = self.state;
            if self.budget > 0 {
                self.budget -= 1;
                ctx.sched
                    .schedule(at + SimDuration::from_nanos(1 + r % 7_000_000), r);
                if r % 3 == 0 && self.n > 1 {
                    let dst = (self.id + 1 + (r as usize % (self.n - 1))) % self.n;
                    let delay = LOOKAHEAD + SimDuration::from_nanos(r % 50_000_000);
                    ctx.send(dst, at + delay, r ^ 0x00ff_00ff);
                }
            }
        }
    }

    fn build(shards: usize, kind: SchedulerKind) -> ShardedSim<Mixer> {
        let cells = (0..shards)
            .map(|i| {
                let world = Mixer {
                    id: i,
                    n: shards,
                    digest: 0xcbf2_9ce4_8422_2325,
                    state: 0x9E37_79B9 + i as u64,
                    budget: 1500,
                };
                let mut sched = Scheduler::with_kind(kind);
                sched.set_seq_stream(i as u64, shards as u64);
                for k in 0..5u64 {
                    sched.schedule(SimTime::from_nanos(1_000 + 31 * k + i as u64), 0x5eed + k);
                }
                (world, sched)
            })
            .collect();
        ShardedSim::new(LOOKAHEAD, cells)
    }

    fn fingerprint(sim: &ShardedSim<Mixer>) -> Vec<(u64, u64, u64)> {
        (0..sim.shard_count())
            .map(|i| {
                (
                    sim.world(i).digest,
                    sim.shard_events(i),
                    sim.shard_now(i).as_nanos(),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_at_every_width() {
        let _guard = pool::test_guard();
        pool::configure(8);
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let mut reference = build(5, kind);
            let ref_stats = reference.run_sequential(SimTime::MAX);
            assert!(ref_stats.events > 5_000, "cascade actually ran ({kind:?})");
            let expect = fingerprint(&reference);
            for threads in [1usize, 2, 3, 8] {
                let mut sim = build(5, kind);
                let stats = sim.run_parallel(SimTime::MAX, threads);
                assert_eq!(stats.events, ref_stats.events, "{kind:?} t={threads}");
                assert!(stats.windows > 0);
                assert_eq!(
                    fingerprint(&sim),
                    expect,
                    "digest diverged ({kind:?}, threads={threads})"
                );
            }
        }
    }

    #[test]
    fn horizon_stops_both_executors_identically() {
        let _guard = pool::test_guard();
        pool::configure(4);
        let horizon = SimTime::from_millis(200);
        let mut a = build(3, SchedulerKind::Wheel);
        let sa = a.run_sequential(horizon);
        let mut b = build(3, SchedulerKind::Wheel);
        let sb = b.run_parallel(horizon, 2);
        assert_eq!(sa.events, sb.events);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // Resuming past the horizon stays exact.
        let sa2 = a.run_sequential(SimTime::MAX);
        let sb2 = b.run_parallel(SimTime::MAX, 3);
        assert_eq!(sa2.events, sb2.events);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn single_shard_runs_without_cross_traffic() {
        let _guard = pool::test_guard();
        pool::configure(2);
        let mut a = build(1, SchedulerKind::Heap);
        let sa = a.run_sequential(SimTime::MAX);
        let mut b = build(1, SchedulerKind::Heap);
        let sb = b.run_parallel(SimTime::MAX, 4);
        assert_eq!(sb.workers, 1, "worker count clamps to shard count");
        assert_eq!(sa.events, sb.events);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn lookahead_violation_is_caught() {
        struct Rude;
        impl ShardWorld for Rude {
            type Ev = ();
            fn handle(&mut self, at: SimTime, (): (), ctx: &mut ShardCtx<'_, ()>) {
                ctx.send(1, at + SimDuration::from_nanos(1), ());
            }
        }
        let cells = (0..2)
            .map(|i| {
                let mut sched = Scheduler::<()>::new();
                sched.set_seq_stream(i as u64, 2);
                if i == 0 {
                    sched.schedule(SimTime::from_secs(1), ());
                }
                (Rude, sched)
            })
            .collect();
        let mut sim = ShardedSim::new(LOOKAHEAD, cells);
        sim.run_sequential(SimTime::MAX);
    }
}
