//! Process-wide worker-thread budget.
//!
//! Parallelism in this workspace nests: the farm and Fig. 6 studies fan
//! replications out across threads, and a sharded run ([`crate::shard`])
//! fans a *single* replication out across per-PBX worker threads. Each
//! layer sizing itself from `available_parallelism` alone would
//! oversubscribe the machine quadratically (R replications × S shards
//! threads for R×S ≫ cores). This module is the arbiter: one global
//! budget, sized once, from which every sharded executor borrows workers
//! and returns them when the run joins.
//!
//! The budget is advisory-but-honoured: [`acquire`] never blocks and
//! never grants zero — a caller that finds the budget exhausted runs on
//! its own thread (one worker), which is exactly the degradation you
//! want when replication-level parallelism already covers the cores.
//! Worker counts only affect wall-clock, never results: the sharded
//! executors are digest-exact at any width, so clamping is invisible to
//! science.

use std::sync::atomic::{AtomicUsize, Ordering};

/// `usize::MAX` marks "not yet configured"; first use latches the
/// default from `available_parallelism`.
static BUDGET: AtomicUsize = AtomicUsize::new(usize::MAX);
/// Workers currently borrowed (beyond the borrowing threads themselves).
static IN_USE: AtomicUsize = AtomicUsize::new(0);

fn default_budget() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Set the process-wide worker budget (the `--threads N` CLI knob).
/// Overrides any earlier value; pass the number of cores you want the
/// whole process — all nesting levels combined — to use.
pub fn configure(threads: usize) {
    BUDGET.store(threads.max(1), Ordering::SeqCst);
}

/// The configured budget, defaulting (and latching) to
/// `available_parallelism` on first call.
pub fn total() -> usize {
    let b = BUDGET.load(Ordering::SeqCst);
    if b != usize::MAX {
        return b;
    }
    let d = default_budget();
    // Racing first calls both compute the same default; either store wins.
    let _ = BUDGET.compare_exchange(usize::MAX, d, Ordering::SeqCst, Ordering::SeqCst);
    BUDGET.load(Ordering::SeqCst)
}

/// A borrowed slice of the worker budget. Dropping it returns the
/// workers.
#[derive(Debug)]
pub struct Permit {
    granted: usize,
}

impl Permit {
    /// How many worker threads this permit covers (≥ 1: the caller's own
    /// thread is always available even when the budget is exhausted).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.granted.max(1)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.granted > 0 {
            IN_USE.fetch_sub(self.granted, Ordering::SeqCst);
        }
    }
}

/// Borrow up to `want` workers from the budget without blocking.
///
/// Grants `min(want, free)` slots; if nothing is free the permit still
/// reports one worker (the caller runs inline) but holds no slots, so
/// nested acquisitions cannot multiply threads past the budget.
pub fn acquire(want: usize) -> Permit {
    let budget = total();
    let mut free = budget.saturating_sub(IN_USE.load(Ordering::SeqCst));
    loop {
        let take = want.min(free);
        if take == 0 {
            return Permit { granted: 0 };
        }
        let prev = IN_USE.fetch_add(take, Ordering::SeqCst);
        if prev + take <= budget {
            return Permit { granted: take };
        }
        // Raced past the budget: give the over-grab back and retry with
        // the shrunken view.
        IN_USE.fetch_sub(take, Ordering::SeqCst);
        free = budget.saturating_sub(prev);
    }
}

/// Serializes tests that reconfigure the process-global budget so they
/// cannot interleave with each other.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
use std::sync::Mutex;

#[cfg(test)]
mod tests {
    use super::*;

    // The budget statics are process-global, so exercise the whole
    // lifecycle in one test to avoid cross-test interference.
    #[test]
    fn budget_grants_and_returns() {
        let _guard = test_guard();
        configure(4);
        assert_eq!(total(), 4);
        let a = acquire(3);
        assert_eq!(a.workers(), 3);
        let b = acquire(3);
        assert_eq!(b.workers(), 1, "only one slot left");
        let c = acquire(8);
        assert_eq!(c.workers(), 1, "exhausted budget still yields a worker");
        drop(a);
        let d = acquire(8);
        assert_eq!(d.workers(), 3, "released workers are reusable");
        drop((b, c, d));
        let e = acquire(4);
        assert_eq!(e.workers(), 4);
        configure(1);
        drop(e);
        let f = acquire(2);
        assert_eq!(f.workers(), 1, "reconfigure shrinks the budget");
    }
}
