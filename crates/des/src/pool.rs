//! Process-wide worker-thread budget.
//!
//! Parallelism in this workspace nests: the farm and Fig. 6 studies fan
//! replications out across threads, and a sharded run ([`crate::shard`])
//! fans a *single* replication out across per-PBX worker threads. Each
//! layer sizing itself from `available_parallelism` alone would
//! oversubscribe the machine quadratically (R replications × S shards
//! threads for R×S ≫ cores). This module is the arbiter: one global
//! budget, sized once, from which every sharded executor borrows workers
//! and returns them when the run joins.
//!
//! The budget is advisory-but-honoured: [`acquire`] never blocks and
//! never grants zero — a caller that finds the budget exhausted runs on
//! its own thread (one worker), which is exactly the degradation you
//! want when replication-level parallelism already covers the cores.
//! Worker counts only affect wall-clock, never results: the sharded
//! executors are digest-exact at any width, so clamping is invisible to
//! science.

use std::sync::atomic::{AtomicUsize, Ordering};

/// `usize::MAX` marks "not yet configured"; first use latches the
/// default from `available_parallelism`.
static BUDGET: AtomicUsize = AtomicUsize::new(usize::MAX);
/// Workers currently borrowed (beyond the borrowing threads themselves).
static IN_USE: AtomicUsize = AtomicUsize::new(0);

fn default_budget() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Set the process-wide worker budget (the `--threads N` CLI knob).
/// Overrides any earlier value; pass the number of cores you want the
/// whole process — all nesting levels combined — to use.
pub fn configure(threads: usize) {
    BUDGET.store(threads.max(1), Ordering::SeqCst);
}

/// The configured budget, defaulting (and latching) to
/// `available_parallelism` on first call.
pub fn total() -> usize {
    let b = BUDGET.load(Ordering::SeqCst);
    if b != usize::MAX {
        return b;
    }
    let d = default_budget();
    // Racing first calls both compute the same default; either store wins.
    let _ = BUDGET.compare_exchange(usize::MAX, d, Ordering::SeqCst, Ordering::SeqCst);
    BUDGET.load(Ordering::SeqCst)
}

/// A borrowed slice of the worker budget. Dropping it returns the
/// workers.
#[derive(Debug)]
pub struct Permit {
    granted: usize,
}

impl Permit {
    /// How many worker threads this permit covers (≥ 1: the caller's own
    /// thread is always available even when the budget is exhausted).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.granted.max(1)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.granted > 0 {
            IN_USE.fetch_sub(self.granted, Ordering::SeqCst);
        }
    }
}

/// Borrow up to `want` workers from the budget without blocking.
///
/// Grants `min(want, free)` slots; if nothing is free the permit still
/// reports one worker (the caller runs inline) but holds no slots, so
/// nested acquisitions cannot multiply threads past the budget.
pub fn acquire(want: usize) -> Permit {
    let budget = total();
    let mut free = budget.saturating_sub(IN_USE.load(Ordering::SeqCst));
    loop {
        let take = want.min(free);
        if take == 0 {
            return Permit { granted: 0 };
        }
        let prev = IN_USE.fetch_add(take, Ordering::SeqCst);
        if prev + take <= budget {
            return Permit { granted: take };
        }
        // Raced past the budget: give the over-grab back and retry with
        // the shrunken view.
        IN_USE.fetch_sub(take, Ordering::SeqCst);
        free = budget.saturating_sub(prev);
    }
}

/// Serializes tests that reconfigure the process-global budget so they
/// cannot interleave with each other. Public because the budget is
/// process-global: any downstream crate whose tests call [`configure`]
/// (the sweep executor's width-invariance checks, the determinism
/// proptests) must hold this guard for the same reason tests in this
/// crate do. Not for production code — holding it does not serialize
/// [`acquire`].
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The budget statics are process-global, so exercise the whole
    // lifecycle in one test to avoid cross-test interference.
    #[test]
    fn budget_grants_and_returns() {
        let _guard = test_guard();
        configure(4);
        assert_eq!(total(), 4);
        let a = acquire(3);
        assert_eq!(a.workers(), 3);
        let b = acquire(3);
        assert_eq!(b.workers(), 1, "only one slot left");
        let c = acquire(8);
        assert_eq!(c.workers(), 1, "exhausted budget still yields a worker");
        drop(a);
        let d = acquire(8);
        assert_eq!(d.workers(), 3, "released workers are reusable");
        drop((b, c, d));
        let e = acquire(4);
        assert_eq!(e.workers(), 4);
        configure(1);
        drop(e);
        let f = acquire(2);
        assert_eq!(f.workers(), 1, "reconfigure shrinks the budget");
    }

    #[test]
    fn first_use_latches_one_default_under_racing_callers() {
        let _guard = test_guard();
        // Un-latch the budget so this test exercises the first-use path,
        // then race a handful of threads through `total()`: every caller
        // must observe the same latched value, and it must be the
        // machine default.
        BUDGET.store(usize::MAX, Ordering::SeqCst);
        let seen: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(total)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let latched = default_budget();
        assert!(
            seen.iter().all(|&b| b == latched),
            "racing first calls agree: {seen:?}"
        );
        assert_eq!(total(), latched, "later calls see the latched value");
        // Leave the budget configured so later tests (under their own
        // guard) start from a known state.
        configure(latched);
    }

    #[test]
    fn exhausted_budget_never_grants_zero_workers() {
        let _guard = test_guard();
        configure(2);
        let hog = acquire(2);
        assert_eq!(hog.workers(), 2);
        // With every slot taken, concurrent acquirers still each get a
        // worker (their own thread) — the inline-degradation guarantee.
        let widths: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| acquire(3).workers())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            widths.iter().all(|&w| w == 1),
            "exhausted acquires: {widths:?}"
        );
        drop(hog);
        // The zero-slot permits held no budget, so nothing leaked: the
        // full budget is borrowable again.
        assert_eq!(acquire(2).workers(), 2);
    }

    #[test]
    fn permit_returns_workers_on_drop_in_any_order() {
        let _guard = test_guard();
        configure(4);
        let a = acquire(2);
        let b = acquire(2);
        assert_eq!((a.workers(), b.workers()), (2, 2));
        // Return out of acquisition order; each drop frees exactly its
        // own slots.
        drop(a);
        assert_eq!(acquire(4).workers(), 2, "a's two slots came back");
        drop(b);
        assert_eq!(acquire(4).workers(), 4, "all four slots back");
        // A permit granted zero slots must not "return" phantom workers.
        let hog = acquire(4);
        let empty = acquire(1);
        assert_eq!(empty.workers(), 1);
        drop(empty);
        assert_eq!(acquire(4).workers(), 1, "zero-slot drop freed nothing");
        drop(hog);
    }
}
