//! Generation-tagged logical timer cancellation.
//!
//! The scheduler's event wheel has no random-access delete — and should
//! not grow one: the hot path is push/pop-min, and the few places that
//! need "cancel that timer" can afford to let the stale event surface
//! and discard it. The idiom this module packages is the *generation
//! counter*: the owner keeps a [`Generation`] next to the state a timer
//! guards, stamps every scheduled event with [`Generation::current`],
//! and bumps the counter ([`Generation::invalidate`]) whenever the
//! guarded state changes. A surfacing event whose stamp no longer
//! matches ([`Generation::is_current`]) is a cancelled timer: O(1) to
//! "delete", no wheel surgery, and — crucially for this repo — the same
//! event is popped in the same order on every scheduler backend and
//! thread count, so digests stay bit-identical whether a timer was
//! cancelled or merely ignored.
//!
//! The population arrival engine is the flagship user: one pending
//! next-arrival event exists per generator, and every call start/end
//! invalidates it (the exponential's memorylessness makes
//! resample-from-now exact, see `loadgen::population`). The type is
//! deliberately tiny so any other subsystem with a "latest schedule
//! wins" timer can adopt the same discipline.

use serde::{Deserialize, Serialize};

/// A monotonically increasing generation counter for stale-timer
/// detection. `Copy`-cheap stamps, O(1) cancel, no scheduler support
/// needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Generation(u64);

/// The stamp a [`Generation`] issues; carry it inside the scheduled
/// event and check it when the event surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GenTag(u64);

impl Generation {
    /// A fresh counter (generation 0, nothing invalidated yet).
    #[must_use]
    pub fn new() -> Self {
        Generation::default()
    }

    /// The stamp to attach to an event scheduled *now*: valid until the
    /// next [`Generation::invalidate`].
    #[must_use]
    pub fn current(&self) -> GenTag {
        GenTag(self.0)
    }

    /// Cancel every outstanding stamp. Events carrying an older tag
    /// become stale; the new current tag is returned for convenience.
    pub fn invalidate(&mut self) -> GenTag {
        self.0 += 1;
        GenTag(self.0)
    }

    /// Does `tag` still name the live schedule? `false` means the event
    /// was logically cancelled and must be discarded without effect.
    #[must_use]
    pub fn is_current(&self, tag: GenTag) -> bool {
        self.0 == tag.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tag_is_current_until_invalidated() {
        let mut g = Generation::new();
        let t = g.current();
        assert!(g.is_current(t));
        g.invalidate();
        assert!(!g.is_current(t), "stamp cancelled by the bump");
        assert!(g.is_current(g.current()));
    }

    #[test]
    fn invalidate_returns_the_new_live_tag() {
        let mut g = Generation::new();
        let t = g.invalidate();
        assert!(g.is_current(t));
        let old = t;
        let newer = g.invalidate();
        assert!(!g.is_current(old));
        assert!(g.is_current(newer));
    }

    #[test]
    fn stale_events_discard_in_scheduler_order() {
        // The full idiom against a real scheduler: three timers armed,
        // the first two cancelled by re-arms; only the final generation
        // fires an effect, and events still pop in time order.
        use crate::engine::Scheduler;
        let mut sched: Scheduler<GenTag> = Scheduler::new();
        let mut g = Generation::new();
        let mut fired = Vec::new();
        sched.schedule(crate::SimTime::from_secs(1), g.current());
        sched.schedule(crate::SimTime::from_secs(2), g.invalidate());
        sched.schedule(crate::SimTime::from_secs(3), g.invalidate());
        while let Some((at, tag)) = sched.pop() {
            if g.is_current(tag) {
                fired.push(at.as_secs_f64() as u64);
            }
        }
        assert_eq!(fired, vec![3], "only the live generation fires");
    }
}
