//! Output-analysis statistics for simulation experiments.
//!
//! Everything here is O(1) per observation (the histogram is O(1) amortised)
//! so instrumentation never dominates the event loop, per the performance
//! guidance this workspace follows.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A simple monotone counter.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record an observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (NaN when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (NaN below two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (∞ when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. number of
/// busy channels, queue depth, CPU utilisation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    area: f64,
    start: SimTime,
    peak: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A fresh accumulator; the signal is undefined until [`Self::set`].
    #[must_use]
    pub fn new() -> Self {
        TimeWeighted {
            last_t: SimTime::ZERO,
            last_v: 0.0,
            area: 0.0,
            start: SimTime::ZERO,
            peak: 0.0,
            started: false,
        }
    }

    /// Record that the signal takes value `v` from time `t` onward.
    pub fn set(&mut self, t: SimTime, v: f64) {
        if self.started {
            self.area += self.last_v * t.since(self.last_t).as_secs_f64();
        } else {
            self.start = t;
            self.started = true;
        }
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Current signal value.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Peak signal value observed.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, until]` (NaN before any sample or
    /// over a zero-length window).
    #[must_use]
    pub fn mean_until(&self, until: SimTime) -> f64 {
        if !self.started {
            return f64::NAN;
        }
        let span = until.since(self.start).as_secs_f64();
        if span <= 0.0 {
            return f64::NAN;
        }
        let tail = self.last_v * until.since(self.last_t).as_secs_f64();
        (self.area + tail) / span
    }
}

/// Fixed-width bucket histogram with overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `buckets` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// If `hi <= lo` or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo && buckets > 0, "degenerate histogram");
        Histogram {
            lo,
            width: (hi - lo) / buckets as f64,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Total observations recorded (including out-of-range).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of in-range buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range top.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile by linear interpolation within the bucket
    /// (`q` in `[0,1]`; NaN when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target {
                let into = (target - seen) as f64 / c.max(1) as f64;
                return self.lo + (i as f64 + into) * self.width;
            }
            seen += c;
        }
        self.lo + self.buckets.len() as f64 * self.width
    }
}

/// Batch-means confidence interval for a stream of (possibly autocorrelated)
/// simulation outputs.
///
/// Observations are grouped into fixed-size batches; the batch means are
/// treated as approximately i.i.d. normal, yielding a Student-t interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    in_batch: u64,
    batch_sum: f64,
    means: Vec<f64>,
}

impl BatchMeans {
    /// Batches of `batch_size` observations each.
    ///
    /// # Panics
    /// If `batch_size == 0`.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans {
            batch_size,
            in_batch: 0,
            batch_sum: 0.0,
            means: Vec::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.batch_sum += x;
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            self.means.push(self.batch_sum / self.batch_size as f64);
            self.batch_sum = 0.0;
            self.in_batch = 0;
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.means.len()
    }

    /// Grand mean over completed batches (NaN when none).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.means.is_empty() {
            return f64::NAN;
        }
        self.means.iter().sum::<f64>() / self.means.len() as f64
    }

    /// Half-width of the ~95% confidence interval (NaN below two batches).
    #[must_use]
    pub fn half_width_95(&self) -> f64 {
        let k = self.means.len();
        if k < 2 {
            return f64::NAN;
        }
        let mean = self.mean();
        let var = self.means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (k - 1) as f64;
        t_95(k - 1) * (var / k as f64).sqrt()
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (table for small df, normal limit beyond).
fn t_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::NAN
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Distributions, StreamRng};

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!((w.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let mut w1 = Welford::new();
        w1.record(3.0);
        assert_eq!(w1.mean(), 3.0);
        assert!(w1.variance().is_nan());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut rng = StreamRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..1000).map(|_| rng.normal(10.0, 3.0)).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..400] {
            a.record(x);
        }
        for &x in &xs[400..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merging an empty accumulator is a no-op in both directions.
        let empty = Welford::new();
        let before = a.mean();
        a.merge(&empty);
        assert_eq!(a.mean(), before);
        let mut e2 = Welford::new();
        e2.merge(&a);
        assert_eq!(e2.count(), a.count());
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(0), 0.0);
        tw.set(SimTime::from_secs(10), 4.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 2.0); // 4 for 10s
                                             // Mean over [0,30]: (0·10 + 4·10 + 2·10)/30 = 2.0
        let m = tw.mean_until(SimTime::from_secs(30));
        assert!((m - 2.0).abs() < 1e-12);
        assert_eq!(tw.current(), 2.0);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_empty_and_zero_window() {
        let tw = TimeWeighted::new();
        assert!(tw.mean_until(SimTime::from_secs(5)).is_nan());
        let mut tw2 = TimeWeighted::new();
        tw2.set(SimTime::from_secs(5), 1.0);
        assert!(tw2.mean_until(SimTime::from_secs(5)).is_nan());
    }

    #[test]
    fn time_weighted_busy_channels_shape() {
        // A call arriving at t=0 and leaving at t=60 within a 120 s window
        // occupies 0.5 channels on average.
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 1.0);
        tw.set(SimTime::from_secs(60), 0.0);
        let m = tw.mean_until(SimTime::from_secs(120));
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(f64::from(i) / 10.0); // 0.0..9.9 uniformly
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.num_buckets(), 10);
        for i in 0..10 {
            assert_eq!(h.bucket(i), 10);
        }
        let med = h.quantile(0.5);
        assert!((med - 5.0).abs() < 0.5, "median={med}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 9.0).abs() < 0.5, "p90={p90}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
        assert!(Histogram::new(0.0, 1.0, 1).quantile(0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn batch_means_covers_true_mean() {
        // AR(1)-ish correlated stream with known mean 50.
        let mut rng = StreamRng::seed_from_u64(77);
        let mut bm = BatchMeans::new(500);
        let mut x = 50.0;
        for _ in 0..50_000 {
            x = 0.9 * x + 0.1 * rng.normal(50.0, 10.0);
            bm.record(x);
        }
        assert!(bm.batches() == 100);
        let mean = bm.mean();
        let hw = bm.half_width_95();
        assert!(hw.is_finite() && hw > 0.0);
        assert!(
            (mean - 50.0).abs() < 3.0 * hw.max(0.5),
            "mean={mean} hw={hw}"
        );
    }

    #[test]
    fn batch_means_degenerate() {
        let mut bm = BatchMeans::new(10);
        assert!(bm.mean().is_nan());
        assert!(bm.half_width_95().is_nan());
        for _ in 0..10 {
            bm.record(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.mean(), 1.0);
        assert!(bm.half_width_95().is_nan(), "one batch has no interval");
    }

    #[test]
    fn t_table_monotone_towards_normal() {
        assert!(t_95(1) > t_95(2));
        assert!(t_95(29) > t_95(31));
        assert_eq!(t_95(1000), 1.96);
        assert!(t_95(0).is_nan());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford never loses observations and the mean stays within
        /// [min, max].
        #[test]
        fn welford_mean_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut w = Welford::new();
            for &x in &xs { w.record(x); }
            prop_assert_eq!(w.count(), xs.len() as u64);
            prop_assert!(w.mean() >= w.min() - 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
        }

        /// Merge is equivalent to concatenation for any split point.
        #[test]
        fn welford_merge_any_split(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut whole = Welford::new();
            for &x in &xs { whole.record(x); }
            let mut a = Welford::new();
            let mut b = Welford::new();
            for &x in &xs[..split] { a.record(x); }
            for &x in &xs[split..] { b.record(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        }

        /// Histogram conserves observations across buckets + out-of-range.
        #[test]
        fn histogram_conservation(xs in proptest::collection::vec(-10.0f64..20.0, 0..300)) {
            let mut h = Histogram::new(0.0, 10.0, 13);
            for &x in &xs { h.record(x); }
            let in_buckets: u64 = (0..h.num_buckets()).map(|i| h.bucket(i)).sum();
            prop_assert_eq!(in_buckets + h.underflow() + h.overflow(), xs.len() as u64);
        }

        /// Quantiles are monotone in q.
        #[test]
        fn histogram_quantile_monotone(xs in proptest::collection::vec(0.0f64..10.0, 1..200)) {
            let mut h = Histogram::new(0.0, 10.0, 20);
            for &x in &xs { h.record(x); }
            let q25 = h.quantile(0.25);
            let q50 = h.quantile(0.5);
            let q75 = h.quantile(0.75);
            prop_assert!(q25 <= q50 + 1e-9);
            prop_assert!(q50 <= q75 + 1e-9);
        }
    }
}
