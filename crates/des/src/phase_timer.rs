//! Wall-clock phase attribution for the event loop.
//!
//! A capacity run spends its wall time in a handful of distinct kinds of
//! work — SIP signalling, media companding, RTP relaying, monitor scoring
//! — plus the scheduler machinery that dispatches between them. Knowing
//! the split is what turns "the run is slow" into "companding is 60 % of
//! the wall clock", so the media-plane optimisations can be verified in
//! the report instead of guessed at from totals.
//!
//! The timer is compiled out unless the `phase-timing` cargo feature is
//! enabled: without it [`PhaseTimer::measure`] is a direct call of the
//! closure with no clock reads, no state, and nothing for the optimiser
//! to keep alive — the hot path pays nothing. With the feature on, each
//! `measure` costs two monotonic clock reads, which is accurate enough to
//! rank the buckets but adds a few percent of overhead on packet-rate
//! events; benchmark numbers meant for records should be taken with the
//! feature off and the breakdown captured in a separate profiling run.

use serde::{Deserialize, Serialize};

/// The kinds of handler work the simulation attributes wall time to.
/// The scheduler bucket is not measured directly — it is whatever part of
/// the total wall clock no handler claimed (see
/// [`PhaseTimer::breakdown`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// SIP parsing, state machines, call placement and teardown.
    Signalling = 0,
    /// PCM synthesis and G.711 companding of media frames.
    MediaEncode = 1,
    /// Moving RTP datagrams through links and the PBX relay.
    Relay = 2,
    /// Monitor taps: per-packet RTP statistics and SIP accounting.
    Scoring = 3,
    /// Decoding SIP wire bytes back into structured messages (the
    /// reference signalling path's eager re-parse; zero on the interned
    /// path, which is the point of measuring it separately).
    SipWire = 4,
    /// Waiting at a sharded-executor horizon barrier (workers that reach
    /// the window end early idle here until the slowest shard arrives).
    SyncBarrier = 5,
    /// Eager SDP body decode/rebuild on SDP-bearing hops (the reference
    /// signalling path's owned parse + serialize per INVITE/200; zero on
    /// the interned path, which cuts through with a structured body).
    SdpWire = 6,
}

const PHASES: usize = 7;

/// Seconds of wall clock attributed to each bucket of a run.
///
/// `enabled` records whether the producing binary was compiled with
/// `phase-timing`; when it is `false` every bucket is zero and consumers
/// (the text report, the bench emitters) should omit the breakdown rather
/// than print zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Whether the breakdown was actually measured.
    pub enabled: bool,
    /// Event-loop overhead: pop/push, dispatch, and anything no handler
    /// bucket claimed.
    pub scheduler_s: f64,
    /// Time in SIP signalling handlers.
    pub signalling_s: f64,
    /// Time synthesising and companding media frames.
    pub media_encode_s: f64,
    /// Time relaying RTP through the network and PBX.
    pub relay_s: f64,
    /// Time scoring packets in the monitor.
    pub scoring_s: f64,
    /// Time re-parsing SIP wire bytes into messages (reference
    /// signalling path only; the interned path never serializes on the
    /// hot path, so this bucket stays zero there).
    pub sip_wire_s: f64,
    /// Time worker threads spent blocked at sharded-run horizon barriers
    /// (zero for sequential execution). Summed across workers, so on an
    /// `N`-thread run it can exceed the run's wall clock.
    pub sync_barrier_s: f64,
    /// Time eagerly parsing/rebuilding SDP bodies on SDP-bearing hops
    /// (reference signalling path only; the interned path carries a
    /// structured session description, so this bucket stays zero there).
    pub sdp_wire_s: f64,
}

impl PhaseBreakdown {
    /// Sum of the measured handler buckets (excludes the scheduler
    /// remainder and barrier wait).
    #[must_use]
    pub fn handler_total_s(&self) -> f64 {
        self.signalling_s
            + self.media_encode_s
            + self.relay_s
            + self.scoring_s
            + self.sip_wire_s
            + self.sdp_wire_s
    }

    /// Fold another breakdown into this one, bucket by bucket. Sharded
    /// runs keep one `PhaseBreakdown` per shard (each accumulated on
    /// whatever worker ran the shard, with no cross-thread sharing) and
    /// sum them at join time, so `--features phase-timing` reports stay
    /// meaningful under parallel execution.
    pub fn absorb(&mut self, other: &PhaseBreakdown) {
        self.enabled |= other.enabled;
        self.scheduler_s += other.scheduler_s;
        self.signalling_s += other.signalling_s;
        self.media_encode_s += other.media_encode_s;
        self.relay_s += other.relay_s;
        self.scoring_s += other.scoring_s;
        self.sip_wire_s += other.sip_wire_s;
        self.sync_barrier_s += other.sync_barrier_s;
        self.sdp_wire_s += other.sdp_wire_s;
    }
}

/// Accumulates per-phase wall time. Zero-cost unless the crate is built
/// with the `phase-timing` feature.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    #[cfg(feature = "phase-timing")]
    nanos: [u64; PHASES],
}

impl PhaseTimer {
    /// A timer with all buckets empty.
    #[must_use]
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Whether this build measures phases (`phase-timing` feature).
    #[must_use]
    pub const fn enabled() -> bool {
        cfg!(feature = "phase-timing")
    }

    /// Run `f`, attributing its wall time to `phase`. Compiles to a plain
    /// call when phase timing is off.
    #[inline]
    pub fn measure<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        #[cfg(feature = "phase-timing")]
        {
            let start = std::time::Instant::now();
            let out = f();
            self.nanos[phase as usize] += u64::try_from(start.elapsed().as_nanos()).unwrap_or(0);
            out
        }
        #[cfg(not(feature = "phase-timing"))]
        {
            let _ = phase;
            f()
        }
    }

    /// Fold the measured buckets into a [`PhaseBreakdown`], attributing
    /// `total_wall_s` minus the handler buckets to the scheduler. Returns
    /// an all-zero, `enabled: false` breakdown when timing is compiled
    /// out.
    #[must_use]
    pub fn breakdown(&self, total_wall_s: f64) -> PhaseBreakdown {
        #[cfg(feature = "phase-timing")]
        {
            let s = |p: Phase| self.nanos[p as usize] as f64 / 1e9;
            let mut b = PhaseBreakdown {
                enabled: true,
                scheduler_s: 0.0,
                signalling_s: s(Phase::Signalling),
                media_encode_s: s(Phase::MediaEncode),
                relay_s: s(Phase::Relay),
                scoring_s: s(Phase::Scoring),
                sip_wire_s: s(Phase::SipWire),
                sync_barrier_s: s(Phase::SyncBarrier),
                sdp_wire_s: s(Phase::SdpWire),
            };
            b.scheduler_s = (total_wall_s - b.handler_total_s() - b.sync_barrier_s).max(0.0);
            b
        }
        #[cfg(not(feature = "phase-timing"))]
        {
            let _ = total_wall_s;
            let _ = PHASES; // used only by the gated field otherwise
            PhaseBreakdown::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_the_closure_value() {
        let mut t = PhaseTimer::new();
        let v = t.measure(Phase::Signalling, || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn breakdown_matches_build_mode() {
        let mut t = PhaseTimer::new();
        t.measure(Phase::MediaEncode, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let b = t.breakdown(1.0);
        if PhaseTimer::enabled() {
            assert!(b.enabled);
            assert!(b.media_encode_s > 0.0, "{b:?}");
            assert!(b.scheduler_s <= 1.0);
            assert!((b.scheduler_s + b.handler_total_s() - 1.0).abs() < 1e-9);
        } else {
            assert_eq!(b, PhaseBreakdown::default());
        }
    }

    #[test]
    fn absorb_sums_every_bucket() {
        let a = PhaseBreakdown {
            enabled: true,
            scheduler_s: 1.0,
            signalling_s: 2.0,
            media_encode_s: 3.0,
            relay_s: 4.0,
            scoring_s: 5.0,
            sip_wire_s: 6.0,
            sync_barrier_s: 7.0,
            sdp_wire_s: 8.0,
        };
        let mut total = PhaseBreakdown::default();
        total.absorb(&a);
        total.absorb(&a);
        assert!(total.enabled);
        assert_eq!(total.sync_barrier_s, 14.0);
        assert_eq!(
            total.handler_total_s(),
            2.0 * (2.0 + 3.0 + 4.0 + 5.0 + 6.0 + 8.0)
        );
        assert_eq!(total.scheduler_s, 2.0);
    }

    #[test]
    fn scheduler_share_never_negative() {
        let mut t = PhaseTimer::new();
        t.measure(Phase::Relay, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // Caller passes a total smaller than the measured buckets (clock
        // skew between the outer and inner timers): clamp at zero.
        let b = t.breakdown(0.0);
        assert!(b.scheduler_s >= 0.0);
    }
}
