//! libpcap capture files from simulated traffic — the literal Wireshark
//! substitution.
//!
//! The paper counts RTP packets with Wireshark; this module lets the
//! simulation produce *actual* `.pcap` files (classic libpcap format,
//! microsecond timestamps, Ethernet link type) that Wireshark/tshark will
//! open, with synthesized Ethernet/IPv4/UDP encapsulation around the real
//! SIP text and RTP datagrams. A matching reader parses the files back
//! for round-trip testing without external tools.

use serde::{Deserialize, Serialize};

/// Classic libpcap magic (microsecond timestamps, native byte order).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Link type LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// A captured packet: timestamp plus the synthesized L2..L4 addressing
/// and the application payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedPacket {
    /// Capture time in microseconds since the start of the run.
    pub timestamp_us: u64,
    /// Source node number (becomes MAC/IP).
    pub src_node: u16,
    /// Destination node number.
    pub dst_node: u16,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Application bytes (SIP text or RTP datagram).
    pub payload: Vec<u8>,
}

/// An in-memory pcap being assembled.
#[derive(Debug, Clone, Default)]
pub struct PcapWriter {
    packets: Vec<CapturedPacket>,
}

impl PcapWriter {
    /// An empty capture.
    #[must_use]
    pub fn new() -> Self {
        PcapWriter::default()
    }

    /// Append one packet.
    pub fn capture(&mut self, pkt: CapturedPacket) {
        self.packets.push(pkt);
    }

    /// Number of packets captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Serialize the capture to libpcap bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.packets.len() * 128);
        // Global header.
        out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // major
        out.extend_from_slice(&4u16.to_le_bytes()); // minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        for p in &self.packets {
            let frame = encapsulate(p);
            out.extend_from_slice(&((p.timestamp_us / 1_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&((p.timestamp_us % 1_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&frame);
        }
        out
    }

    /// Write the capture to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

/// Deterministic MAC for a node: locally administered, node in last bytes.
fn mac_of(node: u16) -> [u8; 6] {
    let n = node.to_be_bytes();
    [0x02, 0x53, 0x49, 0x4D, n[0], n[1]] // 02:53:49:4D = "SIM"
}

/// Deterministic IPv4 for a node: 10.0.(hi).(lo).
fn ip_of(node: u16) -> [u8; 4] {
    let n = node.to_be_bytes();
    [10, 0, n[0], n[1]]
}

/// Build Ethernet + IPv4 + UDP around a payload.
fn encapsulate(p: &CapturedPacket) -> Vec<u8> {
    let udp_len = 8 + p.payload.len();
    let ip_len = 20 + udp_len;
    let mut frame = Vec::with_capacity(14 + ip_len);
    // Ethernet.
    frame.extend_from_slice(&mac_of(p.dst_node));
    frame.extend_from_slice(&mac_of(p.src_node));
    frame.extend_from_slice(&0x0800u16.to_be_bytes());
    // IPv4 header.
    let ip_start = frame.len();
    frame.push(0x45); // version 4, IHL 5
    frame.push(0x00); // DSCP/ECN
    frame.extend_from_slice(&(ip_len as u16).to_be_bytes());
    frame.extend_from_slice(&0u16.to_be_bytes()); // identification
    frame.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
    frame.push(64); // TTL
    frame.push(17); // UDP
    frame.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    frame.extend_from_slice(&ip_of(p.src_node));
    frame.extend_from_slice(&ip_of(p.dst_node));
    // IPv4 header checksum.
    let csum = ipv4_checksum(&frame[ip_start..ip_start + 20]);
    frame[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
    // UDP header (checksum 0 = unset, legal for IPv4).
    frame.extend_from_slice(&p.src_port.to_be_bytes());
    frame.extend_from_slice(&p.dst_port.to_be_bytes());
    frame.extend_from_slice(&(udp_len as u16).to_be_bytes());
    frame.extend_from_slice(&0u16.to_be_bytes());
    frame.extend_from_slice(&p.payload);
    frame
}

/// RFC 791 header checksum.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for pair in header.chunks(2) {
        let word = u16::from_be_bytes([pair[0], *pair.get(1).unwrap_or(&0)]);
        sum += u32::from(word);
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Parse a capture produced by [`PcapWriter::to_bytes`] (or any classic
/// little-endian Ethernet pcap with IPv4/UDP inside).
pub fn read_pcap(bytes: &[u8]) -> Result<Vec<CapturedPacket>, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::Truncated);
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadMagic);
    }
    let network = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    if network != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType);
    }
    let mut out = Vec::new();
    let mut at = 24usize;
    while at < bytes.len() {
        if at + 16 > bytes.len() {
            return Err(PcapError::Truncated);
        }
        let ts_sec = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let ts_usec = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let incl = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()) as usize;
        at += 16;
        if at + incl > bytes.len() {
            return Err(PcapError::Truncated);
        }
        let frame = &bytes[at..at + incl];
        at += incl;
        // Ethernet (14) + IPv4 (20) + UDP (8).
        if frame.len() < 42 {
            return Err(PcapError::MalformedFrame);
        }
        if u16::from_be_bytes([frame[12], frame[13]]) != 0x0800 || frame[23] != 17 {
            return Err(PcapError::MalformedFrame);
        }
        let src_node = u16::from_be_bytes([frame[28], frame[29]]);
        let dst_node = u16::from_be_bytes([frame[32], frame[33]]);
        let src_port = u16::from_be_bytes([frame[34], frame[35]]);
        let dst_port = u16::from_be_bytes([frame[36], frame[37]]);
        let udp_len = u16::from_be_bytes([frame[38], frame[39]]) as usize;
        if udp_len < 8 || 34 + udp_len > frame.len() {
            return Err(PcapError::MalformedFrame);
        }
        out.push(CapturedPacket {
            timestamp_us: u64::from(ts_sec) * 1_000_000 + u64::from(ts_usec),
            src_node,
            dst_node,
            src_port,
            dst_port,
            payload: frame[42..34 + udp_len].to_vec(),
        });
    }
    Ok(out)
}

/// Pcap read failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapError {
    /// File shorter than its declared structure.
    Truncated,
    /// Not a classic little-endian pcap.
    BadMagic,
    /// Not Ethernet-framed.
    UnsupportedLinkType,
    /// Frame too short / not IPv4+UDP.
    MalformedFrame,
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Truncated => write!(f, "truncated pcap"),
            PcapError::BadMagic => write!(f, "not a classic little-endian pcap"),
            PcapError::UnsupportedLinkType => write!(f, "unsupported link type"),
            PcapError::MalformedFrame => write!(f, "malformed Ethernet/IPv4/UDP frame"),
        }
    }
}

impl std::error::Error for PcapError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64, payload: &[u8]) -> CapturedPacket {
        CapturedPacket {
            timestamp_us: ts,
            src_node: 1,
            dst_node: 3,
            src_port: 5060,
            dst_port: 5060,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn empty_capture_is_a_valid_header() {
        let w = PcapWriter::new();
        assert!(w.is_empty());
        let bytes = w.to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(read_pcap(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn write_read_round_trip() {
        let mut w = PcapWriter::new();
        w.capture(sample(1_500_000, b"INVITE sip:x SIP/2.0\r\n\r\n"));
        w.capture(sample(1_520_000, &[0x80, 0x00, 0x12, 0x34]));
        assert_eq!(w.len(), 2);
        let packets = read_pcap(&w.to_bytes()).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].timestamp_us, 1_500_000);
        assert_eq!(packets[0].payload, b"INVITE sip:x SIP/2.0\r\n\r\n");
        assert_eq!(packets[1].src_node, 1);
        assert_eq!(packets[1].dst_node, 3);
        assert_eq!(packets[1].dst_port, 5060);
    }

    #[test]
    fn ip_checksum_is_valid() {
        // Verify the header checksums to zero when re-summed with the
        // checksum field included (the RFC 791 validity criterion).
        let frame = encapsulate(&sample(0, b"x"));
        let header = &frame[14..34];
        let mut sum = 0u32;
        for pair in header.chunks(2) {
            sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum as u16, 0xFFFF, "one's-complement sum must be all ones");
    }

    #[test]
    fn addressing_is_deterministic() {
        assert_eq!(ip_of(3), [10, 0, 0, 3]);
        assert_eq!(ip_of(258), [10, 0, 1, 2]);
        assert_eq!(mac_of(3)[..4], [0x02, 0x53, 0x49, 0x4D]);
        assert_ne!(mac_of(1), mac_of(2));
    }

    #[test]
    fn reader_rejects_garbage() {
        assert_eq!(read_pcap(&[]), Err(PcapError::Truncated));
        assert_eq!(read_pcap(&[0u8; 24]), Err(PcapError::BadMagic));
        let mut w = PcapWriter::new();
        w.capture(sample(0, b"hello"));
        let mut bytes = w.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(read_pcap(&bytes), Err(PcapError::Truncated));
        // Wrong link type.
        let mut hdr = PcapWriter::new().to_bytes();
        hdr[20] = 101; // LINKTYPE_RAW
        assert_eq!(read_pcap(&hdr), Err(PcapError::UnsupportedLinkType));
    }

    #[test]
    fn file_write_works() {
        let mut w = PcapWriter::new();
        w.capture(sample(42, b"BYE sip:x SIP/2.0\r\n\r\n"));
        let dir = std::env::temp_dir().join("vmon-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capture.pcap");
        w.write_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(read_pcap(&bytes).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
