//! Passive traffic analysis — the VoIPmonitor + Wireshark stand-in.
//!
//! The paper observes its testbed with VoIPmonitor (per-call MOS) and
//! Wireshark (RTP packet counts). This crate taps every delivered packet of
//! the simulation and derives the same quantities:
//!
//! * SIP message accounting by method and status code (Table I's
//!   INVITE / 100 TRY / RING / OK / ACK / BYE / error rows);
//! * per-flow RTP statistics — RFC 3550 sequence bookkeeping (loss,
//!   duplicates, reorders) and interarrival jitter, plus one-way delay
//!   sampling;
//! * per-call MOS via the G.107 E-model ([`voiceq`]), mirroring
//!   VoIPmonitor's method — and, like VoIPmonitor (a caveat the paper
//!   makes explicit), scoring **only completed calls**: blocked calls
//!   never carry media and therefore never enter the MOS average.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pcap;

use des::FastMap;
use des::Welford;
use rtpcore::jitter::{JitterEstimator, SequenceTracker};
use rtpcore::packet::RtpHeader;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use voiceq::{CodecProfile, EModelInputs};

/// Identifies one unidirectional media flow as observed at its receiver.
/// The experiment layer builds it from (destination node, destination
/// port), which is unique per leg in this testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl FlowId {
    /// Compose from a node number and a UDP port.
    #[must_use]
    pub fn from_node_port(node: u16, port: u16) -> Self {
        FlowId((u64::from(node) << 16) | u64::from(port))
    }
}

/// Reception statistics of one flow.
#[derive(Debug, Clone)]
pub struct StreamStats {
    tracker: SequenceTracker,
    jitter: JitterEstimator,
    delay: Welford,
    packets: u64,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats {
            tracker: SequenceTracker::new(),
            jitter: JitterEstimator::new(8000.0),
            delay: Welford::new(),
            packets: 0,
        }
    }
}

impl StreamStats {
    /// Packets seen.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Loss fraction so far.
    #[must_use]
    pub fn loss(&self) -> f64 {
        self.tracker.loss_fraction()
    }

    /// Interarrival jitter in milliseconds.
    #[must_use]
    pub fn jitter_ms(&self) -> f64 {
        self.jitter.jitter_ms()
    }

    /// Mean one-way delay in milliseconds.
    #[must_use]
    pub fn mean_delay_ms(&self) -> f64 {
        let m = self.delay.mean();
        if m.is_nan() {
            0.0
        } else {
            m * 1000.0
        }
    }

    /// Observed loss burst ratio (1.0 = random loss; >1 = clumped).
    #[must_use]
    pub fn burst_ratio(&self) -> f64 {
        self.tracker.burst_ratio()
    }
}

/// Aggregate monitor report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Total RTP packets observed (the paper's "Msg" row).
    pub rtp_packets: u64,
    /// Total SIP messages observed.
    pub sip_total: u64,
    /// SIP request counts by method token.
    pub sip_requests: BTreeMap<String, u64>,
    /// SIP response counts by status code.
    pub sip_responses: BTreeMap<u16, u64>,
    /// Mean MOS over completed calls (NaN when none scored).
    pub mos_mean: f64,
    /// Minimum per-call MOS.
    pub mos_min: f64,
    /// Number of calls scored.
    pub calls_scored: u64,
    /// Mean observed packet loss across flows.
    pub mean_loss: f64,
    /// Mean observed jitter (ms) across flows.
    pub mean_jitter_ms: f64,
    /// Number of RTP flows the loss/jitter means were taken over — the
    /// weight [`MonitorReport::merge_all`] needs to recombine per-shard
    /// reports without re-walking streams.
    pub flows: u64,
}

impl MonitorReport {
    /// SIP request count for a method token.
    #[must_use]
    pub fn sip_request_count(&self, method: &str) -> u64 {
        self.sip_requests.get(method).copied().unwrap_or(0)
    }

    /// SIP response count for a status code.
    #[must_use]
    pub fn sip_response_count(&self, code: u16) -> u64 {
        self.sip_responses.get(&code).copied().unwrap_or(0)
    }

    /// Total error-class (≥400) responses.
    #[must_use]
    pub fn sip_error_count(&self) -> u64 {
        self.sip_responses
            .iter()
            .filter(|(c, _)| **c >= 400)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Combine per-shard reports into one run-level report.
    ///
    /// Sharded runs keep a private `Monitor` per shard (flow ids are only
    /// unique within a shard's port space), so aggregation happens here at
    /// report level: counters and SIP maps sum, MOS and loss/jitter means
    /// recombine as weighted means (weights `calls_scored` and [`flows`]
    /// respectively). All folds walk `reports` in slice order — callers
    /// pass shards in index order, making the float sums bit-reproducible
    /// and independent of which thread produced which report.
    ///
    /// [`flows`]: MonitorReport::flows
    #[must_use]
    pub fn merge_all(reports: &[MonitorReport]) -> MonitorReport {
        let mut out = MonitorReport {
            rtp_packets: 0,
            sip_total: 0,
            sip_requests: BTreeMap::new(),
            sip_responses: BTreeMap::new(),
            mos_mean: f64::NAN,
            mos_min: f64::NAN,
            calls_scored: 0,
            mean_loss: 0.0,
            mean_jitter_ms: 0.0,
            flows: 0,
        };
        let mut mos_sum = 0.0;
        let mut loss_sum = 0.0;
        let mut jitter_sum = 0.0;
        for r in reports {
            out.rtp_packets += r.rtp_packets;
            out.sip_total += r.sip_total;
            for (m, n) in &r.sip_requests {
                *out.sip_requests.entry(m.clone()).or_insert(0) += n;
            }
            for (c, n) in &r.sip_responses {
                *out.sip_responses.entry(*c).or_insert(0) += n;
            }
            if r.calls_scored > 0 {
                mos_sum += r.mos_mean * r.calls_scored as f64;
                out.mos_min = if out.mos_min.is_nan() {
                    r.mos_min
                } else {
                    out.mos_min.min(r.mos_min)
                };
                out.calls_scored += r.calls_scored;
            }
            loss_sum += r.mean_loss * r.flows as f64;
            jitter_sum += r.mean_jitter_ms * r.flows as f64;
            out.flows += r.flows;
        }
        if out.calls_scored > 0 {
            out.mos_mean = mos_sum / out.calls_scored as f64;
        }
        let nflows = (out.flows as f64).max(1.0);
        out.mean_loss = loss_sum / nflows;
        out.mean_jitter_ms = jitter_sum / nflows;
        out
    }
}

/// The passive monitor.
///
/// The per-packet flow table is a deterministic [`FastMap`] (it is probed
/// on every delivered RTP packet); every aggregation over it sorts the
/// flow ids first so floating-point summation order — and therefore every
/// reported statistic — stays bit-reproducible across runs and processes.
/// The low-rate SIP maps are ordered (`BTreeMap`).
///
/// Call-ids are interned to `u32` handles when a flow is registered, so
/// nothing on or after the packet path ever hashes or compares a `String`:
/// flows map to handles in a [`FastMap`], and each call's flow list is
/// grouped once at registration (kept sorted by [`FlowId`] so per-call
/// float folds keep the order the old `BTreeMap<FlowId, String>` scan
/// produced). Scoring a call is then O(its flows) instead of a rescan of
/// every registered flow per call.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    streams: FastMap<FlowId, StreamStats>,
    /// Interned call-id names, indexed by handle.
    call_names: Vec<String>,
    /// Call-id → handle; only touched at registration and report time.
    call_handles: BTreeMap<String, u32>,
    /// Flow → interned call handle.
    flow_call: FastMap<FlowId, u32>,
    /// Per-call flow lists, sorted by flow id.
    call_flows: Vec<Vec<FlowId>>,
    /// Retired call-handle slots awaiting reuse (see
    /// [`Monitor::retire_call`]).
    free_calls: Vec<u32>,
    /// Streaming accumulator for calls scored-and-freed by
    /// [`Monitor::retire_call`]; empty (and digest-invisible) unless
    /// retirement is used.
    retired: RetiredCalls,
    sip_requests: BTreeMap<String, u64>,
    sip_responses: BTreeMap<u16, u64>,
    rtp_packets: u64,
}

/// Accumulated statistics of calls already retired: their contribution
/// to the report without their per-call/per-flow state.
#[derive(Debug, Clone, Copy)]
struct RetiredCalls {
    /// MOS fold over retired calls, in retirement order.
    mos: Welford,
    /// Σ loss fraction over retired flows (for the report's flow mean).
    loss_sum: f64,
    /// Σ jitter (ms) over retired flows.
    jitter_sum: f64,
    /// Number of retired flows behind the two sums.
    flows: u64,
}

impl Default for RetiredCalls {
    fn default() -> Self {
        RetiredCalls {
            // NOT `Welford::default()`, whose derived zeros would poison
            // min/max; `new()` seeds them at ±∞.
            mos: Welford::new(),
            loss_sum: 0.0,
            jitter_sum: 0.0,
            flows: 0,
        }
    }
}

impl Monitor {
    /// A fresh monitor.
    #[must_use]
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Associate a flow with a call so per-call quality can be reported.
    /// Re-registering a flow moves it (and its accumulated stream stats)
    /// to the new call — the behaviour a port reuse produces.
    pub fn register_flow(&mut self, flow: FlowId, call_id: &str) {
        let handle = match self.call_handles.get(call_id) {
            Some(&h) => h,
            None => {
                // Recycle a retired call's slot before growing the table:
                // under steady churn with retirement the live table stays
                // O(active calls) rather than O(calls ever observed).
                let h = if let Some(slot) = self.free_calls.pop() {
                    call_id.clone_into(&mut self.call_names[slot as usize]);
                    slot
                } else {
                    let h = u32::try_from(self.call_names.len()).expect("fewer than 2^32 calls");
                    self.call_names.push(call_id.to_owned());
                    self.call_flows.push(Vec::new());
                    h
                };
                self.call_handles.insert(call_id.to_owned(), h);
                h
            }
        };
        if let Some(old) = self.flow_call.insert(flow, handle) {
            if old != handle {
                self.call_flows[old as usize].retain(|&f| f != flow);
            }
        }
        let flows = &mut self.call_flows[handle as usize];
        if let Err(pos) = flows.binary_search(&flow) {
            flows.insert(pos, flow);
        }
    }

    /// Observe one delivered SIP message.
    pub fn tap_sip(&mut self, msg: &sipcore::SipMessage) {
        match msg {
            sipcore::SipMessage::Request(r) => {
                // get_mut first: the entry API would allocate a key String
                // per observed message, and the method set is tiny.
                let token = r.method.as_str();
                match self.sip_requests.get_mut(token) {
                    Some(n) => *n += 1,
                    None => {
                        self.sip_requests.insert(token.to_owned(), 1);
                    }
                }
            }
            sipcore::SipMessage::Response(r) => {
                *self.sip_responses.entry(r.status.0).or_insert(0) += 1;
            }
        }
    }

    /// Observe one delivered RTP packet on `flow`, arriving at wall time
    /// `arrival_s` having spent `delay_s` in the network.
    pub fn tap_rtp(&mut self, flow: FlowId, arrival_s: f64, delay_s: f64, header: &RtpHeader) {
        self.rtp_packets += 1;
        let s = self.streams.entry(flow).or_default();
        s.packets += 1;
        s.tracker.record(header.sequence);
        s.jitter.record(arrival_s, header.timestamp);
        s.delay.record(delay_s);
    }

    /// Statistics of one flow, if observed.
    #[must_use]
    pub fn stream(&self, flow: FlowId) -> Option<&StreamStats> {
        self.streams.get(&flow)
    }

    /// Aggregate `(loss fraction, jitter ms, mean one-way delay ms)` over
    /// every stream that has carried media — the live link-quality signal
    /// the MOS-aware admission law samples. Streams are folded in flow-id
    /// order so the floating-point sums are independent of hash-map
    /// iteration order (determinism across runs and platforms).
    #[must_use]
    pub fn link_quality(&self) -> (f64, f64, f64) {
        let mut flows: Vec<(&FlowId, &StreamStats)> = self
            .streams
            .iter()
            .filter(|(_, s)| s.packets() > 0)
            .collect();
        if flows.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        flows.sort_by_key(|(id, _)| **id);
        let n = flows.len() as f64;
        let (mut loss, mut jitter, mut delay) = (0.0, 0.0, 0.0);
        for (_, s) in flows {
            loss += s.loss();
            jitter += s.jitter_ms();
            delay += s.mean_delay_ms();
        }
        (loss / n, jitter / n, delay / n)
    }

    /// Total observed RTP packets.
    #[must_use]
    pub fn rtp_packets(&self) -> u64 {
        self.rtp_packets
    }

    /// SIP request count for a method token.
    #[must_use]
    pub fn sip_request_count(&self, method: &str) -> u64 {
        self.sip_requests.get(method).copied().unwrap_or(0)
    }

    /// SIP response count for a status code.
    #[must_use]
    pub fn sip_response_count(&self, code: u16) -> u64 {
        self.sip_responses.get(&code).copied().unwrap_or(0)
    }

    /// Total error-class responses observed.
    #[must_use]
    pub fn sip_error_count(&self) -> u64 {
        self.sip_responses
            .iter()
            .filter(|(c, _)| **c >= 400)
            .map(|(_, n)| *n)
            .sum()
    }

    /// The streams of one interned call, in flow-id order, restricted to
    /// flows that have actually carried media.
    fn call_streams(&self, handle: u32) -> Vec<&StreamStats> {
        self.call_flows[handle as usize]
            .iter()
            .filter_map(|flow| self.streams.get(flow))
            .collect()
    }

    fn call_mos_by_handle(&self, handle: u32) -> Option<f64> {
        let flows = self.call_streams(handle);
        if flows.is_empty() {
            return None;
        }
        let n = flows.len() as f64;
        let loss = flows.iter().map(|f| f.loss()).sum::<f64>() / n;
        let delay_ms = flows.iter().map(|f| f.mean_delay_ms()).sum::<f64>() / n;
        let jitter_ms = flows.iter().map(|f| f.jitter_ms()).fold(0.0, f64::max);
        // Worst observed burstiness across the call's directions: clumped
        // loss defeats concealment, and the E-model penalises it.
        let burst_ratio = flows.iter().map(|f| f.burst_ratio()).fold(1.0, f64::max);
        Some(voiceq::estimate_mos(&EModelInputs {
            network_delay_ms: delay_ms,
            // An adaptive jitter buffer sized at twice the observed jitter,
            // floored at two packet times — the common deployment rule.
            jitter_buffer_ms: (2.0 * jitter_ms).max(40.0),
            packet_loss: loss,
            burst_ratio,
            codec: CodecProfile::g711(),
            advantage: 0.0,
        }))
    }

    /// E-model MOS for one call, combining all of its registered flows.
    /// `None` if the call has no media yet.
    #[must_use]
    pub fn call_mos(&self, call_id: &str) -> Option<f64> {
        let handle = *self.call_handles.get(call_id)?;
        self.call_mos_by_handle(handle)
    }

    /// Per-call measurement export as CSV (VoIPmonitor's per-call table):
    /// `call_id,loss,jitter_ms,delay_ms,burst_ratio,mos`, calls sorted by id.
    #[must_use]
    pub fn per_call_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("call_id,loss,jitter_ms,delay_ms,burst_ratio,mos\n");
        // `call_handles` iterates in lexicographic call-id order.
        for (call_id, &handle) in &self.call_handles {
            let flows = self.call_streams(handle);
            if flows.is_empty() {
                continue;
            }
            let n = flows.len() as f64;
            let loss = flows.iter().map(|f| f.loss()).sum::<f64>() / n;
            let jitter = flows.iter().map(|f| f.jitter_ms()).fold(0.0, f64::max);
            let delay = flows.iter().map(|f| f.mean_delay_ms()).sum::<f64>() / n;
            let burst = flows.iter().map(|f| f.burst_ratio()).fold(1.0, f64::max);
            let mos = self.call_mos_by_handle(handle).unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "{call_id},{loss:.6},{jitter:.3},{delay:.3},{burst:.3},{mos:.3}"
            );
        }
        out
    }

    /// Score a finished call now and free all of its per-call and
    /// per-flow state, keeping only its contribution to the aggregate
    /// report. Returns `true` if the call was known.
    ///
    /// This is the monitor's population-scale memory valve: a legacy run
    /// keeps every call until [`Monitor::report`] (bit-identical digests,
    /// nothing changes), while a long churn run retires each call once
    /// its media has drained, so live monitor state is O(active calls)
    /// instead of O(calls ever observed). The call's MOS is folded into a
    /// streaming [`Welford`] *in retirement order* — retirement order is
    /// event order, which is deterministic, so reports stay
    /// bit-reproducible. Retired calls no longer appear in
    /// [`Monitor::per_call_csv`] or [`Monitor::link_quality`] (both are
    /// live-state views).
    pub fn retire_call(&mut self, call_id: &str) -> bool {
        let Some(handle) = self.call_handles.remove(call_id) else {
            return false;
        };
        if let Some(m) = self.call_mos_by_handle(handle) {
            self.retired.mos.record(m);
        }
        let flows = std::mem::take(&mut self.call_flows[handle as usize]);
        for flow in flows {
            self.flow_call.remove(&flow);
            if let Some(s) = self.streams.remove(&flow) {
                self.retired.loss_sum += s.loss();
                self.retired.jitter_sum += s.jitter_ms();
                self.retired.flows += 1;
            }
        }
        self.call_names[handle as usize].clear();
        self.free_calls.push(handle);
        true
    }

    /// Build the aggregate report.
    #[must_use]
    pub fn report(&self) -> MonitorReport {
        // Calls enter the MOS aggregate ordered by their smallest flow id
        // (first occurrence in flow-id order) — the same insertion order
        // the original ordered flow→call map produced, so the Welford
        // float folds are bit-identical. Retired calls were folded at
        // retirement time; their accumulator seeds the fold (empty — and
        // bit-invisible — unless `retire_call` was used).
        let mut mos = self.retired.mos;
        let mut flow_handles: Vec<(FlowId, u32)> =
            self.flow_call.iter().map(|(&f, &h)| (f, h)).collect();
        flow_handles.sort_unstable_by_key(|&(f, _)| f);
        let mut scored = vec![false; self.call_names.len()];
        for (_, handle) in flow_handles {
            if !std::mem::replace(&mut scored[handle as usize], true) {
                if let Some(m) = self.call_mos_by_handle(handle) {
                    mos.record(m);
                }
            }
        }
        // Hash-map iteration order is arbitrary: sort before folding
        // floats so the sums are bit-reproducible. Retired flows
        // contribute their accumulated sums (exactly 0.0 when retirement
        // is unused, leaving the legacy arithmetic bit-identical).
        let mut flows: Vec<(&FlowId, &StreamStats)> = self.streams.iter().collect();
        flows.sort_unstable_by_key(|(id, _)| **id);
        let total_flows = self.retired.flows + flows.len() as u64;
        let nflows = total_flows.max(1) as f64;
        let mean_loss =
            (self.retired.loss_sum + flows.iter().map(|(_, s)| s.loss()).sum::<f64>()) / nflows;
        let mean_jitter = (self.retired.jitter_sum
            + flows.iter().map(|(_, s)| s.jitter_ms()).sum::<f64>())
            / nflows;
        MonitorReport {
            rtp_packets: self.rtp_packets,
            sip_total: self.sip_requests.values().sum::<u64>()
                + self.sip_responses.values().sum::<u64>(),
            sip_requests: self.sip_requests.clone(),
            sip_responses: self.sip_responses.clone(),
            mos_mean: mos.mean(),
            mos_min: mos.min(),
            calls_scored: mos.count(),
            mean_loss,
            mean_jitter_ms: mean_jitter,
            flows: total_flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sipcore::headers::HeaderName;
    use sipcore::{Method, Request, Response, SipUri, StatusCode};

    fn header(seq: u16, ts: u32) -> RtpHeader {
        RtpHeader {
            marker: seq == 0,
            payload_type: 0,
            sequence: seq,
            timestamp: ts,
            ssrc: 0x42,
        }
    }

    fn feed_clean_stream(mon: &mut Monitor, flow: FlowId, packets: u16) {
        for i in 0..packets {
            let t = f64::from(i) * 0.020;
            mon.tap_rtp(flow, t + 0.001, 0.001, &header(i, u32::from(i) * 160));
        }
    }

    #[test]
    fn clean_stream_scores_high_mos() {
        let mut mon = Monitor::new();
        let flow = FlowId::from_node_port(1, 20_000);
        mon.register_flow(flow, "call-1");
        feed_clean_stream(&mut mon, flow, 500);
        let mos = mon.call_mos("call-1").unwrap();
        assert!(mos > 4.3, "mos={mos}");
        let s = mon.stream(flow).unwrap();
        assert_eq!(s.packets(), 500);
        assert_eq!(s.loss(), 0.0);
        assert!(s.jitter_ms() < 0.1);
        assert!((s.mean_delay_ms() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lossy_stream_scores_lower() {
        let mut mon = Monitor::new();
        let flow = FlowId::from_node_port(1, 20_000);
        mon.register_flow(flow, "lossy");
        for i in 0..500u16 {
            if i % 10 == 0 {
                continue; // 10% loss
            }
            let t = f64::from(i) * 0.020;
            mon.tap_rtp(flow, t + 0.001, 0.001, &header(i, u32::from(i) * 160));
        }
        let mos = mon.call_mos("lossy").unwrap();
        assert!(mos < 3.9, "mos={mos}");
    }

    #[test]
    fn both_directions_combine() {
        let mut mon = Monitor::new();
        let f1 = FlowId::from_node_port(1, 20_000);
        let f2 = FlowId::from_node_port(2, 30_000);
        mon.register_flow(f1, "c");
        mon.register_flow(f2, "c");
        feed_clean_stream(&mut mon, f1, 100);
        // Second direction suffers loss; combined MOS sits between.
        for i in 0..100u16 {
            if i % 5 == 0 {
                continue;
            }
            mon.tap_rtp(
                f2,
                f64::from(i) * 0.02,
                0.002,
                &header(i, u32::from(i) * 160),
            );
        }
        let combined = mon.call_mos("c").unwrap();
        let clean_only = {
            let mut m2 = Monitor::new();
            m2.register_flow(f1, "c");
            feed_clean_stream(&mut m2, f1, 100);
            m2.call_mos("c").unwrap()
        };
        assert!(combined < clean_only);
        assert!(combined > 3.0);
    }

    #[test]
    fn unknown_call_has_no_mos() {
        let mon = Monitor::new();
        assert!(mon.call_mos("nope").is_none());
        let mut mon2 = Monitor::new();
        mon2.register_flow(FlowId(1), "early");
        assert!(mon2.call_mos("early").is_none(), "registered but no media");
    }

    #[test]
    fn sip_accounting() {
        let mut mon = Monitor::new();
        let invite = Request::new(Method::Invite, SipUri::new("a", "h"))
            .header(HeaderName::CallId, "x".to_owned());
        mon.tap_sip(&invite.clone().into());
        mon.tap_sip(&invite.into());
        mon.tap_sip(&Response::new(StatusCode::TRYING).into());
        mon.tap_sip(&Response::new(StatusCode::RINGING).into());
        mon.tap_sip(&Response::new(StatusCode::OK).into());
        mon.tap_sip(&Response::new(StatusCode::BUSY_HERE).into());
        assert_eq!(mon.sip_request_count("INVITE"), 2);
        assert_eq!(mon.sip_request_count("BYE"), 0);
        assert_eq!(mon.sip_response_count(100), 1);
        assert_eq!(mon.sip_response_count(180), 1);
        assert_eq!(mon.sip_error_count(), 1);
        let report = mon.report();
        assert_eq!(report.sip_total, 6);
    }

    #[test]
    fn report_aggregates_calls() {
        let mut mon = Monitor::new();
        for k in 0..3u16 {
            let flow = FlowId::from_node_port(1, 20_000 + k);
            mon.register_flow(flow, &format!("call-{k}"));
            feed_clean_stream(&mut mon, flow, 200);
        }
        let report = mon.report();
        assert_eq!(report.calls_scored, 3);
        assert_eq!(report.rtp_packets, 600);
        assert!(report.mos_mean > 4.3);
        assert!(report.mos_min > 4.3);
        assert!(report.mean_loss < 1e-12);
        assert!(report.mean_jitter_ms < 0.1);
    }

    #[test]
    fn merge_all_recombines_shard_reports() {
        let mut shards = Vec::new();
        for k in 0..3u16 {
            let mut mon = Monitor::new();
            let flow = FlowId::from_node_port(1, 20_000 + k);
            mon.register_flow(flow, &format!("call-{k}"));
            feed_clean_stream(&mut mon, flow, 200);
            shards.push(mon.report());
        }
        // One whole-run monitor over the same three flows as the oracle.
        let mut all = Monitor::new();
        for k in 0..3u16 {
            let flow = FlowId::from_node_port(1, 20_000 + k);
            all.register_flow(flow, &format!("call-{k}"));
            feed_clean_stream(&mut all, flow, 200);
        }
        let oracle = all.report();
        let merged = MonitorReport::merge_all(&shards);
        assert_eq!(merged.rtp_packets, oracle.rtp_packets);
        assert_eq!(merged.calls_scored, oracle.calls_scored);
        assert_eq!(merged.flows, oracle.flows);
        assert!((merged.mos_mean - oracle.mos_mean).abs() < 1e-9);
        assert!((merged.mos_min - oracle.mos_min).abs() < 1e-9);
        assert!((merged.mean_jitter_ms - oracle.mean_jitter_ms).abs() < 1e-9);
        assert!((merged.mean_loss - oracle.mean_loss).abs() < 1e-12);

        // Empty shards contribute nothing and don't poison the means.
        shards.push(Monitor::new().report());
        let with_empty = MonitorReport::merge_all(&shards);
        assert_eq!(with_empty.calls_scored, merged.calls_scored);
        assert!((with_empty.mos_mean - merged.mos_mean).abs() < 1e-9);
        // No shards at all: NaN MOS, zeroed counters, like an idle monitor.
        let none = MonitorReport::merge_all(&[]);
        assert!(none.mos_mean.is_nan());
        assert_eq!(none.flows, 0);
    }

    #[test]
    fn bursty_loss_scores_worse_than_random_loss() {
        // Same 10% loss; random spread vs one clump. The burst-aware MOS
        // must punish the clump harder.
        let feed = |mon: &mut Monitor, flow: FlowId, skip: &dyn Fn(u16) -> bool| {
            for i in 0..500u16 {
                if skip(i) {
                    continue;
                }
                let t = f64::from(i) * 0.020;
                mon.tap_rtp(flow, t + 0.001, 0.001, &header(i, u32::from(i) * 160));
            }
        };
        let mut random = Monitor::new();
        let f1 = FlowId::from_node_port(1, 100);
        random.register_flow(f1, "r");
        feed(&mut random, f1, &|i| i % 10 == 0);
        let mut bursty = Monitor::new();
        let f2 = FlowId::from_node_port(1, 100);
        bursty.register_flow(f2, "b");
        feed(&mut bursty, f2, &|i| (100..150).contains(&i));
        let mr = random.call_mos("r").unwrap();
        let mb = bursty.call_mos("b").unwrap();
        assert!(mb < mr - 0.1, "bursty {mb} should score below random {mr}");
    }

    #[test]
    fn per_call_csv_export() {
        let mut mon = Monitor::new();
        let flow = FlowId::from_node_port(1, 20_000);
        mon.register_flow(flow, "csv-call");
        feed_clean_stream(&mut mon, flow, 100);
        let csv = mon.per_call_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("call_id,loss,jitter_ms,delay_ms,burst_ratio,mos")
        );
        let row = lines.next().expect("one call row");
        assert!(row.starts_with("csv-call,0.000000,"), "{row}");
        let mos: f64 = row.rsplit(',').next().unwrap().parse().unwrap();
        assert!(mos > 4.3, "{row}");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn retire_call_preserves_the_report_and_frees_state() {
        // Oracle: keep everything until report time.
        let mut keep = Monitor::new();
        // Churn path: retire each call right after its media drains.
        let mut churn = Monitor::new();
        for k in 0..4u16 {
            let flow = FlowId::from_node_port(1, 20_000 + k);
            let call = format!("call-{k}");
            keep.register_flow(flow, &call);
            feed_clean_stream(&mut keep, flow, 200);
            churn.register_flow(flow, &call);
            feed_clean_stream(&mut churn, flow, 200);
            assert!(churn.retire_call(&call));
        }
        assert!(!churn.retire_call("call-0"), "already retired");
        // Live state is gone...
        assert!(churn.call_mos("call-2").is_none());
        assert_eq!(churn.per_call_csv().lines().count(), 1, "header only");
        // ...but the aggregate report is intact. Calls were fed (and
        // retired) in flow-id order, so even the streaming MOS fold
        // matches the oracle bit-for-bit here.
        let (r_keep, r_churn) = (keep.report(), churn.report());
        assert_eq!(r_churn.calls_scored, r_keep.calls_scored);
        assert_eq!(r_churn.flows, r_keep.flows);
        assert_eq!(r_churn.rtp_packets, r_keep.rtp_packets);
        assert_eq!(r_churn.mos_mean.to_bits(), r_keep.mos_mean.to_bits());
        assert_eq!(r_churn.mos_min.to_bits(), r_keep.mos_min.to_bits());
        assert_eq!(r_churn.mean_loss.to_bits(), r_keep.mean_loss.to_bits());
        assert_eq!(
            r_churn.mean_jitter_ms.to_bits(),
            r_keep.mean_jitter_ms.to_bits()
        );
    }

    #[test]
    fn retired_call_slots_are_recycled() {
        let mut mon = Monitor::new();
        // 100 sequential calls on the same port (port reuse after each
        // retirement): the handle table must not grow past the first.
        for i in 0..100u32 {
            let flow = FlowId::from_node_port(1, 20_000);
            let call = format!("c-{i}");
            mon.register_flow(flow, &call);
            feed_clean_stream(&mut mon, flow, 50);
            assert!(mon.retire_call(&call));
        }
        assert_eq!(mon.call_names.len(), 1, "one slot, recycled 100 times");
        assert_eq!(mon.free_calls.len(), 1);
        assert!(mon.streams.is_empty(), "per-flow stats freed");
        assert!(mon.flow_call.is_empty());
        let r = mon.report();
        assert_eq!(r.calls_scored, 100);
        assert_eq!(r.flows, 100);
        assert!(r.mos_mean > 4.3);
    }

    #[test]
    fn retiring_an_unknown_call_is_a_no_op() {
        let mut mon = Monitor::new();
        assert!(!mon.retire_call("ghost"));
        mon.register_flow(FlowId(9), "real");
        assert!(mon.retire_call("real"), "no media yet: frees, scores none");
        let r = mon.report();
        assert_eq!(r.calls_scored, 0);
        assert_eq!(r.flows, 0, "flow never carried media");
    }

    #[test]
    fn flow_id_composition_is_injective() {
        let a = FlowId::from_node_port(1, 500);
        let b = FlowId::from_node_port(2, 500);
        let c = FlowId::from_node_port(1, 501);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
