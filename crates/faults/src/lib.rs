//! Deterministic fault-injection schedules for the capacity testbed.
//!
//! The paper evaluates Asterisk on a healthy LAN; a production PBX also
//! has to survive the unhealthy days — cable faults, process crashes,
//! thermal throttling, flash crowds after an outage notice. This crate
//! describes *what goes wrong when* as plain data: a [`FaultSchedule`] is
//! a time-sorted list of [`FaultEvent`]s that the experiment world
//! replays against its network, PBX processes and arrival process.
//!
//! The schedule is pure description — it holds no references into the
//! simulation. That keeps faults serialisable-in-spirit, trivially
//! comparable in tests, and deterministic: the same schedule and the same
//! seed always produce the same run, which is what makes
//! fault-injection experiments debuggable at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use des::rng::{Distributions, RngStream};
use des::{SimDuration, SimTime};
use netsim::{LinkParams, NodeId};

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Replace both directions of the `a`↔`b` link with `params` —
    /// degrade to a lossy/slow wire, or anything else expressible as
    /// link parameters.
    LinkDegrade {
        /// One endpoint of the duplex link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Parameters installed in both directions.
        params: LinkParams,
    },
    /// Cut the `a`↔`b` link entirely (100% loss in both directions).
    LinkPartition {
        /// One endpoint of the duplex link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Restore the `a`↔`b` link to the world's baseline parameters.
    LinkHeal {
        /// One endpoint of the duplex link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Kill PBX process `pbx` (0-based server index): all live calls
    /// drop, the channel pool flushes, registrations are lost, and the
    /// node stays dark until the supervisor restarts it `restart_after`
    /// later (endpoints then re-REGISTER).
    PbxCrash {
        /// Server index within the farm (0 for a single-PBX run).
        pbx: u32,
        /// Supervisor restart delay.
        restart_after: SimDuration,
    },
    /// Scale PBX `pbx`'s per-event CPU cost by `factor` (1.0 heals;
    /// >1.0 models thermal capping or a noisy co-tenant).
    CpuThrottle {
        /// Server index within the farm.
        pbx: u32,
        /// Service-cost multiplier.
        factor: f64,
    },
    /// Multiply the call-arrival rate by `rate_multiplier` for
    /// `duration` — the flash crowd that follows a mass notification.
    FlashCrowd {
        /// Arrival-rate multiplier (>1.0 is a burst).
        rate_multiplier: f64,
        /// How long the burst lasts.
        duration: SimDuration,
    },
}

/// A fault occurring at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-sorted schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (the healthy baseline).
    #[must_use]
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Add a fault at `at_secs` seconds into the run (builder style).
    /// Events may be added in any order; the schedule keeps itself
    /// time-sorted, with insertion order breaking ties.
    #[must_use]
    pub fn at(mut self, at_secs: f64, kind: FaultKind) -> Self {
        self.push(SimTime::from_secs_f64(at_secs), kind);
        self
    }

    /// Add a fault at an exact [`SimTime`].
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
    }

    /// The scheduled events, soonest first.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The latest instant the schedule touches, *including* deferred
    /// consequences (a crash's restart, a flash crowd's end). Experiments
    /// extend their horizon past this so recovery is observable.
    #[must_use]
    pub fn last_effect_time(&self) -> Option<SimTime> {
        self.events
            .iter()
            .map(|e| match &e.kind {
                FaultKind::PbxCrash { restart_after, .. } => e.at + *restart_after,
                FaultKind::FlashCrowd { duration, .. } => e.at + *duration,
                _ => e.at,
            })
            .max()
    }

    /// A seeded random fault storm: `count` faults drawn over
    /// `(0.1..0.8) × horizon_s`, mixing partitions (healed after an
    /// exponential outage), crashes, CPU throttles (restored) and flash
    /// crowds across `pbx_nodes` and their links to `switch`. The same
    /// seed always yields the same storm.
    #[must_use]
    pub fn random_storm(
        seed: u64,
        horizon_s: f64,
        count: usize,
        pbx_nodes: &[NodeId],
        switch: NodeId,
    ) -> Self {
        assert!(!pbx_nodes.is_empty(), "need at least one PBX node");
        let mut rng = RngStream::new(seed).stream("fault-storm");
        let mut schedule = FaultSchedule::new();
        for _ in 0..count {
            let t = horizon_s * rng.uniform_f64(0.1, 0.8);
            let pbx = rng.below(pbx_nodes.len() as u64) as u32;
            let node = pbx_nodes[pbx as usize];
            match rng.below(4) {
                0 => {
                    let outage = rng.exp_mean(5.0).clamp(1.0, 20.0);
                    schedule.push(
                        SimTime::from_secs_f64(t),
                        FaultKind::LinkPartition { a: node, b: switch },
                    );
                    schedule.push(
                        SimTime::from_secs_f64(t + outage),
                        FaultKind::LinkHeal { a: node, b: switch },
                    );
                }
                1 => {
                    schedule.push(
                        SimTime::from_secs_f64(t),
                        FaultKind::PbxCrash {
                            pbx,
                            restart_after: SimDuration::from_secs_f64(rng.uniform_f64(1.0, 5.0)),
                        },
                    );
                }
                2 => {
                    let heal_after = rng.uniform_f64(5.0, 15.0);
                    schedule.push(
                        SimTime::from_secs_f64(t),
                        FaultKind::CpuThrottle {
                            pbx,
                            factor: rng.uniform_f64(1.5, 4.0),
                        },
                    );
                    schedule.push(
                        SimTime::from_secs_f64(t + heal_after),
                        FaultKind::CpuThrottle { pbx, factor: 1.0 },
                    );
                }
                _ => {
                    schedule.push(
                        SimTime::from_secs_f64(t),
                        FaultKind::FlashCrowd {
                            rate_multiplier: rng.uniform_f64(2.0, 8.0),
                            duration: SimDuration::from_secs_f64(rng.uniform_f64(3.0, 10.0)),
                        },
                    );
                }
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_time_order() {
        let s = FaultSchedule::new()
            .at(
                60.0,
                FaultKind::LinkHeal {
                    a: NodeId(3),
                    b: NodeId(0),
                },
            )
            .at(
                10.0,
                FaultKind::FlashCrowd {
                    rate_multiplier: 4.0,
                    duration: SimDuration::from_secs(5),
                },
            )
            .at(
                40.0,
                FaultKind::LinkPartition {
                    a: NodeId(3),
                    b: NodeId(0),
                },
            );
        let times: Vec<f64> = s.events().iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(times, vec![10.0, 40.0, 60.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let s = FaultSchedule::new()
            .at(
                5.0,
                FaultKind::CpuThrottle {
                    pbx: 0,
                    factor: 2.0,
                },
            )
            .at(
                5.0,
                FaultKind::CpuThrottle {
                    pbx: 1,
                    factor: 3.0,
                },
            );
        match (&s.events()[0].kind, &s.events()[1].kind) {
            (FaultKind::CpuThrottle { pbx: 0, .. }, FaultKind::CpuThrottle { pbx: 1, .. }) => {}
            other => panic!("insertion order lost: {other:?}"),
        }
    }

    #[test]
    fn last_effect_time_includes_deferred_consequences() {
        let s = FaultSchedule::new().at(
            30.0,
            FaultKind::PbxCrash {
                pbx: 0,
                restart_after: SimDuration::from_secs(7),
            },
        );
        assert_eq!(s.last_effect_time(), Some(SimTime::from_secs(37)));
        let s2 = FaultSchedule::new().at(
            20.0,
            FaultKind::FlashCrowd {
                rate_multiplier: 4.0,
                duration: SimDuration::from_secs(12),
            },
        );
        assert_eq!(s2.last_effect_time(), Some(SimTime::from_secs(32)));
        assert_eq!(FaultSchedule::new().last_effect_time(), None);
    }

    #[test]
    fn overlapping_fault_windows_interleave_deterministically() {
        // A flash crowd breaking out *inside* a link-degrade window —
        // the compound scenario the overload campaign leans on. Pushed
        // deliberately out of order: the heal first, the crowd last.
        let degraded = LinkParams {
            loss_probability: 0.05,
            ..LinkParams::fast_ethernet()
        };
        let build = || {
            FaultSchedule::new()
                .at(
                    50.0,
                    FaultKind::LinkHeal {
                        a: NodeId(3),
                        b: NodeId(0),
                    },
                )
                .at(
                    20.0,
                    FaultKind::LinkDegrade {
                        a: NodeId(3),
                        b: NodeId(0),
                        params: degraded,
                    },
                )
                .at(
                    30.0,
                    FaultKind::FlashCrowd {
                        rate_multiplier: 6.0,
                        duration: SimDuration::from_secs(15),
                    },
                )
        };
        let s = build();
        // Time-sorted regardless of insertion order: degrade, then the
        // crowd that lands mid-window, then the heal.
        let times: Vec<f64> = s.events().iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(times, vec![20.0, 30.0, 50.0]);
        assert!(matches!(s.events()[0].kind, FaultKind::LinkDegrade { .. }));
        assert!(matches!(s.events()[1].kind, FaultKind::FlashCrowd { .. }));
        assert!(matches!(s.events()[2].kind, FaultKind::LinkHeal { .. }));
        // The heal fires at 50 s but the crowd's deferred end (30+15=45)
        // is still earlier: the last effect is the heal itself.
        assert_eq!(s.last_effect_time(), Some(SimTime::from_secs(50)));
        // Identical construction yields an identical schedule — the
        // property the world's Fault(idx) indexing depends on.
        assert_eq!(s, build());
    }

    #[test]
    fn random_storm_is_deterministic_and_seed_sensitive() {
        let nodes = [NodeId(3), NodeId(4)];
        let a = FaultSchedule::random_storm(42, 120.0, 8, &nodes, NodeId(0));
        let b = FaultSchedule::random_storm(42, 120.0, 8, &nodes, NodeId(0));
        assert_eq!(a, b, "same seed, same storm");
        let c = FaultSchedule::random_storm(43, 120.0, 8, &nodes, NodeId(0));
        assert_ne!(a, c, "different seed, different storm");
        assert!(a.len() >= 8, "paired heal events may add more");
        // Every event lands inside the run.
        for e in a.events() {
            assert!(e.at.as_secs_f64() < 120.0 + 20.0);
        }
    }
}
