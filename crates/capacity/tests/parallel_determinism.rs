//! Digest-exactness of the within-run parallel engine: the windowed
//! sharded executor must be bit-identical to the sequential
//! global-interleave reference at every thread width — including under
//! an active fault schedule that crashes a PBX mid-run.

use capacity::experiment::{EmpiricalConfig, MediaMode, SimOptions};
use capacity::shard::{run_partitioned, ExecMode};
use des::SimDuration;
use faults::{FaultKind, FaultSchedule};
use loadgen::HoldingDist;

const WIDTHS: [u32; 4] = [1, 2, 4, 8];

fn digests_match(cfg: &EmpiricalConfig) {
    // Over-provision the pool so requested widths actually differ; the
    // digest must not care how many workers the machine grants anyway.
    des::pool::configure(8);
    let base = run_partitioned(cfg.clone(), SimOptions::default(), ExecMode::Sequential);
    assert!(base.attempted > 0, "workload places calls");
    for threads in WIDTHS {
        let r = run_partitioned(
            cfg.clone(),
            SimOptions::default(),
            ExecMode::Sharded { threads },
        );
        assert_eq!(
            r.digest(),
            base.digest(),
            "sharded({threads} threads) diverged from sequential \
             ({} vs {} events)",
            r.events_processed,
            base.events_processed
        );
        assert_eq!(r.events_processed, base.events_processed);
    }
}

/// The paper's 150 E full-media cell (165 channels, per-packet G.711),
/// shortened to a few simulated seconds so debug builds finish quickly,
/// split across 4 PBX shards.
#[test]
fn full_media_150e_cell_is_digest_exact() {
    let mut cfg = EmpiricalConfig::table1(150.0, 2015);
    cfg.servers = 4;
    cfg.placement_window_s = 4.0;
    cfg.holding = HoldingDist::Fixed(4.0);
    cfg.media = MediaMode::PerPacket { encode_every: 50 };
    digests_match(&cfg);
}

/// Signalling-only farm at a different seed and shard count.
#[test]
fn signalling_only_farm_is_digest_exact() {
    let mut cfg = EmpiricalConfig::signalling_only(24.0, 77);
    cfg.servers = 3;
    cfg.channels = 30;
    cfg.placement_window_s = 8.0;
    cfg.holding = HoldingDist::Fixed(5.0);
    digests_match(&cfg);
}

/// A PBX crash on shard 1 mid-window plus a flash crowd: faults are
/// remapped per shard and the driver intercepts the crowd, and the
/// executors must still agree exactly.
#[test]
fn crash_and_flash_crowd_stay_digest_exact() {
    let mut cfg = EmpiricalConfig::smoke(4242);
    cfg.servers = 4;
    cfg.erlangs = 10.0;
    cfg.channels = 8;
    cfg.user_pool = 40;
    cfg.placement_window_s = 12.0;
    cfg.faults = FaultSchedule::new()
        .at(
            4.0,
            FaultKind::PbxCrash {
                pbx: 1,
                restart_after: SimDuration::from_secs(3),
            },
        )
        .at(
            6.0,
            FaultKind::FlashCrowd {
                rate_multiplier: 3.0,
                duration: SimDuration::from_secs(4),
            },
        );
    digests_match(&cfg);
}
