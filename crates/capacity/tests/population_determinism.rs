//! Property tests for the finite-source population engine: the
//! aggregated O(active) arrival sampler must be draw-for-draw identical
//! to the per-user-timer reference at small N — across both scheduler
//! backends, and at every sharded thread width. The coupling
//! construction hands both engines the same thinned-gap and
//! winner-ordinal draws, so any digest divergence means the fast path
//! changed the physics, not just the bookkeeping.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, SimOptions};
use capacity::shard::{run_partitioned, ExecMode};
use des::SchedulerKind;
use proptest::prelude::*;
use proptest::sample::select;

/// Small-N population cell cheap enough for the O(N)-per-arrival
/// reference engine and for debug-build proptest cases.
fn pop_cfg(seed: u64, subs: u64, erlangs: f64, expiry_s: f64, buckets: u32) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::smoke(seed);
    cfg.media = MediaMode::Off;
    cfg.erlangs = erlangs;
    cfg.placement_window_s = 8.0;
    let mut pop = loadgen::PopulationConfig::for_offered_load(subs, erlangs, cfg.holding.mean());
    pop.reg_expiry_s = expiry_s;
    pop.churn_buckets = buckets;
    cfg.population = Some(pop);
    cfg
}

proptest! {
    /// Aggregated vs reference engine on a sampled future-event-list
    /// backend: two runs, one digest. Across the 64 cases both backends
    /// see dozens of randomized cells each.
    #[test]
    fn aggregated_matches_reference_on_both_backends(
        seed in 1u64..10_000,
        subs in 60u64..300,
        erlangs in 2.0f64..6.0,
        expiry in 20.0f64..80.0,
        buckets in 4u32..16,
        scheduler in select(vec![SchedulerKind::Wheel, SchedulerKind::Heap]),
    ) {
        let agg = pop_cfg(seed, subs, erlangs, expiry, buckets);
        let mut rf = agg.clone();
        rf.population.as_mut().expect("population cell").reference = true;
        let opts = SimOptions { scheduler, ..SimOptions::default() };
        let a = EmpiricalRunner::run_with(agg, opts);
        let r = EmpiricalRunner::run_with(rf, opts);
        // No liveness assert: a short low-rate window occasionally draws
        // zero arrivals, and the engines must agree on empty cells too
        // (liveness itself is pinned by the experiment-level smoke tests).
        prop_assert_eq!(
            a.digest(), r.digest(),
            "aggregated vs reference diverged on {:?} (seed {}, N {}, {} vs {} events)",
            scheduler, seed, subs, a.events_processed, r.events_processed
        );
    }

    /// The partitioned population driver: the sequential global
    /// interleave and the windowed parallel executor at a sampled
    /// 1/2/4/8-thread width must agree bit-for-bit.
    #[test]
    fn sharded_population_is_digest_exact_at_every_width(
        seed in 1u64..10_000,
        subs in 80u64..240,
        servers in 2u32..5,
        threads in select(vec![1u32, 2, 4, 8]),
    ) {
        // Over-provision the pool so requested widths actually differ;
        // the digest must not care how many workers the machine grants.
        des::pool::configure(8);
        let mut cfg = pop_cfg(seed, subs, 4.0, 30.0, 8);
        cfg.servers = servers;
        cfg.channels = 3 * servers;
        let base = run_partitioned(cfg.clone(), SimOptions::default(), ExecMode::Sequential);
        let r = run_partitioned(cfg, SimOptions::default(), ExecMode::Sharded { threads });
        prop_assert_eq!(
            r.digest(), base.digest(),
            "sharded({} threads) diverged from sequential (seed {}, N {}, {} vs {} events)",
            threads, seed, subs, r.events_processed, base.events_processed
        );
    }
}
