//! Allocator-gated proof that the population engine's memory is
//! O(active calls), not O(subscribers): run the same offered load over
//! two population sizes and bound the peak-live-bytes delta per extra
//! subscriber.
//!
//! At equal offered load every O(active) structure — calls in flight,
//! monitor records, scheduler occupancy, SIP transactions — is the same
//! size in both runs and cancels out of the delta. What remains is the
//! genuinely per-subscriber state, which by design is one compact SoA
//! expiry slot in the registrar (8 bytes) plus O(1) engine state
//! (aggregated sampler, churn wheel, synthetic directory range). The
//! budget below is a loose 64 B/subscriber so allocator rounding and
//! incidental growth don't flake the gate, while a per-user timer, map
//! entry, or String (≥ 48 B each, and any regression would add at least
//! one) still trips it.
//!
//! The whole check lives in ONE test fn: the counting allocator is
//! process-global, so concurrent tests in the same binary would pollute
//! the peak.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper tracking live bytes and the high-water mark.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The same busy cell over `subs` subscribers: identical offered load,
/// channels, window and churn *rate structure* regardless of N (expiry
/// scales with N so the absolute re-REGISTER volume stays equal too).
fn pop_cfg(subs: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::smoke(99);
    cfg.media = MediaMode::Off;
    let mut pop =
        loadgen::PopulationConfig::for_offered_load(subs, cfg.erlangs, cfg.holding.mean());
    // Hold the churn volume constant across sizes: N/expiry ≈ 400/s of
    // wheel-driven re-REGISTERs either way, so the SIP-side transient
    // allocations cancel in the delta like every other O(load) term.
    pop.reg_expiry_s = subs as f64 / 400.0;
    pop.churn_buckets = 16;
    cfg.population = Some(pop);
    cfg
}

/// Peak live bytes above the pre-run floor for one full run.
fn peak_delta_for(subs: u64) -> usize {
    let cfg = pop_cfg(subs);
    let floor = LIVE.load(Ordering::Relaxed);
    PEAK.store(floor, Ordering::Relaxed);
    let r = EmpiricalRunner::run(cfg);
    let peak = PEAK.load(Ordering::Relaxed);
    assert!(r.attempted > 0, "cell places calls at N = {subs}");
    assert!(r.completed > 0, "cell completes calls at N = {subs}");
    peak.saturating_sub(floor)
}

#[test]
fn population_memory_is_o_active_not_o_subscribers() {
    // Warm-up run absorbs one-time allocations (lazy statics, allocator
    // pools, thread-local scratch) so they don't land in either sample.
    let _ = peak_delta_for(10_000);

    let small_n = 20_000u64;
    let large_n = 80_000u64;
    let small = peak_delta_for(small_n);
    let large = peak_delta_for(large_n);

    let extra_users = (large_n - small_n) as usize;
    let delta = large.saturating_sub(small);
    let per_user = delta / extra_users;
    eprintln!(
        "peak live bytes: N={small_n} -> {small}, N={large_n} -> {large}, \
         delta {delta} over {extra_users} extra users = {per_user} B/user"
    );
    // The registrar's SoA expiry slot accounts for 8 B/user; everything
    // else the population adds must be O(1) or O(active).
    assert!(
        per_user <= 64,
        "per-subscriber peak memory {per_user} B exceeds the 64 B budget \
         (delta {delta} B over {extra_users} extra subscribers) — \
         something materializes per-user state on the population hot path"
    );
    // And the gate must actually be measuring something: the 8 B/user
    // registrar slots alone guarantee a visible positive delta.
    assert!(
        delta >= extra_users * 8,
        "delta {delta} B is below the registrar's own 8 B/user floor — \
         the measurement is broken"
    );
}
