//! The paper's evaluation methodology, end to end.
//!
//! This crate wires every substrate together into the Fig. 4/Fig. 5
//! experiment: a SIPp-style generator pair ([`loadgen`]) drives calls
//! through the Asterisk-style PBX ([`pbx_sim`]) over the simulated switched
//! LAN ([`netsim`]), while the VoIPmonitor stand-in ([`vmon`]) scores every
//! delivered packet — all inside the deterministic DES ([`des`]).
//!
//! * [`experiment`] — one empirical run: configuration, the event-driven
//!   world, and the results record;
//! * [`campaign`] — the overload-control comparison: every admission law
//!   swept 0.5×–4× past engineered capacity under a flash crowd;
//! * [`mod@table1`] — the six-workload sweep reproducing the paper's Table I;
//! * [`figures`] — series builders for Figures 3, 6 and 7;
//! * [`sweep`] — the budgeted work-stealing executor every sweep
//!   (figures, campaign, farm, policy) fans out through;
//! * [`report`] — text/JSON renderers for all of the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiment;
pub mod farm;
pub mod figures;
pub mod policy;
pub mod report;
pub mod shard;
pub mod sweep;
pub mod table1;
pub mod world;

pub use experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode, RunResult, SimOptions};
pub use shard::{run_partitioned, ExecMode};
pub use table1::{table1, Table1Row};
pub use world::{MediaKernel, MediaPath};
