//! The event-driven world: generator hosts, switch, PBX farm and monitor
//! glued to the DES engine.
//!
//! The paper's testbed has exactly one Asterisk server; the world also
//! supports a farm of `servers` PBX nodes with calls split round-robin —
//! the §IV "increasing the number of servers" alternative, measurable
//! against the pooled single server (see `capacity::farm`).

use crate::experiment::{EmpiricalConfig, MediaMode};
use des::{EventHandler, GenTag, Phase, PhaseTimer, Scheduler, SimDuration, SimTime, StreamRng};
use faults::FaultKind;
use loadgen::{
    ArrivalProcess, ChurnWheel, Pacer, PopulationArrivals, Uac, UacEvent, Uas, UasEvent,
};
use netsim::topology::{nodes, StarTopology};
use netsim::{LinkParams, NodeId, SendOutcome};
use overload::ControlLaw;
use pbx_sim::{Directory, Pbx, PbxAction, PbxConfig};
use rtpcore::packet::RtpDatagram;
use rtpcore::packetizer::{FastVoiceSource, Law, Packetizer, VoiceSource, SAMPLES_PER_FRAME};
use rtpcore::vad::{FrameSlot, TalkspurtSource};
use sipcore::{AtomTable, SipMessage};
use std::collections::HashMap;
use std::sync::Arc;
use vmon::{FlowId, Monitor};

/// Media frame period.
const FRAME_PERIOD: SimDuration = SimDuration::from_millis(20);

/// Frame period in nanoseconds.
const FRAME_NS: u64 = 20_000_000;

/// Phase sub-slots per frame period for the coalesced media path. Each
/// session keeps its own 20 ms cadence; its *phase within the period* is
/// quantised to one of these slots so one recurring `MediaFrame` event per
/// non-empty slot drives every session sharing that phase.
const SUB_SLOTS: usize = 64;

/// Width of one phase sub-slot (312.5 µs).
const SUB_NS: u64 = FRAME_NS / SUB_SLOTS as u64;

/// First uid of the finite-source population: caller of global rank `u`
/// is `POP_UID_BASE + u`, safely above the classic 1000/1500 pools.
pub const POP_UID_BASE: u64 = 1_000_000;

/// How long after a population call ends before its per-call monitor
/// state is folded and freed — long enough for every tail packet of the
/// call to land and be scored first.
const RETIRE_DELAY: SimDuration = SimDuration::from_secs(1);

/// Seed-derivation replica index for the reference engine's private
/// decoy stream (any fixed label distinct from the shard indices works).
const POP_DECOY_REP: u64 = 0xD0_1C;

/// Users re-REGISTERed per churn slice event: bounds the wheel's live
/// frame state to O(slice) no matter how large the population bucket.
const CHURN_SLICE: u64 = 64;

/// Process-wide memo of pre-seeded SDP origin interners, keyed by the
/// caller-pool size: uids `1000 .. 1000 + user_pool`, the exact strings
/// the classic placement path interns on first call from each caller.
/// Every replication clones the base table (the strings are shared
/// `Arc<str>`s) instead of re-interning the pool from scratch. Interning
/// is idempotent and only resolved strings reach the wire, so a warm
/// table is digest-invisible; population-mode callers (uids ≥
/// [`POP_UID_BASE`]) simply intern cold on top, as before.
fn shared_origin_atoms(user_pool: u32) -> AtomTable {
    use std::sync::{Mutex, OnceLock};
    static MEMO: OnceLock<Mutex<HashMap<u32, AtomTable>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = memo
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    map.entry(user_pool)
        .or_insert_with(|| {
            let mut table = AtomTable::new();
            for i in 0..u64::from(user_pool) {
                table.intern(&format!("{}", 1000 + i));
            }
            table
        })
        .clone()
}

/// How per-session media cadence is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MediaPath {
    /// One `MediaTick` event per session per 20 ms frame — the reference
    /// implementation: O(calls × frames) event-queue pushes.
    PerTick,
    /// One `MediaFrame` event per occupied phase slot per 20 ms frame,
    /// iterating a slab-indexed session list — O(frames) pushes.
    #[default]
    Coalesced,
}

/// Which media compute kernel synthesises and compands audio frames.
///
/// Orthogonal to [`MediaPath`] (which decides *when* frames are emitted,
/// this decides *how* their bytes are produced) and invisible in the
/// physics: payload bytes never reach the monitor or the scoring path —
/// only headers, sizes and timing do — so both kernels produce identical
/// [`crate::experiment::RunResult::digest`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MediaKernel {
    /// The original per-sample pipeline: trigonometric [`VoiceSource`]
    /// synthesis and scalar segment-search G.711 companding. Kept as the
    /// A/B baseline for the media benchmarks.
    Reference,
    /// The vectorizable pipeline: phasor-rotation [`FastVoiceSource`]
    /// synthesis into a reused scratch buffer and table-driven G.711
    /// companding over whole frames.
    #[default]
    Batched,
}

/// How SIP messages travel between the endpoints and the PBX farm.
///
/// Orthogonal to [`MediaPath`]/[`MediaKernel`] and, like them, invisible
/// in the physics: both paths put identical wire lengths on the simulated
/// links and hand identical structured messages to the protocol engines,
/// so they produce identical [`crate::experiment::RunResult::digest`]
/// values (enforced in-tree by `engine_options_do_not_change_the_physics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignallingPath {
    /// Wire-faithful: every send serializes the message to bytes
    /// ([`Payload::SipWire`]) and every delivery re-parses them eagerly —
    /// what a stack doing real UDP I/O pays per hop. Kept as the A/B
    /// baseline for the signalling benchmarks.
    Reference,
    /// Structured cut-through: the typed message rides the frame as-is,
    /// its on-wire size computed analytically (`SipMessage::wire_len`,
    /// exactly the serialized length); steady-state call flow serializes
    /// and parses nothing.
    #[default]
    Interned,
}

/// Node number of PBX `k` in the farm.
#[must_use]
pub fn pbx_node(k: u32) -> NodeId {
    NodeId(3 + k as u16)
}

/// Reference-path eager SDP materialisation: parse the delivered body into
/// an owned [`sipcore::sdp::SessionDescription`] and serialize it straight
/// back. The rebuilt bytes are byte-identical (the builder/parser
/// round-trip invariant), so the run digest cannot move — but the parse,
/// the owned strings and the fresh body vector are real per-hop work, and
/// they land in the [`Phase::SdpWire`] bucket.
fn reparse_sdp_body(mut msg: SipMessage) -> SipMessage {
    let body = msg.body_mut();
    if let Some(bytes) = body.as_bytes() {
        if !bytes.is_empty() {
            if let Some(sdp) = sipcore::sdp::SessionDescription::parse(bytes) {
                *body = sipcore::Body::Bytes(sdp.to_body());
            }
        }
    }
    msg
}

/// What travels inside a network frame.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A SIP message (wire length precomputed).
    Sip(SipMessage),
    /// A SIP message as raw wire bytes (the [`SignallingPath::Reference`]
    /// form; shared so hops clone a refcount, not the bytes).
    SipWire(Arc<[u8]>),
    /// An RTP datagram addressed to a UDP port.
    Rtp {
        /// Destination media port.
        dst_port: u16,
        /// The datagram; its payload is shared, so relaying it through the
        /// PBX clones a refcount, never the media bytes.
        datagram: RtpDatagram,
        /// When the originating endpoint emitted it (for one-way delay).
        sent_at: SimTime,
    },
}

/// A frame in flight between nodes.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Origin node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Simulated on-wire size (payload + UDP/IP/Ethernet overhead).
    pub wire_len: usize,
    /// Contents.
    pub payload: Payload,
}

/// Key of one unidirectional media session.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MediaKey {
    /// Owning call id (UAC-side or UAS/b2b-side, per `caller_side`).
    pub call: String,
    /// True for the caller-side stream.
    pub caller_side: bool,
}

/// World events.
#[derive(Debug, Clone)]
pub enum Ev {
    /// Place the next call.
    PlaceCall,
    /// (Sharded runs) the partition driver's arrival clock ticked. Handled
    /// by the shard wrapper in `crate::shard`, never by `World` itself.
    ArrivalTick,
    /// (Sharded runs) a dispatched call order reaches this partition's
    /// PBX one control-plane hop after the driver drew it: place exactly
    /// one call now, without consulting the local arrival process.
    PlaceOrder,
    /// Hand a locally originated frame to the network (used to pace the
    /// registration storm so it cannot overflow the access links).
    SendFrame(Frame),
    /// A frame arrives at a node (per hop).
    HopArrive {
        /// Node the frame just reached.
        at: NodeId,
        /// The frame.
        frame: Frame,
    },
    /// Generate the next media frame of a session (the per-tick path).
    MediaTick(MediaKey),
    /// Emit the due frame for every session in one phase sub-slot (the
    /// coalesced path): recurs every 20 ms while the slot is occupied.
    MediaFrame {
        /// Phase sub-slot index (`0..SUB_SLOTS`).
        slot: usize,
    },
    /// The caller's holding time elapsed: hang up.
    Hangup {
        /// UAC-side call id.
        call_id: String,
    },
    /// The UAS's pickup delay elapsed: answer.
    UasAnswer {
        /// UAS-side call id.
        call_id: String,
    },
    /// Fire fault `idx` of the configured [`faults::FaultSchedule`].
    Fault(usize),
    /// A crashed PBX's supervisor restart completes; endpoints re-REGISTER.
    PbxRestart {
        /// Server index within the farm.
        pbx: u32,
    },
    /// A shed call's backoff elapsed: re-INVITE it.
    UacRetry {
        /// The shed attempt's Call-ID.
        call_id: String,
    },
    /// A flash crowd ends: divide the arrival rate back down.
    FlashCrowdEnd {
        /// The multiplier the matching [`FaultKind::FlashCrowd`] applied.
        rate_multiplier: f64,
    },
    /// A UAC pacer's next-allowed instant arrived: release one deferred
    /// INVITE (armed only when a rate-mode [`loadgen::Pacer`] defers).
    PacerWake {
        /// UAC index within the farm.
        uac: usize,
    },
    /// Periodic link-quality sampling feeding MOS-aware admission: folds
    /// the monitor's per-stream stats into (loss, jitter, delay) and hands
    /// them to every PBX. Armed only when the configured overload law is
    /// [`overload::ControlLaw::MosCac`], so every other configuration keeps
    /// a byte-identical event stream (and digest).
    QualityTick,
    /// A finite-source population arrival surfaced. The stamp decides
    /// liveness: state changes since the draw leave it stale, and a stale
    /// arrival is a logically cancelled timer — discarded on claim. In
    /// sharded runs this is the partition driver's arrival clock instead,
    /// intercepted in `crate::shard` and never seen by `World`.
    PopArrival {
        /// Generation stamp from [`loadgen::PopulationArrivals`].
        tag: GenTag,
    },
    /// (Sharded runs) a dispatched population call order: place one call
    /// for this specific user with the hold the driver sampled.
    PlaceOrderFor {
        /// Global population rank of the caller.
        user: u64,
        /// Sampled holding time, nanoseconds.
        hold_ns: u64,
    },
    /// (Sharded runs) the driver's open-loop estimate of a population
    /// call's end: the user rejoins the idle set. Handled by the shard
    /// wrapper, never by `World` itself.
    PopCallEnded {
        /// Global population rank of the caller.
        user: u64,
    },
    /// One expiry-wheel tick: the bucket's contiguous rank range of the
    /// population re-REGISTERs (digest handshake), paced within the tick.
    ChurnTick {
        /// Monotone tick counter from t = 0.
        tick: u64,
    },
    /// One bounded chunk of a churn tick's due range: at most
    /// [`CHURN_SLICE`] users re-REGISTER per slice event, so live frame
    /// state stays O(slice) instead of O(population / buckets).
    ChurnSlice {
        /// The tick whose due range is being walked.
        tick: u64,
        /// First not-yet-registered rank of that range.
        start: u64,
        /// Per-user pacing gap, fixed at tick start.
        spacing_ns: u64,
    },
    /// Fold and free a finished population call's monitor state — the
    /// O(active calls) memory discipline for scoring at 10⁶ subscribers.
    RetireCall {
        /// UAC-side call id.
        call_id: String,
    },
}

enum AudioSource {
    /// The paper's setting: continuous speech, 50 pps (reference kernel).
    Continuous(VoiceSource),
    /// Continuous speech via the phasor synthesiser (batched kernel).
    ContinuousBatched(FastVoiceSource),
    /// Silence-suppressed talkspurt model (the VAD ablation).
    Talkspurt(TalkspurtSource),
}

struct MediaSession {
    key: MediaKey,
    packetizer: Packetizer,
    source: AudioSource,
    local_node: NodeId,
    remote_node: NodeId,
    remote_port: u16,
    cached_payload: Arc<[u8]>,
    frames_sent: u64,
    active: bool,
    /// Next grid-aligned emission time (coalesced path only).
    next_due: SimTime,
}

/// Live state of the finite-source population workload: the aggregated
/// arrival engine, the churn wheel, and the call-id → rank map that turns
/// a hangup back into an idle user. Everything here is O(active calls)
/// (plus the engine's optional reference table at small N).
struct PopState {
    engine: PopulationArrivals,
    churn: ChurnWheel,
    /// In-flight population calls: UAC Call-ID → local engine rank.
    call_user: HashMap<String, u64>,
    /// Global rank of this world's local rank 0 (shard slicing).
    first_user: u64,
    /// Whether this world owns its arrival chain. Sequential worlds do;
    /// shard worlds receive [`Ev::PlaceOrderFor`] from the driver and
    /// must leave their local engine silent.
    arrivals_armed: bool,
}

/// The complete experiment world.
pub struct World {
    /// Configuration.
    pub config: EmpiricalConfig,
    /// The network.
    pub topo: StarTopology,
    /// The systems under test (one per configured server).
    pub pbxes: Vec<Pbx>,
    /// Call generator engines, one per PBX (all on the client host).
    pub uacs: Vec<Uac>,
    /// Call generator server (UAS scenario).
    pub uas: Uas,
    /// Passive monitor.
    pub monitor: Monitor,
    /// Optional wire capture (enabled by `capture_traffic`); every
    /// *delivered* frame is recorded, exactly what a span port at the
    /// destination host would see.
    pub capture: Option<vmon::pcap::PcapWriter>,
    arrivals: ArrivalProcess,
    rng_arrivals: StreamRng,
    rng_holding: StreamRng,
    rng_network: StreamRng,
    rng_media: StreamRng,
    rng_dispatch: StreamRng,
    rng_retry: StreamRng,
    placement_start: SimTime,
    placement_end: SimTime,
    media_path: MediaPath,
    media_kernel: MediaKernel,
    signalling: SignallingPath,
    /// Reused PCM frame buffer for the batched kernel: synthesis fills it
    /// in place, companding reads it — no per-frame sample allocation.
    media_scratch: [i16; SAMPLES_PER_FRAME],
    /// Wall-clock phase attribution (compiled out without the
    /// `phase-timing` feature; see [`des::PhaseTimer`]).
    phase_timer: PhaseTimer,
    /// Slab of media sessions; `None` slots are free for reuse.
    sessions: Vec<Option<MediaSession>>,
    free_sessions: Vec<usize>,
    /// Key → slab index (point lookups only — never iterated, so the
    /// HashMap cannot perturb determinism).
    media_index: HashMap<MediaKey, usize>,
    /// Per-phase-slot session lists for the coalesced path; emission order
    /// within a slot is insertion order.
    phase_buckets: Vec<Vec<usize>>,
    /// Whether a recurring `MediaFrame` event is pending for each slot.
    slot_armed: Vec<bool>,
    calls_placed: u64,
    /// Healthy parameters every star link started with — what
    /// [`FaultKind::LinkHeal`] restores.
    baseline_link: LinkParams,
    /// Crashed-and-not-yet-restarted PBXes; frames to a down server are
    /// dropped at delivery (the host is dark).
    pbx_down: Vec<bool>,
    /// Answered-call count per simulated second — the recovery signal
    /// time-to-recover analysis reads.
    answers_per_sec: Vec<u64>,
    /// Finite-source population workload (None = classic open loop).
    population: Option<PopState>,
}

impl World {
    /// Build a world from an experiment configuration, using the default
    /// (coalesced) media path and (batched) media kernel.
    #[must_use]
    pub fn new(config: EmpiricalConfig) -> Self {
        Self::with_engine(config, MediaPath::default(), MediaKernel::default())
    }

    /// Build a world with an explicit media-path implementation (the
    /// per-tick reference path exists for benchmarks and A/B validation),
    /// using the default media kernel.
    #[must_use]
    pub fn with_media_path(config: EmpiricalConfig, media_path: MediaPath) -> Self {
        Self::with_engine(config, media_path, MediaKernel::default())
    }

    /// Build a world with explicit media path and media kernel.
    #[must_use]
    pub fn with_engine(
        config: EmpiricalConfig,
        media_path: MediaPath,
        media_kernel: MediaKernel,
    ) -> Self {
        let servers = config.servers.max(1);
        let streams = des::RngStream::new(config.seed);
        let mut link = LinkParams::fast_ethernet();
        link.loss_probability = config.link_loss_probability;
        let mut hosts = vec![nodes::SIPP_CLIENT, nodes::SIPP_SERVER];
        for k in 0..servers {
            hosts.push(pbx_node(k));
        }
        let topo = StarTopology::new(nodes::SWITCH, &hosts, link);

        let mut pbxes = Vec::with_capacity(servers as usize);
        let mut uacs = Vec::with_capacity(servers as usize);
        for k in 0..servers {
            let hostname = if servers == 1 {
                "pbx.unb.br".to_owned()
            } else {
                format!("pbx{k}.unb.br")
            };
            let mut pbx_cfg = PbxConfig::evaluation_default(pbx_node(k));
            pbx_cfg.channels = config.channels;
            pbx_cfg.max_calls_per_user = config.max_calls_per_user;
            pbx_cfg.overload = config.overload;
            pbx_cfg.overload_law = config.overload_law;
            pbx_cfg.hostname.clone_from(&hostname);
            // Shared sweep-plane precompute: the subscriber table is a
            // COW clone of the process-wide prototype and the SDP origin
            // pool arrives pre-interned — both observationally identical
            // to cold construction, so digests cannot move.
            let directory = Directory::shared_subscribers(1000, 1000);
            pbxes.push(Pbx::new(pbx_cfg, directory));
            let mut uac = Uac::with_tag(nodes::SIPP_CLIENT, pbx_node(k), &hostname, k);
            uac.preseed_sdp_origins(shared_origin_atoms(config.user_pool));
            uac.retry_policy = config.retry;
            // Feedback-driven laws pace the caller side: the pacer starts
            // wide open and tightens as X-Overload-Control values arrive.
            uac.pacer = match config.overload_law {
                Some(ControlLaw::RateBased { max_rate_cps, .. }) => Some(Pacer::rate(max_rate_cps)),
                Some(ControlLaw::WindowBased { max_window, .. }) => Some(Pacer::window(max_window)),
                _ => None,
            };
            uacs.push(uac);
        }

        let uas = Uas::new(nodes::SIPP_SERVER, config.pickup_delay);
        let population = config.population.as_ref().map(|pop| {
            // The population authenticates against the synthetic directory
            // rule — O(1) memory — while the classic pools keep their
            // materialized entries (entries win on overlap, and the ranges
            // are disjoint anyway).
            for pbx in &mut pbxes {
                pbx.directory
                    .set_synthetic_range(POP_UID_BASE + pop.first_user, pop.subscribers);
            }
            PopState {
                engine: PopulationArrivals::new(
                    pop,
                    des::rng::stream_seed(config.seed, POP_DECOY_REP),
                ),
                churn: ChurnWheel::new(
                    pop.subscribers,
                    SimDuration::from_secs_f64(pop.reg_expiry_s),
                    pop.churn_buckets,
                ),
                call_user: HashMap::new(),
                first_user: pop.first_user,
                arrivals_armed: false,
            }
        });
        let rate = config.erlangs / config.holding.mean();
        World {
            topo,
            pbxes,
            uacs,
            uas,
            monitor: Monitor::new(),
            capture: config.capture_traffic.then(vmon::pcap::PcapWriter::new),
            arrivals: ArrivalProcess::poisson(rate),
            rng_arrivals: streams.stream("arrivals"),
            rng_holding: streams.stream("holding"),
            rng_network: streams.stream("network"),
            rng_media: streams.stream("media"),
            rng_dispatch: streams.stream("dispatch"),
            rng_retry: streams.stream("retry"),
            placement_start: SimTime::from_secs(1),
            placement_end: SimTime::from_secs(1)
                + SimDuration::from_secs_f64(config.placement_window_s),
            media_path,
            media_kernel,
            signalling: SignallingPath::default(),
            media_scratch: [0i16; SAMPLES_PER_FRAME],
            phase_timer: PhaseTimer::new(),
            sessions: Vec::new(),
            free_sessions: Vec::new(),
            media_index: HashMap::new(),
            phase_buckets: vec![Vec::new(); SUB_SLOTS],
            slot_armed: vec![false; SUB_SLOTS],
            calls_placed: 0,
            baseline_link: link,
            pbx_down: vec![false; servers as usize],
            answers_per_sec: Vec::new(),
            population,
            config,
        }
    }

    /// Select the signalling-plane implementation (builder style; the
    /// default is the interned cut-through path).
    #[must_use]
    pub fn with_signalling(mut self, signalling: SignallingPath) -> Self {
        self.signalling = signalling;
        self
    }

    /// Calls placed so far.
    #[must_use]
    pub fn calls_placed(&self) -> u64 {
        self.calls_placed
    }

    /// End of the placement window.
    #[must_use]
    pub fn placement_end(&self) -> SimTime {
        self.placement_end
    }

    /// Number of PBX servers.
    #[must_use]
    pub fn servers(&self) -> u32 {
        self.pbxes.len() as u32
    }

    /// Fold the accumulated phase timings into a breakdown of
    /// `total_wall_s` (the run's wall clock); all-zero with `enabled:
    /// false` when the `phase-timing` feature is compiled out.
    #[must_use]
    pub fn phase_breakdown(&self, total_wall_s: f64) -> des::PhaseBreakdown {
        self.phase_timer.breakdown(total_wall_s)
    }

    /// Seed the initial events: registrations at t≈0, first arrival after
    /// the placement start.
    pub fn prime(&mut self, sched: &mut Scheduler<Ev>) {
        self.prime_inner(sched, true);
    }

    /// Seed a partitioned world: registrations, faults and quality ticks,
    /// but **no** arrival chain — a sharded run's driver owns the arrival
    /// process and feeds this world [`Ev::PlaceOrder`]s instead.
    pub fn prime_partitioned(&mut self, sched: &mut Scheduler<Ev>) {
        self.prime_inner(sched, false);
    }

    fn prime_inner(&mut self, sched: &mut Scheduler<Ev>, with_arrivals: bool) {
        // Register caller and callee pools at every PBX through real
        // REGISTER messages.
        let mut reg_frames = Vec::new();
        for k in 0..self.pbxes.len() {
            let pbx = pbx_node(k as u32);
            let host = self.uacs[k].pbx_host.clone();
            for i in 0..self.config.user_pool {
                let caller_uid = format!("{}", 1000 + i);
                for ev in self.uacs[k].register(&caller_uid) {
                    if let UacEvent::SendSip { to, msg } = ev {
                        reg_frames.push(self.sip_frame(nodes::SIPP_CLIENT, to, msg));
                    }
                }
                // Callee registrations originate from the server node;
                // reuse the UAC message builder via a scratch instance.
                let callee_uid = format!("{}", 1500 + i);
                let mut scratch = Uac::with_tag(nodes::SIPP_SERVER, pbx, &host, 9000 + k as u32);
                for ev in scratch.register(&callee_uid) {
                    if let UacEvent::SendSip { to, msg } = ev {
                        reg_frames.push(self.sip_frame(nodes::SIPP_SERVER, to, msg));
                    }
                }
            }
        }
        // Pace the registration storm: real endpoints register over
        // seconds, not in one wire-melting burst; pacing also keeps the
        // access-link queues (5 ms budget) from tail-dropping REGISTERs
        // for the later servers of a farm.
        let spacing_ns = (900_000_000u64 / (reg_frames.len() as u64).max(1)).min(1_000_000);
        for (i, frame) in reg_frames.into_iter().enumerate() {
            sched.schedule(
                SimTime::from_nanos(spacing_ns * i as u64),
                Ev::SendFrame(frame),
            );
        }
        // Population mode: install the subscriber bindings in bulk (the
        // steady state is the expiry wheel's churn, not a prime storm),
        // start the wheel, and seed the finite-source arrival chain. The
        // classic pools above still prime — they provide the callee
        // extensions population callers dial.
        if let Some(pop_cfg) = self.config.population.clone() {
            for pbx in &mut self.pbxes {
                pbx.registrar.bulk_install(
                    SimTime::ZERO,
                    POP_UID_BASE + pop_cfg.first_user,
                    pop_cfg.subscribers,
                    nodes::SIPP_CLIENT,
                );
            }
            let pop = self
                .population
                .as_mut()
                .expect("built from the same config");
            // Tick 0 would re-REGISTER rank 0 at t = 0, racing the bulk
            // install it refreshes; start the wheel at tick 1.
            sched.schedule(
                SimTime::ZERO + pop.churn.tick_period(),
                Ev::ChurnTick { tick: 1 },
            );
            if with_arrivals {
                pop.arrivals_armed = true;
                self.pop_draw_next(self.placement_start, sched);
            }
        } else if with_arrivals {
            let first = self
                .arrivals
                .next_after(self.placement_start, &mut self.rng_arrivals);
            sched.schedule(first, Ev::PlaceCall);
        }
        // Scheduled faults.
        for (idx, event) in self.config.faults.events().iter().enumerate() {
            sched.schedule(event.at, Ev::Fault(idx));
        }
        // MOS-aware admission needs a live link-quality estimate; sample
        // the monitor once a second. Armed only for the MosCac law so all
        // other configurations keep their event stream (and digest) intact.
        if matches!(self.config.overload_law, Some(ControlLaw::MosCac { .. })) {
            sched.schedule(self.placement_start, Ev::QualityTick);
        }
    }

    // -- fault injection ----------------------------------------------------

    /// Answered calls per simulated second (index = second). Seconds after
    /// the last answer are absent, not zero.
    #[must_use]
    pub fn answers_per_second(&self) -> &[u64] {
        &self.answers_per_sec
    }

    /// Is PBX `k` currently crashed (dark)?
    #[must_use]
    pub fn pbx_is_down(&self, k: usize) -> bool {
        self.pbx_down.get(k).copied().unwrap_or(false)
    }

    fn scale_arrival_rate(&mut self, factor: f64) {
        match &mut self.arrivals {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Deterministic { rate } => {
                *rate *= factor;
            }
            ArrivalProcess::Mmpp {
                rate_low,
                rate_high,
                ..
            } => {
                *rate_low *= factor;
                *rate_high *= factor;
            }
        }
    }

    fn apply_fault(&mut self, now: SimTime, sched: &mut Scheduler<Ev>, idx: usize) {
        let Some(event) = self.config.faults.events().get(idx) else {
            return;
        };
        match event.kind.clone() {
            FaultKind::LinkDegrade { a, b, params } => {
                self.topo.network.set_duplex_link_params(a, b, params);
            }
            FaultKind::LinkPartition { a, b } => {
                let mut cut = self.baseline_link;
                cut.loss_probability = 1.0;
                self.topo.network.set_duplex_link_params(a, b, cut);
            }
            FaultKind::LinkHeal { a, b } => {
                let healed = self.baseline_link;
                self.topo.network.set_duplex_link_params(a, b, healed);
            }
            FaultKind::PbxCrash { pbx, restart_after } => {
                let k = pbx as usize;
                if k < self.pbxes.len() && !self.pbx_down[k] {
                    self.pbxes[k].crash(now);
                    self.pbx_down[k] = true;
                    sched.schedule(now + restart_after, Ev::PbxRestart { pbx });
                }
            }
            FaultKind::CpuThrottle { pbx, factor } => {
                if let Some(p) = self.pbxes.get_mut(pbx as usize) {
                    p.cpu.set_throttle(factor);
                }
            }
            FaultKind::FlashCrowd {
                rate_multiplier,
                duration,
            } => {
                self.scale_arrival_rate(rate_multiplier);
                sched.schedule(now + duration, Ev::FlashCrowdEnd { rate_multiplier });
            }
        }
    }

    /// The supervisor brought PBX `pbx` back: mark it reachable and replay
    /// the registration storm (bindings died with the process), paced like
    /// [`World::prime`]'s but compressed — endpoints notice the outage
    /// quickly and re-REGISTER within about a second.
    fn restart_pbx(&mut self, now: SimTime, sched: &mut Scheduler<Ev>, pbx: u32) {
        let k = pbx as usize;
        if k >= self.pbxes.len() {
            return;
        }
        self.pbx_down[k] = false;
        let node = pbx_node(pbx);
        let host = self.uacs[k].pbx_host.clone();
        let mut reg_frames = Vec::new();
        for i in 0..self.config.user_pool {
            let caller_uid = format!("{}", 1000 + i);
            for ev in self.uacs[k].register(&caller_uid) {
                if let UacEvent::SendSip { to, msg } = ev {
                    reg_frames.push(self.sip_frame(nodes::SIPP_CLIENT, to, msg));
                }
            }
            let callee_uid = format!("{}", 1500 + i);
            let mut scratch = Uac::with_tag(nodes::SIPP_SERVER, node, &host, 9000 + pbx);
            for ev in scratch.register(&callee_uid) {
                if let UacEvent::SendSip { to, msg } = ev {
                    reg_frames.push(self.sip_frame(nodes::SIPP_SERVER, to, msg));
                }
            }
        }
        let spacing_ns = (900_000_000u64 / (reg_frames.len() as u64).max(1)).min(1_000_000);
        for (i, frame) in reg_frames.into_iter().enumerate() {
            sched.schedule(
                now + SimDuration::from_nanos(spacing_ns * i as u64),
                Ev::SendFrame(frame),
            );
        }
    }

    // -- plumbing -----------------------------------------------------------

    fn send_frame(&mut self, now: SimTime, sched: &mut Scheduler<Ev>, frame: Frame) {
        let hop = self.topo.next_hop(frame.src, frame.dst);
        match self
            .topo
            .network
            .enqueue(now, frame.src, hop, frame.wire_len, &mut self.rng_network)
        {
            SendOutcome::Delivered { at } => sched.schedule(at, Ev::HopArrive { at: hop, frame }),
            // Dropped anywhere: the packet simply never arrives; receivers
            // observe the gap.
            SendOutcome::DroppedQueueFull | SendOutcome::DroppedError | SendOutcome::NoRoute => {}
        }
    }

    fn forward_frame(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        via: NodeId,
        frame: Frame,
    ) {
        let hop = self.topo.next_hop(via, frame.dst);
        if let SendOutcome::Delivered { at } =
            self.topo
                .network
                .enqueue(now, via, hop, frame.wire_len, &mut self.rng_network)
        {
            sched.schedule(at, Ev::HopArrive { at: hop, frame })
        }
    }

    /// Package a SIP message for the network according to the configured
    /// signalling path. On the interned path the on-wire size comes from
    /// the analytic `wire_len` — no serialization; on the reference path
    /// the message is serialized here, once, and travels as shared bytes.
    fn sip_frame(&self, src: NodeId, to: NodeId, msg: SipMessage) -> Frame {
        match self.signalling {
            SignallingPath::Interned => {
                let wire_len = msg.wire_len() + 46;
                debug_assert_eq!(wire_len, msg.to_wire().len() + 46, "analytic length exact");
                Frame {
                    src,
                    dst: to,
                    wire_len,
                    payload: Payload::Sip(msg),
                }
            }
            SignallingPath::Reference => {
                let bytes: Arc<[u8]> = msg.to_wire().into();
                Frame {
                    src,
                    dst: to,
                    wire_len: bytes.len() + 46,
                    payload: Payload::SipWire(bytes),
                }
            }
        }
    }

    /// Which UAC engine owns a Call-ID on the client host.
    fn uac_index_for(&self, call_id: &str) -> usize {
        let tag = if let Some(rest) = call_id.strip_prefix("uac-") {
            rest.split('-').next().and_then(|t| t.parse::<u32>().ok())
        } else {
            call_id
                .rsplit('-')
                .next()
                .and_then(|t| t.parse::<u32>().ok())
        };
        match tag {
            Some(t) if (t as usize) < self.uacs.len() => t as usize,
            _ => 0,
        }
    }

    fn process_uac_events(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        uac: usize,
        events: Vec<UacEvent>,
    ) {
        for ev in events {
            match ev {
                UacEvent::SendSip { to, msg } => {
                    let frame = self.sip_frame(nodes::SIPP_CLIENT, to, msg);
                    self.send_frame(now, sched, frame);
                }
                UacEvent::Answered {
                    call_id,
                    local_rtp_port,
                    remote_node,
                    remote_rtp_port,
                    hangup_after,
                } => {
                    let second = now.as_secs_f64() as usize;
                    if self.answers_per_sec.len() <= second {
                        self.answers_per_sec.resize(second + 1, 0);
                    }
                    self.answers_per_sec[second] += 1;
                    sched.schedule(
                        now + hangup_after,
                        Ev::Hangup {
                            call_id: call_id.clone(),
                        },
                    );
                    // The caller hears the flow delivered to its own port.
                    self.monitor.register_flow(
                        FlowId::from_node_port(nodes::SIPP_CLIENT.0, local_rtp_port),
                        &call_id,
                    );
                    if self.config.media != MediaMode::Off {
                        self.start_media(
                            now,
                            sched,
                            MediaKey {
                                call: call_id,
                                caller_side: true,
                            },
                            nodes::SIPP_CLIENT,
                            remote_node,
                            remote_rtp_port,
                        );
                    }
                }
                UacEvent::Ended { call_id, .. } => {
                    self.stop_media(&MediaKey {
                        call: call_id.clone(),
                        caller_side: true,
                    });
                    // Population mode: the caller idles again and the
                    // call's monitor state is queued for retirement.
                    self.pop_call_over(now, sched, call_id);
                }
                UacEvent::RetryAfter { call_id, delay } => {
                    // Honour the backoff plus up to 10% jitter so a shed
                    // burst does not re-arrive as a synchronised thundering
                    // herd.
                    use des::rng::Distributions;
                    let jitter = SimDuration::from_secs_f64(
                        delay.as_secs_f64() * 0.1 * self.rng_retry.unit_f64(),
                    );
                    sched.schedule(now + delay + jitter, Ev::UacRetry { call_id });
                }
                UacEvent::PacerWake { at } => {
                    sched.schedule(at, Ev::PacerWake { uac });
                }
            }
        }
    }

    fn process_uas_events(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        events: Vec<UasEvent>,
    ) {
        for ev in events {
            match ev {
                UasEvent::SendSip { to, msg } => {
                    let frame = self.sip_frame(nodes::SIPP_SERVER, to, msg);
                    self.send_frame(now, sched, frame);
                }
                UasEvent::AnswerDue { call_id, at } => {
                    sched.schedule(at, Ev::UasAnswer { call_id });
                }
                UasEvent::MediaReady {
                    call_id,
                    local_rtp_port,
                    remote_node,
                    remote_rtp_port,
                } => {
                    // Account this leg's received flow to the bridged call.
                    let owner = self
                        .pbxes
                        .iter()
                        .find_map(|p| p.peer_call_id(&call_id))
                        .unwrap_or(call_id.as_str())
                        .to_owned();
                    self.monitor.register_flow(
                        FlowId::from_node_port(nodes::SIPP_SERVER.0, local_rtp_port),
                        &owner,
                    );
                    if self.config.media != MediaMode::Off {
                        self.start_media(
                            now,
                            sched,
                            MediaKey {
                                call: call_id,
                                caller_side: false,
                            },
                            nodes::SIPP_SERVER,
                            remote_node,
                            remote_rtp_port,
                        );
                    }
                }
                UasEvent::Ended { call_id } => {
                    self.stop_media(&MediaKey {
                        call: call_id,
                        caller_side: false,
                    });
                }
            }
        }
    }

    fn process_pbx_actions(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        src: NodeId,
        actions: Vec<PbxAction>,
    ) {
        for act in actions {
            match act {
                PbxAction::SendSip { to, msg } => {
                    let frame = self.sip_frame(src, to, msg);
                    self.send_frame(now, sched, frame);
                }
                // The world relays RTP via the allocation-free
                // `Pbx::relay_rtp` fast path in `deliver`; this arm only
                // exists for completeness of the action protocol.
                PbxAction::SendRtp {
                    to,
                    to_port,
                    datagram,
                } => {
                    let wire_len = datagram.wire_len() + 46;
                    self.send_frame(
                        now,
                        sched,
                        Frame {
                            src,
                            dst: to,
                            wire_len,
                            payload: Payload::Rtp {
                                dst_port: to_port,
                                datagram,
                                sent_at: now,
                            },
                        },
                    );
                }
            }
        }
    }

    fn start_media(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        key: MediaKey,
        local_node: NodeId,
        remote_node: NodeId,
        remote_port: u16,
    ) {
        let ssrc = self.rng_media.next_raw() as u32;
        let first_seq = (self.rng_media.next_raw() & 0xFFFF) as u16;
        let first_ts = self.rng_media.next_raw() as u32;
        let source_seed = self.rng_media.next_raw();
        let mut source = if self.config.silence_suppression {
            AudioSource::Talkspurt(TalkspurtSource::conversational(source_seed))
        } else {
            match self.media_kernel {
                MediaKernel::Reference => AudioSource::Continuous(VoiceSource::new(source_seed)),
                MediaKernel::Batched => {
                    AudioSource::ContinuousBatched(FastVoiceSource::new(source_seed))
                }
            }
        };
        let mut packetizer = Packetizer::new(ssrc, Law::Mu, first_seq, first_ts);
        // Pre-encode one real frame to seed the cached payload. (With VAD
        // the session may start silent; seed from a scratch voice then.)
        let cached = match &mut source {
            AudioSource::Continuous(v) => {
                let samples = v.next_samples(SAMPLES_PER_FRAME);
                packetizer.encode_shared_reference(&samples)
            }
            AudioSource::ContinuousBatched(v) => {
                v.fill(&mut self.media_scratch);
                packetizer.encode_shared(&self.media_scratch)
            }
            AudioSource::Talkspurt(t) => {
                let samples = match t.next_slot() {
                    FrameSlot::Talk { samples, .. } => samples,
                    FrameSlot::Silence => {
                        VoiceSource::new(source_seed).next_samples(SAMPLES_PER_FRAME)
                    }
                };
                match self.media_kernel {
                    MediaKernel::Reference => packetizer.encode_shared_reference(&samples),
                    MediaKernel::Batched => packetizer.encode_shared(&samples),
                }
            }
        };
        let first_packet = packetizer.packetize_shared(cached.clone());
        // Send the first packet right away.
        let wire_len = first_packet.wire_len() + 46;
        self.send_frame(
            now,
            sched,
            Frame {
                src: local_node,
                dst: remote_node,
                wire_len,
                payload: Payload::Rtp {
                    dst_port: remote_port,
                    datagram: first_packet,
                    sent_at: now,
                },
            },
        );
        // Follow-up frames fire on the session's own 20 ms cadence; the
        // coalesced path quantises the cadence phase to a sub-slot grid so
        // one recurring event drives every session sharing the phase.
        let slot = ((now.as_nanos() % FRAME_NS) / SUB_NS) as usize;
        let grid = SimTime::from_nanos(now.as_nanos() / FRAME_NS * FRAME_NS + slot as u64 * SUB_NS);
        let session = MediaSession {
            key: key.clone(),
            packetizer,
            source,
            local_node,
            remote_node,
            remote_port,
            cached_payload: cached,
            frames_sent: 1,
            active: true,
            next_due: grid + FRAME_PERIOD,
        };
        let idx = match self.free_sessions.pop() {
            Some(free) => {
                self.sessions[free] = Some(session);
                free
            }
            None => {
                self.sessions.push(Some(session));
                self.sessions.len() - 1
            }
        };
        if let Some(old) = self.media_index.insert(key.clone(), idx) {
            // A reused Call-ID (shed-then-retried call): the stale session
            // stops; its bucket/tick entry sweeps it out lazily.
            if let Some(s) = self.sessions[old].as_mut() {
                s.active = false;
            }
        }
        match self.media_path {
            MediaPath::PerTick => sched.schedule(now + FRAME_PERIOD, Ev::MediaTick(key)),
            MediaPath::Coalesced => {
                self.phase_buckets[slot].push(idx);
                if !self.slot_armed[slot] {
                    self.slot_armed[slot] = true;
                    // The slot's grid time next period — exactly when this
                    // session's second packet is due. If the slot is already
                    // armed, its pending event fires at that same grid time
                    // (one grid point per slot per period), so the new
                    // session is picked up without an extra event.
                    sched.schedule(grid + FRAME_PERIOD, Ev::MediaFrame { slot });
                }
            }
        }
    }

    fn stop_media(&mut self, key: &MediaKey) {
        if let Some(&idx) = self.media_index.get(key) {
            if let Some(s) = self.sessions[idx].as_mut() {
                s.active = false;
            }
        }
    }

    /// Drop slab entry `idx`, clearing its key mapping unless the key has
    /// already been re-bound to a newer session.
    fn free_session(&mut self, idx: usize) {
        if let Some(s) = self.sessions[idx].take() {
            if self.media_index.get(&s.key) == Some(&idx) {
                self.media_index.remove(&s.key);
            }
            self.free_sessions.push(idx);
        }
    }

    /// Advance one session by one frame: returns the datagram to emit, or
    /// `None` for a silence-suppressed slot. `scratch` is the world's
    /// reused PCM buffer (batched kernel only); `kernel` selects how
    /// refresh frames are synthesised and companded.
    fn next_media_datagram(
        session: &mut MediaSession,
        scratch: &mut [i16; SAMPLES_PER_FRAME],
        kernel: MediaKernel,
        encode_every: u64,
    ) -> Option<RtpDatagram> {
        // With VAD, a silent slot advances the media clock and sends
        // nothing; the frame cadence continues.
        let talking = match &mut session.source {
            AudioSource::Continuous(_) | AudioSource::ContinuousBatched(_) => true,
            AudioSource::Talkspurt(t) => match t.next_slot() {
                FrameSlot::Talk { samples, .. } => {
                    if session.frames_sent.is_multiple_of(encode_every) {
                        session.cached_payload = match kernel {
                            MediaKernel::Reference => samples
                                .iter()
                                .map(|&s| rtpcore::g711::reference::ulaw_encode(s))
                                .collect(),
                            MediaKernel::Batched => {
                                let mut buf = vec![0u8; samples.len()];
                                rtpcore::g711::ulaw_encode_into(&samples, &mut buf);
                                buf.into()
                            }
                        };
                    }
                    true
                }
                FrameSlot::Silence => false,
            },
        };
        if !talking {
            session.packetizer.skip_frame();
            return None;
        }
        // Refresh the cached payload on encode frames; the voice source
        // only advances when a frame is actually synthesised.
        if session.frames_sent.is_multiple_of(encode_every) {
            match &mut session.source {
                AudioSource::Continuous(voice) => {
                    let samples = voice.next_samples(SAMPLES_PER_FRAME);
                    session.cached_payload = session.packetizer.encode_shared_reference(&samples);
                }
                AudioSource::ContinuousBatched(voice) => {
                    voice.fill(scratch);
                    session.cached_payload = session.packetizer.encode_shared(&scratch[..]);
                }
                AudioSource::Talkspurt(_) => {}
            }
        }
        // The steady-state fast path: clone an Arc, not 160 bytes.
        let datagram = session
            .packetizer
            .packetize_shared(session.cached_payload.clone());
        session.frames_sent += 1;
        Some(datagram)
    }

    /// Cut-through emission for the coalesced path: chase the packet
    /// across all four link legs at emission time, resolve the PBX relay
    /// inline and tap the monitor with the computed arrival instant — no
    /// per-packet events at all. Every link still serializes the frame
    /// (busy-until, queueing, loss draws), so delays, drops and link
    /// stats match the hop-by-hop reference to within emission-order
    /// serialization ties; the per-tick path keeps the event-per-hop
    /// model as the faithful reference.
    fn emit_media_express(
        &mut self,
        now: SimTime,
        src: NodeId,
        pbx: NodeId,
        pbx_port: u16,
        datagram: &RtpDatagram,
        timer: &mut PhaseTimer,
    ) {
        let Some(k) = self.pbx_index_of(pbx) else {
            return;
        };
        if self.pbx_down[k] {
            return;
        }
        let wire_len = datagram.wire_len() + 46;
        let delivered = timer.measure(Phase::Relay, || {
            let sw = self.topo.next_hop(src, pbx);
            let net = &mut self.topo.network;
            let SendOutcome::Delivered { at: t1 } =
                net.enqueue(now, src, sw, wire_len, &mut self.rng_network)
            else {
                return None;
            };
            let SendOutcome::Delivered { at: t2 } =
                net.enqueue(t1, sw, pbx, wire_len, &mut self.rng_network)
            else {
                return None;
            };
            let (to, to_port) = self.pbxes[k].relay_rtp(now, pbx_port)?;
            let sw_back = self.topo.next_hop(pbx, to);
            let net = &mut self.topo.network;
            let SendOutcome::Delivered { at: t3 } =
                net.enqueue(t2, pbx, sw_back, wire_len, &mut self.rng_network)
            else {
                return None;
            };
            let SendOutcome::Delivered { at: t4 } =
                net.enqueue(t3, sw_back, to, wire_len, &mut self.rng_network)
            else {
                return None;
            };
            Some((to, to_port, t4))
        });
        let Some((to, to_port, t4)) = delivered else {
            return;
        };
        let flow = FlowId::from_node_port(to.0, to_port);
        timer.measure(Phase::Scoring, || {
            self.monitor.tap_rtp(
                flow,
                t4.as_secs_f64(),
                t4.since(now).as_secs_f64(),
                &datagram.header,
            );
        });
    }

    fn emit_media(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        src: NodeId,
        dst: NodeId,
        port: u16,
        datagram: RtpDatagram,
    ) {
        let wire_len = datagram.wire_len() + 46;
        self.send_frame(
            now,
            sched,
            Frame {
                src,
                dst,
                wire_len,
                payload: Payload::Rtp {
                    dst_port: port,
                    datagram,
                    sent_at: now,
                },
            },
        );
    }

    fn media_encode_every(&self) -> Option<u64> {
        match self.config.media {
            MediaMode::Off => None,
            MediaMode::PerPacket { encode_every } => Some(u64::from(encode_every.max(1))),
        }
    }

    fn on_media_tick(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        key: MediaKey,
        timer: &mut PhaseTimer,
    ) {
        let Some(encode_every) = self.media_encode_every() else {
            return;
        };
        let kernel = self.media_kernel;
        let Some(&idx) = self.media_index.get(&key) else {
            return;
        };
        let Some(session) = self.sessions[idx].as_mut() else {
            return;
        };
        if !session.active {
            self.free_session(idx);
            return;
        }
        let emit = timer
            .measure(Phase::MediaEncode, || {
                Self::next_media_datagram(session, &mut self.media_scratch, kernel, encode_every)
            })
            .map(|d| {
                (
                    session.local_node,
                    session.remote_node,
                    session.remote_port,
                    d,
                )
            });
        if let Some((src, dst, port, datagram)) = emit {
            timer.measure(Phase::Relay, || {
                self.emit_media(now, sched, src, dst, port, datagram);
            });
        }
        sched.schedule(now + FRAME_PERIOD, Ev::MediaTick(key));
    }

    fn on_media_frame(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        slot: usize,
        timer: &mut PhaseTimer,
    ) {
        let Some(encode_every) = self.media_encode_every() else {
            self.slot_armed[slot] = false;
            return;
        };
        let kernel = self.media_kernel;
        // Take the bucket to sidestep aliasing with `self` methods; ended
        // sessions are compacted out, survivors keep insertion order.
        let mut bucket = std::mem::take(&mut self.phase_buckets[slot]);
        let mut keep = 0;
        for i in 0..bucket.len() {
            let idx = bucket[i];
            let Some(session) = self.sessions[idx].as_mut() else {
                continue;
            };
            if !session.active {
                self.free_session(idx);
                continue;
            }
            if session.next_due <= now {
                session.next_due += FRAME_PERIOD;
                let emit = timer
                    .measure(Phase::MediaEncode, || {
                        Self::next_media_datagram(
                            session,
                            &mut self.media_scratch,
                            kernel,
                            encode_every,
                        )
                    })
                    .map(|d| {
                        (
                            session.local_node,
                            session.remote_node,
                            session.remote_port,
                            d,
                        )
                    });
                if let Some((src, dst, port, datagram)) = emit {
                    if self.capture.is_none() {
                        // A span port needs real per-hop frames; without
                        // one, cut straight through the network model.
                        self.emit_media_express(now, src, dst, port, &datagram, timer);
                    } else {
                        timer.measure(Phase::Relay, || {
                            self.emit_media(now, sched, src, dst, port, datagram);
                        });
                    }
                }
            }
            // Sessions with next_due > now joined after this event was
            // scheduled; they start on the next period.
            bucket[keep] = idx;
            keep += 1;
        }
        bucket.truncate(keep);
        self.phase_buckets[slot] = bucket;
        if self.phase_buckets[slot].is_empty() {
            self.slot_armed[slot] = false;
        } else {
            sched.schedule(now + FRAME_PERIOD, Ev::MediaFrame { slot });
        }
    }

    fn pbx_index_of(&self, node: NodeId) -> Option<usize> {
        let idx = node.0.checked_sub(3)? as usize;
        (idx < self.pbxes.len()).then_some(idx)
    }

    /// Route a delivered SIP message to the engine living at `dst`.
    fn handle_sip_delivery(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        src: NodeId,
        dst: NodeId,
        msg: SipMessage,
    ) {
        self.monitor.tap_sip(&msg);
        if let Some(k) = self.pbx_index_of(dst) {
            let actions = self.pbxes[k].handle_sip(now, src, msg);
            self.process_pbx_actions(now, sched, dst, actions);
        } else if dst == nodes::SIPP_CLIENT {
            let idx = msg
                .call_id()
                .map(|cid| self.uac_index_for(cid))
                .unwrap_or(0);
            let events = self.uacs[idx].on_sip(now, msg);
            self.process_uac_events(now, sched, idx, events);
        } else if dst == nodes::SIPP_SERVER {
            let events = self.uas.on_sip(now, src, msg);
            self.process_uas_events(now, sched, events);
        }
    }

    fn deliver(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        frame: Frame,
        timer: &mut PhaseTimer,
    ) {
        // A crashed PBX is dark: frames reach its NIC and die there.
        if let Some(k) = self.pbx_index_of(frame.dst) {
            if self.pbx_down[k] {
                return;
            }
        }
        if let Some(cap) = &mut self.capture {
            // The only place RTP wire bytes are materialised: a span port
            // needs real octets; the relay path never does.
            let (dst_port, payload) = match &frame.payload {
                Payload::Sip(msg) => (5060u16, msg.to_wire()),
                Payload::SipWire(bytes) => (5060u16, bytes.to_vec()),
                Payload::Rtp {
                    dst_port, datagram, ..
                } => (*dst_port, datagram.encode()),
            };
            cap.capture(vmon::pcap::CapturedPacket {
                timestamp_us: now.as_nanos() / 1_000,
                src_node: frame.src.0,
                dst_node: frame.dst.0,
                src_port: dst_port, // symmetric port model
                dst_port,
                payload,
            });
        }
        match frame.payload {
            Payload::Sip(msg) => timer.measure(Phase::Signalling, || {
                self.handle_sip_delivery(now, sched, frame.src, frame.dst, msg);
            }),
            Payload::SipWire(bytes) => {
                // The reference path's per-delivery cost, attributed to its
                // own bucket so the signalling benchmark can separate wire
                // decode from protocol work. (Not nested inside the
                // Signalling measure: PhaseTimer does not nest.)
                let msg = timer.measure(Phase::SipWire, || {
                    sipcore::parse_message(&bytes)
                        .expect("reference-path bytes come from to_wire and always re-parse")
                });
                // The reference path also materialises every SDP body
                // eagerly: parse to an owned description, serialize back.
                // Byte-identical by the builder/parser round-trip
                // invariant, so physics are unchanged — but the work (and
                // its allocations) is real and lands in its own bucket.
                // The interned path never does this; endpoints read
                // structured bodies or lazy views instead.
                let msg = timer.measure(Phase::SdpWire, || reparse_sdp_body(msg));
                timer.measure(Phase::Signalling, || {
                    self.handle_sip_delivery(now, sched, frame.src, frame.dst, msg);
                });
            }
            Payload::Rtp {
                dst_port,
                datagram,
                sent_at,
            } => {
                if let Some(k) = self.pbx_index_of(frame.dst) {
                    // Route-only relay: the datagram is forwarded as-is
                    // (payload refcount bump), keeping the original
                    // emission time so endpoints see true mouth-to-ear
                    // delay. No action Vec, no byte copy, no re-parse.
                    timer.measure(Phase::Relay, || {
                        if let Some((to, to_port)) = self.pbxes[k].relay_rtp(now, dst_port) {
                            let wire_len = datagram.wire_len() + 46;
                            self.send_frame(
                                now,
                                sched,
                                Frame {
                                    src: frame.dst,
                                    dst: to,
                                    wire_len,
                                    payload: Payload::Rtp {
                                        dst_port: to_port,
                                        datagram,
                                        sent_at,
                                    },
                                },
                            );
                        }
                    });
                } else {
                    // Delivered to an endpoint: the monitor scores it off
                    // the decoded header riding with the datagram.
                    let flow = FlowId::from_node_port(frame.dst.0, dst_port);
                    timer.measure(Phase::Scoring, || {
                        self.monitor.tap_rtp(
                            flow,
                            now.as_secs_f64(),
                            now.since(sent_at).as_secs_f64(),
                            &datagram.header,
                        );
                    });
                }
            }
        }
    }

    fn place_call(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if now <= self.placement_end {
            let i = self.calls_placed % u64::from(self.config.user_pool);
            let caller = format!("{}", 1000 + i);
            let callee = format!("{}", 1500 + i);
            let hold = self.config.holding.sample(&mut self.rng_holding);
            // Uniform random dispatch across the farm — the discipline a
            // DNS SRV pool gives you. (Random, not round-robin: Bernoulli
            // splitting keeps each substream Poisson, so the per-server
            // Erlang-B comparison in `farm` is exact; round-robin would
            // smooth the substreams and flatter the split layouts.)
            let k = if self.uacs.len() == 1 {
                0
            } else {
                use des::rng::Distributions;
                self.rng_dispatch.below(self.uacs.len() as u64) as usize
            };
            let (_, events) = self.uacs[k].start_call(now, &caller, &callee, hold);
            self.calls_placed += 1;
            self.process_uac_events(now, sched, k, events);
            let next = self.arrivals.next_after(now, &mut self.rng_arrivals);
            if next <= self.placement_end {
                sched.schedule(next, Ev::PlaceCall);
            }
        }
    }

    /// Place exactly one call right now (sharded runs: an
    /// [`Ev::PlaceOrder`] dispatched by the partition driver). Unlike
    /// [`World::place_call`] this neither consults the arrival process nor
    /// gates on the placement window — the driver already admitted the
    /// order; it simply lands one control-plane hop later.
    fn place_one(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        let i = self.calls_placed % u64::from(self.config.user_pool);
        let caller = format!("{}", 1000 + i);
        let callee = format!("{}", 1500 + i);
        let hold = self.config.holding.sample(&mut self.rng_holding);
        let k = if self.uacs.len() == 1 {
            0
        } else {
            use des::rng::Distributions;
            self.rng_dispatch.below(self.uacs.len() as u64) as usize
        };
        let (_, events) = self.uacs[k].start_call(now, &caller, &callee, hold);
        self.calls_placed += 1;
        self.process_uac_events(now, sched, k, events);
    }

    // -- finite-source population workload ----------------------------------

    /// Draw the next finite-source arrival and arm it. No-op when this
    /// world does not own its arrival chain (shard worlds), when the
    /// placement window is over, or when every subscriber is mid-call
    /// (the next hangup re-draws).
    fn pop_draw_next(&mut self, now: SimTime, sched: &mut Scheduler<Ev>) {
        if now > self.placement_end {
            return;
        }
        let Some(pop) = self.population.as_mut() else {
            return;
        };
        if !pop.arrivals_armed {
            return;
        }
        if let Some(a) = pop.engine.next_arrival(now, &mut self.rng_arrivals) {
            if a.at <= self.placement_end {
                sched.schedule(a.at, Ev::PopArrival { tag: a.tag });
            }
        }
    }

    /// A population arrival surfaced: claim it (stale stamps are
    /// logically cancelled timers — discard), place the call, re-draw.
    fn pop_arrival(&mut self, now: SimTime, sched: &mut Scheduler<Ev>, tag: GenTag) {
        if now > self.placement_end {
            return;
        }
        let Some(pop) = self.population.as_mut() else {
            return;
        };
        let Some(rank) = pop.engine.claim(tag) else {
            return;
        };
        let global = pop.first_user + rank;
        self.pop_place(now, sched, global, None);
        self.pop_draw_next(now, sched);
    }

    /// Place one population call for the user of global rank `global`.
    /// `hold` is `Some` when the sharded driver already sampled it (it
    /// rides the placement order), `None` to sample locally.
    fn pop_place(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        global: u64,
        hold: Option<SimDuration>,
    ) {
        let caller = format!("{}", POP_UID_BASE + global);
        let callee = format!("{}", 1500 + global % u64::from(self.config.user_pool));
        let hold = hold.unwrap_or_else(|| self.config.holding.sample(&mut self.rng_holding));
        let k = if self.uacs.len() == 1 {
            0
        } else {
            use des::rng::Distributions;
            self.rng_dispatch.below(self.uacs.len() as u64) as usize
        };
        let (call_id, events) = self.uacs[k].start_call(now, &caller, &callee, hold);
        // A pacer that defers the INVITE returns no Call-ID, which would
        // orphan the busy bookkeeping — population mode does not support
        // pacer-arming overload laws.
        debug_assert!(
            !call_id.is_empty(),
            "population mode is incompatible with caller-side pacing"
        );
        if let Some(pop) = self.population.as_mut() {
            if !call_id.is_empty() {
                pop.call_user.insert(call_id, global - pop.first_user);
            }
        }
        self.calls_placed += 1;
        self.process_uac_events(now, sched, k, events);
    }

    /// A population call reached a terminal outcome: the caller rejoins
    /// the idle set (which stales any outstanding arrival draw — re-draw),
    /// and the call's monitor state is retired after the media tail.
    fn pop_call_over(&mut self, now: SimTime, sched: &mut Scheduler<Ev>, call_id: String) {
        let Some(pop) = self.population.as_mut() else {
            return;
        };
        let Some(rank) = pop.call_user.remove(&call_id) else {
            return;
        };
        pop.engine.call_ended(rank);
        sched.schedule(now + RETIRE_DELAY, Ev::RetireCall { call_id });
        self.pop_draw_next(now, sched);
    }

    /// One expiry-wheel tick: the due bucket's contiguous rank range
    /// re-REGISTERs through the digest handshake, paced across the first
    /// half of the tick so it cannot melt the access link. The range is
    /// walked in [`CHURN_SLICE`]-sized chunks so a million-user wheel
    /// never holds more than a slice of REGISTER frames live at once.
    fn pop_churn(&mut self, now: SimTime, sched: &mut Scheduler<Ev>, tick: u64) {
        let Some(pop) = self.population.as_ref() else {
            return;
        };
        let period = pop.churn.tick_period();
        // Churn is the steady state for the whole placement window; after
        // that the wheel stops so the run can drain and terminate.
        let next = now + period;
        if next <= self.placement_end {
            sched.schedule(next, Ev::ChurnTick { tick: tick + 1 });
        }
        let due = pop.churn.due_range(tick);
        if due.start == due.end {
            return;
        }
        let spacing_ns = (period.as_nanos() / 2 / (due.end - due.start)).clamp(1, 1_000_000);
        self.pop_churn_slice(now, sched, tick, due.start, spacing_ns);
    }

    /// Re-REGISTER up to [`CHURN_SLICE`] users of `tick`'s due range
    /// starting at `start`, each at its pacing offset, then hand off to
    /// the next slice event timed at the following user's send instant.
    fn pop_churn_slice(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        tick: u64,
        start: u64,
        spacing_ns: u64,
    ) {
        let Some(pop) = self.population.as_ref() else {
            return;
        };
        let due = pop.churn.due_range(tick);
        let first_user = pop.first_user;
        let servers = self.uacs.len() as u64;
        let end = (start + CHURN_SLICE).min(due.end);
        for rank in start..end {
            let uid = format!("{}", POP_UID_BASE + first_user + rank);
            // Round-robin the auth load across the farm's client engines.
            let k = (rank % servers) as usize;
            let at = now + SimDuration::from_nanos(spacing_ns * (rank - start));
            let events = self.uacs[k].register_digest(&uid);
            for ev in events {
                if let UacEvent::SendSip { to, msg } = ev {
                    let frame = self.sip_frame(nodes::SIPP_CLIENT, to, msg);
                    sched.schedule(at, Ev::SendFrame(frame));
                }
            }
        }
        if end < due.end {
            sched.schedule(
                now + SimDuration::from_nanos(spacing_ns * (end - start)),
                Ev::ChurnSlice {
                    tick,
                    start: end,
                    spacing_ns,
                },
            );
        }
    }
}

impl EventHandler<Ev> for World {
    fn handle(&mut self, at: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        // Lift the timer out of `self` so measured closures can borrow the
        // world freely; its accumulations are written back at the end.
        // With `phase-timing` off the timer is a ZST and this is free.
        let mut timer = std::mem::take(&mut self.phase_timer);
        match event {
            Ev::PlaceCall => timer.measure(Phase::Signalling, || self.place_call(at, sched)),
            Ev::ArrivalTick => {
                unreachable!("ArrivalTick is intercepted by the shard driver")
            }
            Ev::PlaceOrder => timer.measure(Phase::Signalling, || self.place_one(at, sched)),
            Ev::SendFrame(frame) => {
                let phase = match frame.payload {
                    Payload::Sip(_) | Payload::SipWire(_) => Phase::Signalling,
                    Payload::Rtp { .. } => Phase::Relay,
                };
                timer.measure(phase, || self.send_frame(at, sched, frame));
            }
            Ev::HopArrive { at: node, frame } => {
                if node == frame.dst {
                    self.deliver(at, sched, frame, &mut timer);
                } else {
                    let phase = match frame.payload {
                        Payload::Sip(_) | Payload::SipWire(_) => Phase::Signalling,
                        Payload::Rtp { .. } => Phase::Relay,
                    };
                    timer.measure(phase, || self.forward_frame(at, sched, node, frame));
                }
            }
            Ev::MediaTick(key) => self.on_media_tick(at, sched, key, &mut timer),
            Ev::MediaFrame { slot } => self.on_media_frame(at, sched, slot, &mut timer),
            Ev::Hangup { call_id } => timer.measure(Phase::Signalling, || {
                self.stop_media(&MediaKey {
                    call: call_id.clone(),
                    caller_side: true,
                });
                let idx = self.uac_index_for(&call_id);
                let events = self.uacs[idx].hangup(at, &call_id);
                self.process_uac_events(at, sched, idx, events);
            }),
            Ev::UasAnswer { call_id } => timer.measure(Phase::Signalling, || {
                let events = self.uas.answer(at, &call_id);
                self.process_uas_events(at, sched, events);
            }),
            Ev::Fault(idx) => self.apply_fault(at, sched, idx),
            Ev::PbxRestart { pbx } => {
                timer.measure(Phase::Signalling, || self.restart_pbx(at, sched, pbx));
            }
            Ev::UacRetry { call_id } => timer.measure(Phase::Signalling, || {
                let idx = self.uac_index_for(&call_id);
                let events = self.uacs[idx].retry_call(at, &call_id);
                self.process_uac_events(at, sched, idx, events);
            }),
            Ev::FlashCrowdEnd { rate_multiplier } => {
                self.scale_arrival_rate(1.0 / rate_multiplier);
            }
            Ev::PacerWake { uac } => timer.measure(Phase::Signalling, || {
                let events = self.uacs[uac].pacer_wake(at);
                self.process_uac_events(at, sched, uac, events);
            }),
            Ev::PopArrival { tag } => {
                timer.measure(Phase::Signalling, || self.pop_arrival(at, sched, tag));
            }
            Ev::PlaceOrderFor { user, hold_ns } => timer.measure(Phase::Signalling, || {
                self.pop_place(at, sched, user, Some(SimDuration::from_nanos(hold_ns)));
            }),
            Ev::PopCallEnded { .. } => {
                unreachable!("PopCallEnded is intercepted by the shard driver")
            }
            Ev::ChurnTick { tick } => {
                timer.measure(Phase::Signalling, || self.pop_churn(at, sched, tick));
            }
            Ev::ChurnSlice {
                tick,
                start,
                spacing_ns,
            } => {
                timer.measure(Phase::Signalling, || {
                    self.pop_churn_slice(at, sched, tick, start, spacing_ns);
                });
            }
            Ev::RetireCall { call_id } => timer.measure(Phase::Scoring, || {
                self.monitor.retire_call(&call_id);
            }),
            Ev::QualityTick => timer.measure(Phase::Scoring, || {
                let (loss, jitter_ms, delay_ms) = self.monitor.link_quality();
                for pbx in &mut self.pbxes {
                    pbx.observe_link_quality(loss, jitter_ms, delay_ms);
                }
                // Keep sampling while calls can still arrive or drain;
                // stop re-arming once the world has gone quiet so runs
                // bounded by queue exhaustion still terminate naturally.
                let busy =
                    at <= self.placement_end || self.pbxes.iter().any(|p| p.active_calls() > 0);
                if busy {
                    sched.schedule(at + SimDuration::from_secs(1), Ev::QualityTick);
                }
            }),
        }
        self.phase_timer = timer;
    }
}
