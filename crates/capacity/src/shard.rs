//! Within-run parallel execution: the farm partitioned into per-PBX
//! shards under a conservative sync horizon.
//!
//! The classic runner ([`crate::experiment::EmpiricalRunner::run_with`])
//! drives the whole farm through one event wheel on one thread. This
//! module splits a multi-server run into **one shard per PBX**: each
//! shard is a complete private [`World`] universe — its own star
//! topology, channel pool, UAC/UAS pair, monitor and RNG streams — plus
//! a **driver** on shard 0 owning the arrival process. The driver draws
//! arrivals from the run's Poisson clock and dispatches each call to a
//! uniformly random shard (Bernoulli splitting keeps every per-server
//! substream Poisson, so the farm's Erlang-B analytics stay exact),
//! where the order lands one control-plane hop later as
//! [`Ev::PlaceOrder`].
//!
//! That dispatch hop **is** the conservative lookahead: shards exchange
//! nothing but call orders, and an order drawn at `t` cannot take effect
//! before `t + dispatch_delay`. The delay is derived from the network's
//! per-link latency floor ([`netsim::Network::min_latency_floor`]) with
//! a 20 ms control-plane floor on top — the scale of a real dispatcher's
//! forwarding hop — giving the windowed executor a horizon wide enough
//! to amortise its barriers over thousands of events.
//!
//! Both [`ExecMode`]s run the *same* partitioned model through
//! [`des::ShardedSim`]; `Sequential` is the single-threaded
//! global-interleave reference and `Sharded { threads }` the windowed
//! parallel executor. They are digest-identical at any thread count (see
//! `des::shard` for the argument; `tests/parallel_determinism.rs` and
//! `bench_parallel_json` enforce it).

use crate::experiment::{compute_recoveries, EmpiricalConfig, RunResult, SimOptions};
use crate::world::{pbx_node, Ev, World};
use des::rng::Distributions;
use des::{
    PhaseBreakdown, Scheduler, ShardCtx, ShardWorld, ShardedSim, SimDuration, SimTime, StreamRng,
};
use faults::{FaultKind, FaultSchedule};
use loadgen::{ArrivalProcess, CallOutcome, HoldingDist, PopulationArrivals, PopulationConfig};
use netsim::NodeId;
use teletraffic::Erlangs;
use vmon::MonitorReport;

/// Which executor drives a partitioned run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded global-interleave reference: pops the globally
    /// smallest `(time, seq)` key across all shard wheels.
    Sequential,
    /// Windowed parallel executor on up to `threads` workers (clamped by
    /// the [`des::pool`] budget and the shard count).
    Sharded {
        /// Requested worker threads.
        threads: u32,
    },
}

impl ExecMode {
    /// The mode an [`EmpiricalConfig`] asks for: `Sharded` with the
    /// configured thread count, defaulting to the process-wide
    /// [`des::pool`] budget when `threads` is `None`.
    #[must_use]
    pub fn from_config(config: &EmpiricalConfig) -> Self {
        let threads = config
            .threads
            .unwrap_or_else(|| des::pool::total().try_into().unwrap_or(u32::MAX));
        ExecMode::Sharded { threads }
    }
}

/// Minimum control-plane dispatch delay: the forwarding hop a real edge
/// dispatcher adds between drawing a call and the PBX seeing its INVITE.
/// Also the floor under the sync horizon — wide enough that a window
/// spans many 20 ms media frames' worth of events per shard.
const DISPATCH_FLOOR: SimDuration = SimDuration::from_millis(20);

/// The arrival driver living on shard 0: the run's single Poisson clock
/// plus the uniform dispatch draw, with their own decorrelated RNG
/// streams (the per-shard worlds consume `stream_seed(seed, k)` for
/// `k < shards`; the driver takes the next index).
struct Driver {
    arrivals: ArrivalProcess,
    rng_arrivals: StreamRng,
    rng_dispatch: StreamRng,
    placement_end: SimTime,
    dispatch: SimDuration,
    population: Option<DriverPop>,
}

/// Population mode on the partitioned model: the driver owns the
/// whole-population aggregated Engset engine and dispatches each claimed
/// arrival to the shard whose contiguous block homes the caller
/// ([`PopulationConfig::shard_of`]); the sampled holding time rides the
/// order. Call-end bookkeeping is **open loop**: the driver estimates the
/// end as `dispatch + pickup + hold` rather than observing the shard's
/// terminal outcome (a cross-shard feedback edge would shrink the
/// lookahead to zero). Blocked calls therefore idle slightly later here
/// than in the classic runner — one more way the partitioned model is a
/// *different* model, digest-compared only against its own executors.
struct DriverPop {
    engine: PopulationArrivals,
    rng_holding: StreamRng,
    cfg: PopulationConfig,
    pickup: SimDuration,
}

/// One partition: a private single-server [`World`], plus the driver on
/// shard 0.
struct CapacityShard {
    world: World,
    driver: Option<Driver>,
}

impl CapacityShard {
    /// Scale the driver's arrival rate (flash-crowd begin/end).
    fn scale_driver_rate(&mut self, factor: f64) {
        if let Some(d) = &mut self.driver {
            match &mut d.arrivals {
                ArrivalProcess::Poisson { rate } | ArrivalProcess::Deterministic { rate } => {
                    *rate *= factor;
                }
                ArrivalProcess::Mmpp {
                    rate_low,
                    rate_high,
                    ..
                } => {
                    *rate_low *= factor;
                    *rate_high *= factor;
                }
            }
        }
    }
}

impl ShardWorld for CapacityShard {
    type Ev = Ev;

    fn handle(&mut self, at: SimTime, ev: Ev, ctx: &mut ShardCtx<'_, Ev>) {
        match ev {
            Ev::ArrivalTick => {
                let d = self.driver.as_mut().expect("driver owns ArrivalTick");
                if at > d.placement_end {
                    return;
                }
                let shards = ctx.shards();
                let dst = if shards == 1 {
                    0
                } else {
                    d.rng_dispatch.below(shards as u64) as usize
                };
                let dispatch = d.dispatch;
                // The dispatch hop applies to every order — including the
                // driver's own shard — so call physics are identical no
                // matter how many shards or threads execute the run.
                let next = d.arrivals.next_after(at, &mut d.rng_arrivals);
                let rearm = next <= d.placement_end;
                ctx.send(dst, at + dispatch, Ev::PlaceOrder);
                if rearm {
                    ctx.sched.schedule(next, Ev::ArrivalTick);
                }
            }
            // Population mode: the driver's aggregated arrival clock. The
            // stamp decides liveness — a claim that fails is a superseded
            // draw, discarded like a cancelled timer.
            Ev::PopArrival { tag } if self.driver.is_some() => {
                let d = self.driver.as_mut().expect("checked");
                if at > d.placement_end {
                    return;
                }
                let Driver {
                    population,
                    rng_arrivals,
                    dispatch,
                    placement_end,
                    ..
                } = d;
                let p = population
                    .as_mut()
                    .expect("population driver owns PopArrival");
                let Some(rank) = p.engine.claim(tag) else {
                    return;
                };
                let hold = self.world.config.holding.sample(&mut p.rng_holding);
                let dst = p.cfg.shard_of(rank, ctx.shards());
                ctx.send(
                    dst,
                    at + *dispatch,
                    Ev::PlaceOrderFor {
                        user: rank,
                        hold_ns: hold.as_nanos(),
                    },
                );
                // Open-loop end estimate (see `DriverPop`): the user
                // rejoins the idle set when the call would end if answered.
                ctx.sched.schedule(
                    at + *dispatch + p.pickup + hold,
                    Ev::PopCallEnded { user: rank },
                );
                if let Some(a) = p.engine.next_arrival(at, rng_arrivals) {
                    if a.at <= *placement_end {
                        ctx.sched.schedule(a.at, Ev::PopArrival { tag: a.tag });
                    }
                }
            }
            Ev::PopCallEnded { user } => {
                let d = self.driver.as_mut().expect("driver owns PopCallEnded");
                let Driver {
                    population,
                    rng_arrivals,
                    placement_end,
                    ..
                } = d;
                let p = population
                    .as_mut()
                    .expect("population driver owns PopCallEnded");
                p.engine.call_ended(user);
                // The idle-count change staled any outstanding draw;
                // re-arm while calls can still be admitted.
                if at <= *placement_end {
                    if let Some(a) = p.engine.next_arrival(at, rng_arrivals) {
                        if a.at <= *placement_end {
                            ctx.sched.schedule(a.at, Ev::PopArrival { tag: a.tag });
                        }
                    }
                }
            }
            // Flash crowds act on the arrival process, which the driver
            // owns in a partitioned run; crashes, throttles and link
            // faults stay with the world that hosts the target.
            Ev::Fault(idx)
                if self.driver.is_some()
                    && matches!(
                        self.world.config.faults.events().get(idx).map(|e| &e.kind),
                        Some(FaultKind::FlashCrowd { .. })
                    ) =>
            {
                let Some(FaultKind::FlashCrowd {
                    rate_multiplier,
                    duration,
                }) = self
                    .world
                    .config
                    .faults
                    .events()
                    .get(idx)
                    .map(|e| e.kind.clone())
                else {
                    unreachable!("guard matched FlashCrowd");
                };
                self.scale_driver_rate(rate_multiplier);
                ctx.sched
                    .schedule(at + duration, Ev::FlashCrowdEnd { rate_multiplier });
            }
            Ev::FlashCrowdEnd { rate_multiplier } if self.driver.is_some() => {
                self.scale_driver_rate(1.0 / rate_multiplier);
            }
            other => des::EventHandler::handle(&mut self.world, at, other, ctx.sched),
        }
    }
}

/// Map a star-topology node into a single-server shard universe: infra
/// nodes (switch, client, server hosts) keep their identity, the shard's
/// own PBX becomes PBX 0, and other shards' PBXes don't exist here.
fn remap_node(n: NodeId, shard: u32) -> Option<NodeId> {
    if n == pbx_node(0) || u32::from(n.0) < u32::from(pbx_node(0).0) {
        if n == pbx_node(0) && shard != 0 {
            // pbx_node(0) names shard 0's PBX specifically.
            return None;
        }
        return Some(n);
    }
    (u32::from(n.0) - u32::from(pbx_node(0).0) == shard).then(|| pbx_node(0))
}

/// Project the run-level fault schedule onto one shard: PBX faults go to
/// the shard hosting that server (renumbered to PBX 0), link faults
/// follow their pbx endpoint (infra-only links replicate to every shard's
/// universe), and flash crowds go to shard 0 where the driver intercepts
/// them.
fn remap_faults(all: &FaultSchedule, shard: u32) -> FaultSchedule {
    let mut out = FaultSchedule::new();
    for event in all.events() {
        let mapped = match event.kind.clone() {
            FaultKind::PbxCrash { pbx, restart_after } => {
                (pbx == shard).then_some(FaultKind::PbxCrash {
                    pbx: 0,
                    restart_after,
                })
            }
            FaultKind::CpuThrottle { pbx, factor } => {
                (pbx == shard).then_some(FaultKind::CpuThrottle { pbx: 0, factor })
            }
            FaultKind::LinkDegrade { a, b, params } => remap_node(a, shard)
                .zip(remap_node(b, shard))
                .map(|(a, b)| FaultKind::LinkDegrade { a, b, params }),
            FaultKind::LinkPartition { a, b } => remap_node(a, shard)
                .zip(remap_node(b, shard))
                .map(|(a, b)| FaultKind::LinkPartition { a, b }),
            FaultKind::LinkHeal { a, b } => remap_node(a, shard)
                .zip(remap_node(b, shard))
                .map(|(a, b)| FaultKind::LinkHeal { a, b }),
            fk @ FaultKind::FlashCrowd { .. } => (shard == 0).then_some(fk),
        };
        if let Some(kind) = mapped {
            out.push(event.at, kind);
        }
    }
    out
}

/// The sub-configuration shard `k` of `shards` runs: one server carrying
/// its `1/shards` share of the offered load (so
/// [`EmpiricalConfig::expected_pending_events`] pre-sizes the shard's
/// wheel for its partition, not the whole farm), a decorrelated seed, and
/// the shard's projection of the fault schedule.
fn shard_config(config: &EmpiricalConfig, shard: u32, shards: u32) -> EmpiricalConfig {
    let mut sub = config.clone();
    sub.servers = 1;
    sub.erlangs = config.erlangs / f64::from(shards);
    sub.seed = des::stream_seed(config.seed, u64::from(shard));
    sub.faults = remap_faults(&config.faults, shard);
    // Population mode: the shard owns its contiguous block of subscribers
    // — its slice of the registrar bindings, the synthetic directory
    // range and the churn wheel — while the driver owns the (whole-
    // population) arrival engine.
    sub.population = config
        .population
        .as_ref()
        .map(|p| p.slice(shard as usize, shards as usize));
    sub
}

/// The same run horizon the classic runner uses (placement + holding
/// slack + fault-recovery observation room).
fn run_horizon(config: &EmpiricalConfig) -> SimTime {
    let hold_slack = match config.holding {
        HoldingDist::Fixed(h) => h + 10.0,
        _ => config.holding.mean() * 8.0 + 30.0,
    };
    let mut horizon_s = 1.0 + config.placement_window_s + hold_slack + 5.0;
    if let Some(last) = config.faults.last_effect_time() {
        horizon_s = horizon_s.max(last.as_secs_f64() + hold_slack + 15.0);
    }
    SimTime::from_secs_f64(horizon_s)
}

/// Execute one run on the partitioned model with the chosen executor and
/// aggregate shard results into a [`RunResult`].
///
/// The result is a pure function of `(config, opts)` — `mode` (and the
/// worker count the pool actually grants) affects only wall-clock fields,
/// never [`RunResult::digest`]. Note the partitioned model is a
/// *different* (more faithful) model than the classic shared-world farm:
/// calls reach their PBX through an explicit dispatch hop, so its digests
/// are compared between its own executors, not against
/// [`crate::experiment::EmpiricalRunner::run_with`].
#[must_use]
pub fn run_partitioned(config: EmpiricalConfig, opts: SimOptions, mode: ExecMode) -> RunResult {
    let shards = config.servers.max(1);
    let horizon = run_horizon(&config);

    let started = std::time::Instant::now();
    let mut lookahead = DISPATCH_FLOOR;
    let mut cells = Vec::with_capacity(shards as usize);
    for k in 0..shards {
        let sub = shard_config(&config, k, shards);
        let mut sched: Scheduler<Ev> =
            Scheduler::with_kind_and_capacity(opts.scheduler, sub.expected_pending_events());
        sched.set_seq_stream(u64::from(k), u64::from(shards));
        let mut world = World::with_engine(sub, opts.media_path, opts.media_kernel)
            .with_signalling(opts.signalling);
        world.prime_partitioned(&mut sched);
        if let Some(floor) = world.topo.network.min_latency_floor() {
            if floor > lookahead {
                lookahead = floor;
            }
        }
        cells.push((
            CapacityShard {
                world,
                driver: None,
            },
            sched,
        ));
    }

    // The driver: one Poisson clock for the whole farm, seeded from the
    // index after the last shard so its draws correlate with nobody's.
    let streams = des::RngStream::new(des::stream_seed(config.seed, u64::from(shards)));
    let mut driver = Driver {
        arrivals: ArrivalProcess::poisson(config.erlangs / config.holding.mean()),
        rng_arrivals: streams.stream("arrivals"),
        rng_dispatch: streams.stream("dispatch"),
        placement_end: SimTime::from_secs(1)
            + SimDuration::from_secs_f64(config.placement_window_s),
        dispatch: lookahead,
        population: config.population.as_ref().map(|pop| DriverPop {
            // The decoy index sits past every shard seed (0..shards) and
            // the driver's own (shards); it feeds only the reference
            // engine's private loser-clock stream.
            engine: PopulationArrivals::new(
                pop,
                des::stream_seed(config.seed, u64::from(shards) + 1),
            ),
            rng_holding: streams.stream("holding"),
            cfg: pop.clone(),
            pickup: config.pickup_delay,
        }),
    };
    if let Some(p) = &mut driver.population {
        if let Some(a) = p
            .engine
            .next_arrival(SimTime::from_secs(1), &mut driver.rng_arrivals)
        {
            if a.at <= driver.placement_end {
                cells[0].1.schedule(a.at, Ev::PopArrival { tag: a.tag });
            }
        }
    } else {
        let first = driver
            .arrivals
            .next_after(SimTime::from_secs(1), &mut driver.rng_arrivals);
        cells[0].1.schedule(first, Ev::ArrivalTick);
    }
    cells[0].0.driver = Some(driver);

    let mut sim = ShardedSim::new(lookahead, cells);
    let stats = match mode {
        ExecMode::Sequential => sim.run_sequential(horizon),
        ExecMode::Sharded { threads } => sim.run_parallel(horizon, threads as usize),
    };
    let wall_clock_s = started.elapsed().as_secs_f64();

    aggregate(&config, sim, stats, wall_clock_s)
}

/// Fold per-shard worlds into one [`RunResult`], walking shards in index
/// order everywhere so every float fold is bit-reproducible and identical
/// for both executors.
fn aggregate(
    config: &EmpiricalConfig,
    sim: ShardedSim<CapacityShard>,
    stats: des::ExecStats,
    wall_clock_s: f64,
) -> RunResult {
    let shards = sim.shard_count();
    let ends: Vec<SimTime> = (0..shards).map(|i| sim.shard_now(i)).collect();
    let end = ends.iter().copied().max().unwrap_or(SimTime::ZERO);
    let events_processed = stats.events;
    let mut worlds = sim.into_worlds();

    let mut journal = loadgen::Journal::new();
    let mut per_server_peaks = Vec::with_capacity(shards);
    let mut per_server_peak_in_use = Vec::with_capacity(shards);
    let mut carried_erlangs = 0.0;
    let mut cpu_sum = 0.0;
    let mut cpu_band = (f64::INFINITY, f64::NEG_INFINITY);
    let mut shed = 0u64;
    let mut steady_attempts = 0u64;
    let mut steady_blocked = 0u64;
    let mut answers: Vec<u64> = Vec::new();
    let mut reports = Vec::with_capacity(shards);
    let mut phases = PhaseBreakdown::default();
    let warmup = SimTime::from_secs_f64(1.0 + config.holding.mean());

    for (i, cell) in worlds.iter_mut().enumerate() {
        let world = &mut cell.world;
        let end_i = ends[i];
        for pbx in &mut world.pbxes {
            pbx.finish(end_i);
        }
        for uac in &mut world.uacs {
            let _ = uac.finish();
            journal.merge(&uac.journal);
        }
        shed += world
            .pbxes
            .iter()
            .map(|p| p.stats().calls_shed)
            .sum::<u64>();
        per_server_peaks.extend(world.pbxes.iter().map(|p| p.pool.peak()));
        per_server_peak_in_use.extend(world.pbxes.iter().map(|p| p.pool.peak_in_use()));
        carried_erlangs += world
            .pbxes
            .iter()
            .map(|p| p.pool.mean_occupancy(world.placement_end()))
            .sum::<f64>();
        cpu_sum += world
            .pbxes
            .iter()
            .map(|p| p.cpu.mean_utilisation(end_i))
            .sum::<f64>();
        cpu_band = world
            .pbxes
            .iter()
            .map(|p| p.cpu.utilisation_band())
            .fold(cpu_band, |(lo, hi), (l, h)| (lo.min(l), hi.max(h)));
        for pbx in &world.pbxes {
            for rec in pbx.cdr.records() {
                if rec.start >= warmup {
                    steady_attempts += 1;
                    if rec.disposition == pbx_sim::Disposition::Blocked {
                        steady_blocked += 1;
                    }
                }
            }
        }
        let series = world.answers_per_second();
        if series.len() > answers.len() {
            answers.resize(series.len(), 0);
        }
        for (slot, v) in answers.iter_mut().zip(series) {
            *slot += v;
        }
        reports.push(world.monitor.report());
        phases.absorb(&world.phase_breakdown(0.0));
    }

    // Wall-clock attribution: handler buckets summed across shards, the
    // executor's barrier wait on top, and the remainder of the workers'
    // combined wall time booked to the scheduler.
    if phases.enabled {
        phases.sync_barrier_s += stats.sync_barrier_s;
        phases.scheduler_s = (wall_clock_s * stats.workers as f64
            - phases.handler_total_s()
            - phases.sync_barrier_s)
            .max(0.0);
    }

    let attempted = journal.attempted;
    let blocked = journal.outcome_count(CallOutcome::Blocked);
    let completed = journal.outcome_count(CallOutcome::Completed);
    let failed = journal.outcome_count(CallOutcome::Failed);
    let abandoned = journal.outcome_count(CallOutcome::Abandoned);
    let shed_then_ok = journal.outcome_count(CallOutcome::ShedThenOk);
    let steady_pb = if steady_attempts == 0 {
        0.0
    } else {
        steady_blocked as f64 / steady_attempts as f64
    };

    RunResult {
        erlangs: config.erlangs,
        attempted,
        completed,
        blocked,
        failed,
        abandoned,
        observed_pb: journal.blocking_probability(),
        steady_pb,
        steady_attempts,
        analytic_pb: teletraffic::blocking_probability(Erlangs(config.erlangs), config.channels),
        peak_channels: per_server_peaks.iter().copied().max().unwrap_or(0),
        per_server_peaks,
        carried_erlangs,
        cpu_mean: cpu_sum / shards as f64,
        cpu_band,
        monitor: MonitorReport::merge_all(&reports),
        sim_seconds: end.as_secs_f64(),
        events_processed,
        wall_clock_s,
        events_per_sec: if wall_clock_s > 0.0 {
            events_processed as f64 / wall_clock_s
        } else {
            0.0
        },
        phases,
        shed,
        retries: journal.retries,
        shed_then_ok,
        goodput: completed + shed_then_ok,
        per_server_peak_in_use,
        recoveries: compute_recoveries(&config.faults, &answers, end.as_secs_f64()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::SimDuration;

    fn farm_smoke(servers: u32, seed: u64) -> EmpiricalConfig {
        let mut cfg = EmpiricalConfig::smoke(seed);
        cfg.servers = servers;
        cfg.erlangs = 8.0;
        cfg.channels = 6;
        cfg.user_pool = 30;
        cfg
    }

    #[test]
    fn partitioned_run_places_and_completes_calls() {
        let r = run_partitioned(
            farm_smoke(3, 7),
            SimOptions::default(),
            ExecMode::Sequential,
        );
        assert!(r.attempted > 0);
        assert!(r.completed > 0);
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned,
            "outcome conservation"
        );
        assert_eq!(r.per_server_peaks.len(), 3);
        assert!(r.monitor.rtp_packets > 0, "media flowed");
        assert!(r.monitor.mos_mean > 4.0, "clean LAN scores high MOS");
    }

    #[test]
    fn fault_remap_routes_by_owner() {
        let schedule = FaultSchedule::new()
            .at(
                5.0,
                FaultKind::PbxCrash {
                    pbx: 1,
                    restart_after: SimDuration::from_secs(2),
                },
            )
            .at(
                6.0,
                FaultKind::LinkPartition {
                    a: netsim::topology::nodes::SWITCH,
                    b: pbx_node(2),
                },
            )
            .at(
                7.0,
                FaultKind::FlashCrowd {
                    rate_multiplier: 3.0,
                    duration: SimDuration::from_secs(4),
                },
            )
            .at(
                8.0,
                FaultKind::LinkDegrade {
                    a: netsim::topology::nodes::SWITCH,
                    b: netsim::topology::nodes::SIPP_CLIENT,
                    params: netsim::LinkParams::fast_ethernet(),
                },
            );
        let s0 = remap_faults(&schedule, 0);
        let s1 = remap_faults(&schedule, 1);
        let s2 = remap_faults(&schedule, 2);
        // Shard 0: flash crowd (driver) + infra link degrade.
        assert_eq!(s0.events().len(), 2);
        assert!(matches!(s0.events()[0].kind, FaultKind::FlashCrowd { .. }));
        // Shard 1: its crash (renumbered) + infra degrade.
        assert_eq!(s1.events().len(), 2);
        assert!(
            matches!(s1.events()[0].kind, FaultKind::PbxCrash { pbx: 0, .. }),
            "{:?}",
            s1.events()
        );
        // Shard 2: its partition (endpoint renumbered) + infra degrade.
        assert_eq!(s2.events().len(), 2);
        assert!(
            matches!(s2.events()[0].kind, FaultKind::LinkPartition { b, .. } if b == pbx_node(0)),
            "{:?}",
            s2.events()
        );
    }

    /// A finite-source population spread across a small farm: each shard
    /// homes a contiguous block, the driver owns the aggregated engine.
    fn pop_farm_smoke(servers: u32, seed: u64) -> EmpiricalConfig {
        let mut cfg = farm_smoke(servers, seed);
        cfg.media = crate::experiment::MediaMode::Off;
        let mut pop = PopulationConfig::for_offered_load(240, cfg.erlangs, cfg.holding.mean());
        pop.reg_expiry_s = 30.0;
        pop.churn_buckets = 8;
        cfg.population = Some(pop);
        cfg
    }

    #[test]
    fn partitioned_population_run_places_and_completes_calls() {
        let r = run_partitioned(
            pop_farm_smoke(3, 11),
            SimOptions::default(),
            ExecMode::Sequential,
        );
        assert!(r.attempted > 0, "population orders reached the shards");
        assert!(r.completed > 0, "population calls completed: {r:?}");
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned,
            "outcome conservation"
        );
    }

    #[test]
    fn sequential_and_sharded_agree_on_population_farm() {
        let base = run_partitioned(
            pop_farm_smoke(4, 23),
            SimOptions::default(),
            ExecMode::Sequential,
        );
        assert!(base.attempted > 0);
        for threads in [1u32, 2, 4] {
            let r = run_partitioned(
                pop_farm_smoke(4, 23),
                SimOptions::default(),
                ExecMode::Sharded { threads },
            );
            assert_eq!(
                r.digest(),
                base.digest(),
                "population threads={threads} diverged from sequential"
            );
        }
    }

    #[test]
    fn sequential_and_sharded_agree_on_smoke_farm() {
        let base = run_partitioned(
            farm_smoke(4, 99),
            SimOptions::default(),
            ExecMode::Sequential,
        );
        for threads in [1u32, 2, 4] {
            let r = run_partitioned(
                farm_smoke(4, 99),
                SimOptions::default(),
                ExecMode::Sharded { threads },
            );
            assert_eq!(
                r.digest(),
                base.digest(),
                "threads={threads} diverged from sequential"
            );
        }
    }
}
