//! The overload-control campaign: every admission law, swept through
//! deep overload.
//!
//! Classic SIP overload studies (Hilt & Widjaja; Shen, Schulzrinne &
//! Nahum) compare control algorithms by driving a server from below its
//! engineered load to several multiples of it and plotting *goodput
//! versus offered load*: an uncontrolled server's goodput collapses past
//! the knee, a well-controlled one holds it flat. This module runs that
//! exact protocol on the simulated testbed — one curve per
//! [`ControlLaw`] (plus the uncontrolled baseline), each point one
//! deterministic run at a multiple of the pool's engineered capacity,
//! with a flash crowd layered on top so the controls are measured
//! through their transient, not just in equilibrium.
//!
//! "Engineered capacity" is the Erlang-B inverse: the offered load at
//! which the channel pool blocks 1% of calls
//! ([`teletraffic::erlang_b::load_for`]). Sweeping multipliers of that
//! anchor makes curves comparable across pool sizes.

use crate::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode};
use crate::sweep::{self, ProgressMeter, SweepTask};
use des::SimDuration;
use faults::{FaultKind, FaultSchedule};
use loadgen::{HoldingDist, RetryPolicy};
use overload::ControlLaw;
use serde::{Deserialize, Serialize};

/// Campaign-wide knobs; the per-cell physics comes from
/// [`EmpiricalConfig::smoke`] scaled by these.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Channel pool of the server under test.
    pub channels: u32,
    /// Mean holding time in seconds (fixed distribution).
    pub holding_s: f64,
    /// Placement window per cell in seconds.
    pub placement_window_s: f64,
    /// Offered-load multipliers of engineered capacity to sweep.
    pub multipliers: Vec<f64>,
    /// Flash-crowd arrival multiplier layered onto every cell.
    pub flash_multiplier: f64,
    /// Flash-crowd duration in seconds.
    pub flash_duration_s: f64,
    /// Distinct registered users per side.
    pub user_pool: u32,
    /// Media plane for the cells (`Off` keeps the sweep fast; the
    /// admission physics is in the signalling plane).
    pub media: MediaMode,
    /// Master seed; every cell derives its own via [`des::stream_seed`].
    pub seed: u64,
}

impl CampaignConfig {
    /// The full evaluation sweep: a 60-channel pool driven at 0.5×–4×
    /// engineered capacity with an 8× flash crowd mid-window.
    #[must_use]
    pub fn evaluation_default(seed: u64) -> Self {
        CampaignConfig {
            channels: 60,
            holding_s: 30.0,
            placement_window_s: 300.0,
            multipliers: vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0],
            flash_multiplier: 8.0,
            flash_duration_s: 20.0,
            user_pool: 100,
            media: MediaMode::Off,
            seed,
        }
    }

    /// A tiny cell that sweeps the same multiplier range in well under a
    /// second — the CI smoke configuration.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        CampaignConfig {
            channels: 10,
            holding_s: 10.0,
            placement_window_s: 60.0,
            multipliers: vec![0.5, 1.0, 2.0, 4.0],
            flash_multiplier: 6.0,
            flash_duration_s: 10.0,
            user_pool: 30,
            media: MediaMode::Off,
            seed,
        }
    }

    /// The algorithms under comparison: the uncontrolled baseline plus
    /// every law in the [`overload`] suite, feedback laws sized to this
    /// campaign's engineered capacity.
    #[must_use]
    pub fn algorithms(&self, engineered_erlangs: f64) -> Vec<(String, Option<ControlLaw>)> {
        let capacity_cps = engineered_erlangs / self.holding_s;
        let laws = [
            ControlLaw::hysteresis_default(),
            ControlLaw::rate_based_for(capacity_cps),
            ControlLaw::window_based_for(self.channels),
            ControlLaw::signal_based_default(),
            ControlLaw::mos_cac_default(),
        ];
        let mut out = vec![("none".to_owned(), None)];
        out.extend(laws.map(|law| (law.name().to_owned(), Some(law))));
        out
    }
}

/// One swept point of one algorithm's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// Offered load as a multiple of engineered capacity.
    pub multiplier: f64,
    /// Offered load in Erlangs.
    pub offered_erlangs: f64,
    /// Offered call rate (calls/second).
    pub offered_cps: f64,
    /// Goodput rate over the placement window (full conversations
    /// carried per second) — the figure-of-merit axis.
    pub goodput_cps: f64,
    /// Calls attempted.
    pub attempted: u64,
    /// Full conversations carried (first try or after backoff).
    pub goodput: u64,
    /// Calls shed by the admission law.
    pub shed: u64,
    /// Calls hard-blocked (no channel, no law engaged).
    pub blocked: u64,
    /// Shed calls that completed after backoff.
    pub shed_then_ok: u64,
    /// Physics digest of the underlying run (reproducibility receipt).
    pub digest: u64,
}

/// The goodput-vs-offered-load curve of one algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgorithmCurve {
    /// Algorithm name (`"none"` or a [`ControlLaw::name`]).
    pub algorithm: String,
    /// One point per swept multiplier, in sweep order.
    pub points: Vec<CampaignPoint>,
}

/// A complete campaign result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Channel pool of the server under test.
    pub channels: u32,
    /// Engineered capacity in Erlangs (1% Erlang-B blocking).
    pub engineered_erlangs: f64,
    /// Flash-crowd multiplier applied to every cell.
    pub flash_multiplier: f64,
    /// One curve per algorithm.
    pub curves: Vec<AlgorithmCurve>,
}

/// Build the [`EmpiricalConfig`] for one campaign cell.
fn cell_config(cc: &CampaignConfig, erlangs: f64, law: Option<ControlLaw>) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::smoke(cc.seed);
    cfg.erlangs = erlangs;
    cfg.channels = cc.channels;
    cfg.holding = HoldingDist::Fixed(cc.holding_s);
    cfg.placement_window_s = cc.placement_window_s;
    cfg.user_pool = cc.user_pool;
    cfg.media = cc.media;
    cfg.overload_law = law;
    // Shed callers retry with capped exponential backoff — the campaign
    // measures controlled retry behaviour, not caller abandonment.
    cfg.retry = Some(RetryPolicy {
        max_retries: 4,
        base_backoff: SimDuration::from_secs(2),
        max_backoff: SimDuration::from_secs(16),
    });
    // A flash crowd a third of the way in, so every curve includes the
    // control's transient response, not just its steady state.
    cfg.faults = FaultSchedule::new().at(
        cc.placement_window_s / 3.0,
        FaultKind::FlashCrowd {
            rate_multiplier: cc.flash_multiplier,
            duration: SimDuration::from_secs_f64(cc.flash_duration_s),
        },
    );
    cfg
}

/// Run the campaign: every algorithm × every multiplier, the whole grid
/// fanned out through the budgeted work-stealing executor
/// ([`crate::sweep`]), each cell a pure function of `(seed, algorithm,
/// multiplier)` collected back into curve order.
#[must_use]
pub fn run_campaign(cc: &CampaignConfig) -> CampaignResult {
    run_campaign_with(cc, None)
}

/// [`run_campaign`] with optional progress reporting (the CLI's
/// `--progress`).
#[must_use]
pub fn run_campaign_with(cc: &CampaignConfig, progress: Option<&ProgressMeter>) -> CampaignResult {
    // Engineered capacity is the same Newton solve for every cell of
    // every campaign at this pool size — memoized process-wide.
    let engineered = teletraffic::erlang_b::shared_load_for(cc.channels, 0.01)
        .map(|e| e.value())
        .unwrap_or(f64::from(cc.channels));
    let algorithms = cc.algorithms(engineered);
    let n_mult = cc.multipliers.len();
    // One task per grid cell, flat index ai·n_mult + mi; heavier
    // multipliers cost proportionally more events, which the cost model
    // picks up from the cell's own config.
    let tasks: Vec<SweepTask> = algorithms
        .iter()
        .enumerate()
        .flat_map(|(ai, (_, law))| {
            cc.multipliers.iter().enumerate().map(move |(mi, &m)| {
                let cost = sweep::run_cost(&cell_config(cc, engineered * m, *law));
                SweepTask {
                    cell: ai * n_mult + mi,
                    rep: 0,
                    cost,
                }
            })
        })
        .collect();
    let points = sweep::run_sweep_with(
        &tasks,
        |t| {
            let (ai, mi) = (t.cell / n_mult, t.cell % n_mult);
            let m = cc.multipliers[mi];
            let erlangs = engineered * m;
            let mut cfg = cell_config(cc, erlangs, algorithms[ai].1);
            // Decorrelate cells without losing reproducibility: the cell
            // seed is a pure function of the campaign seed and the
            // cell's grid position.
            cfg.seed = des::stream_seed(cc.seed, (ai * 1000 + mi) as u64);
            let r = EmpiricalRunner::run(cfg);
            CampaignPoint {
                multiplier: m,
                offered_erlangs: erlangs,
                offered_cps: erlangs / cc.holding_s,
                goodput_cps: r.goodput as f64 / cc.placement_window_s,
                attempted: r.attempted,
                goodput: r.goodput,
                shed: r.shed,
                blocked: r.blocked,
                shed_then_ok: r.shed_then_ok,
                digest: r.digest(),
            }
        },
        progress,
    );
    let mut points = points.into_iter();
    let curves = algorithms
        .iter()
        .map(|(name, _)| AlgorithmCurve {
            algorithm: name.clone(),
            points: points.by_ref().take(n_mult).collect(),
        })
        .collect();
    CampaignResult {
        channels: cc.channels,
        engineered_erlangs: engineered,
        flash_multiplier: cc.flash_multiplier,
        curves,
    }
}

/// Render the campaign as a text figure: one goodput-vs-offered-load
/// block per algorithm.
#[must_use]
pub fn render_campaign(result: &CampaignResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Overload-control campaign — {} channels, engineered capacity {:.1} E \
         (1% GoS), {}x flash crowd in every cell",
        result.channels, result.engineered_erlangs, result.flash_multiplier
    );
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>10} {:>8} {:>9} {:>8} {:>8} {:>8}",
        "algorithm", "mult", "offered/s", "good/s", "attempted", "shed", "blocked", "retried-ok"
    );
    for curve in &result.curves {
        for p in &curve.points {
            let _ = writeln!(
                out,
                "{:<14} {:>5.1} {:>10.2} {:>8.2} {:>9} {:>8} {:>8} {:>8}",
                curve.algorithm,
                p.multiplier,
                p.offered_cps,
                p.goodput_cps,
                p.attempted,
                p.shed,
                p.blocked,
                p.shed_then_ok
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_covers_every_algorithm_and_multiplier() {
        let cc = CampaignConfig::smoke(11);
        let result = run_campaign(&cc);
        // Baseline + the full law suite.
        assert_eq!(result.curves.len(), 6);
        let names: Vec<&str> = result.curves.iter().map(|c| c.algorithm.as_str()).collect();
        assert_eq!(
            names,
            [
                "none",
                "hysteresis503",
                "rate_based",
                "window_based",
                "signal_based",
                "mos_cac"
            ]
        );
        for curve in &result.curves {
            assert_eq!(curve.points.len(), cc.multipliers.len());
            for p in &curve.points {
                assert!(p.attempted > 0, "{}: cell placed calls", curve.algorithm);
                assert!(
                    p.goodput_cps >= 0.0 && p.goodput <= p.attempted,
                    "{}: sane goodput",
                    curve.algorithm
                );
            }
        }
        // At half engineered capacity nothing should be refused, with or
        // without a law.
        for curve in &result.curves {
            let light = &curve.points[0];
            assert!(
                light.goodput > 0,
                "{}: light load carries traffic",
                curve.algorithm
            );
        }
    }

    #[test]
    fn campaign_is_reproducible_cell_for_cell() {
        let cc = CampaignConfig::smoke(29);
        let a = run_campaign(&cc);
        let b = run_campaign(&cc);
        for (ca, cb) in a.curves.iter().zip(&b.curves) {
            for (pa, pb) in ca.points.iter().zip(&cb.points) {
                assert_eq!(pa.digest, pb.digest, "{} cell digests", ca.algorithm);
            }
        }
    }
}
