//! Series builders for the paper's Figures 3, 6 and 7, plus the
//! fault-recovery timeline used by the robustness experiments.

use crate::experiment::{run_world, EmpiricalConfig, EmpiricalRunner};
use crate::sweep::{self, AdaptivePolicy, ProgressMeter, SweepTask};
use des::SimTime;
use serde::{Deserialize, Serialize};
use teletraffic::{blocking_probability, Erlangs};

/// One analytical curve of Fig. 3: `Pb%` as a function of `N` for a fixed
/// workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Curve {
    /// Workload in Erlangs.
    pub erlangs: f64,
    /// `(N, Pb%)` points.
    pub points: Vec<(u32, f64)>,
}

/// Fig. 3 — Erlang-B blocking vs channel count for workloads 20…240 E.
#[must_use]
pub fn fig3(max_channels: u32) -> Vec<Fig3Curve> {
    (1..=12)
        .map(|k| {
            let a = f64::from(k) * 20.0;
            let curve = teletraffic::erlang_b::blocking_curve(Erlangs(a), max_channels);
            Fig3Curve {
                erlangs: a,
                points: curve
                    .iter()
                    .enumerate()
                    .skip(1)
                    .map(|(n, &b)| (n as u32, b * 100.0))
                    .collect(),
            }
        })
        .collect()
}

/// One point of the Fig. 6 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Point {
    /// Offered load in Erlangs.
    pub erlangs: f64,
    /// Mean empirical blocking (%), averaged over replications.
    pub empirical_pb_pct: f64,
    /// Half-width of the 95% CI over replications (%).
    pub ci_half_width_pct: f64,
    /// Erlang-B `Pb%` at N = 160.
    pub analytic_160: f64,
    /// Erlang-B `Pb%` at N = 165.
    pub analytic_165: f64,
    /// Erlang-B `Pb%` at N = 170.
    pub analytic_170: f64,
}

/// The configuration one Fig. 6 replication runs: `signalling_only` at
/// load `a`, with the placement window extended from the paper's 180 s
/// to 600 s so the steady-state (warmup-truncated) blocking estimator is
/// apples-to-apples against the stationary Erlang-B rails. The raw
/// transient-laden measure appears in Table I exactly as the paper
/// records it.
fn fig6_cfg(a: f64, seed: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::signalling_only(a, seed);
    cfg.placement_window_s = 600.0;
    cfg
}

/// One Fig. 6 point from its replication samples (already in rep order)
/// plus the shared analytic rails.
fn fig6_point(a: f64, pbs: &[f64]) -> Fig6Point {
    let (mean, ci) = sweep::mean_ci(pbs);
    // One memoized recurrence pass serves all three analytic rails for
    // every replication of every sweep that asks.
    let rails = teletraffic::erlang_b::shared_curve(Erlangs(a), 170);
    Fig6Point {
        erlangs: a,
        empirical_pb_pct: mean,
        ci_half_width_pct: ci,
        analytic_160: rails.at(160) * 100.0,
        analytic_165: rails.at(165) * 100.0,
        analytic_170: rails.at(170) * 100.0,
    }
}

/// Fig. 6 — empirical blocking vs the Erlang-B curves for N = 160/165/170.
///
/// Sweeps `loads` with `replications` independent seeded runs per point.
/// The `(load, rep)` grid fans out through the budgeted work-stealing
/// executor ([`crate::sweep`]) — workers come from the same [`des::pool`]
/// budget the within-run sharded engine draws on, so `--threads N` bounds
/// the whole process — and, thanks to per-run RNG streams plus
/// index-keyed collection, produces identical numbers at any thread
/// count.
#[must_use]
pub fn fig6(loads: &[f64], replications: u64, base_seed: u64) -> Vec<Fig6Point> {
    fig6_with(loads, replications, base_seed, None)
}

/// [`fig6`] with optional progress reporting (the CLI's `--progress`).
#[must_use]
pub fn fig6_with(
    loads: &[f64],
    replications: u64,
    base_seed: u64,
    progress: Option<&ProgressMeter>,
) -> Vec<Fig6Point> {
    // Cell-major task order: samples for load `c` are the contiguous
    // slice [c·R, (c+1)·R), already in replication order.
    let tasks: Vec<SweepTask> = loads
        .iter()
        .enumerate()
        .flat_map(|(cell, &a)| {
            let cost = sweep::run_cost(&fig6_cfg(a, 0));
            (0..replications).map(move |rep| SweepTask { cell, rep, cost })
        })
        .collect();
    let pbs = sweep::run_sweep_with(
        &tasks,
        |t| {
            let cfg = fig6_cfg(loads[t.cell], des::stream_seed(base_seed, t.rep));
            EmpiricalRunner::run(cfg).steady_pb * 100.0
        },
        progress,
    );
    loads
        .iter()
        .enumerate()
        .map(|(cell, &a)| {
            let r = replications as usize;
            fig6_point(a, &pbs[cell * r..(cell + 1) * r])
        })
        .collect()
}

/// Adaptive-replication Fig. 6: every load point starts at
/// `policy.min_reps` replications and keeps spending — through the same
/// budgeted executor — until its 95% CI half-width (in percentage
/// points) reaches `policy.ci_target` or the point exhausts
/// `policy.max_reps`. Replication `r` of a load always runs seed
/// `stream_seed(base_seed, r)`, so the sample sets (and hence every
/// reported number) are a pure function of `(loads, policy, base_seed)`
/// at any worker count.
#[must_use]
pub fn fig6_adaptive(
    loads: &[f64],
    policy: AdaptivePolicy,
    base_seed: u64,
    progress: Option<&ProgressMeter>,
) -> Vec<Fig6Point> {
    let costs: Vec<u64> = loads
        .iter()
        .map(|&a| sweep::run_cost(&fig6_cfg(a, 0)))
        .collect();
    let estimates = sweep::adaptive_sweep(
        &costs,
        policy,
        |cell, rep| {
            let cfg = fig6_cfg(loads[cell], des::stream_seed(base_seed, rep));
            EmpiricalRunner::run(cfg).steady_pb * 100.0
        },
        progress,
    );
    loads
        .iter()
        .zip(&estimates)
        .map(|(&a, est)| fig6_point(a, &est.samples))
        .collect()
}

/// The paper's Fig. 6 x-axis: 120…260 E in steps of 10.
#[must_use]
pub fn fig6_default_loads() -> Vec<f64> {
    (12..=26).map(|k| f64::from(k) * 10.0).collect()
}

/// One curve of Fig. 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Curve {
    /// Mean call duration in minutes.
    pub duration_min: f64,
    /// `(population %, Pb%)` points.
    pub points: Vec<(f64, f64)>,
}

/// Fig. 7 — blocking vs percentage of a calling population, for mean call
/// durations of 2.0 / 2.5 / 3.0 minutes, N = 165 channels, population
/// 8000 (the paper's VoWiFi dimensioning study).
#[must_use]
pub fn fig7(population: u64, channels: u32) -> Vec<Fig7Curve> {
    [2.0, 2.5, 3.0]
        .iter()
        .map(|&dur| {
            let points = (1..=100)
                .map(|pct| {
                    let frac = f64::from(pct) / 100.0;
                    let a = Erlangs::from_population(population, frac, dur);
                    (f64::from(pct), blocking_probability(a, channels) * 100.0)
                })
                .collect();
            Fig7Curve {
                duration_min: dur,
                points,
            }
        })
        .collect()
}

/// Answer-rate timeline for a (usually fault-laden) run: one
/// `(second, answers)` sample per simulated second up to `horizon_s`.
/// This is the series [`crate::experiment::compute_recoveries`] scans;
/// exposed so recovery plots can show the dip-and-heal shape directly.
#[must_use]
pub fn recovery_timeline(config: EmpiricalConfig, horizon_s: f64) -> Vec<(u64, u64)> {
    let sim = run_world(config, SimTime::from_secs_f64(horizon_s));
    sim.world
        .answers_per_second()
        .iter()
        .enumerate()
        .map(|(s, &n)| (s as u64, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_twelve_monotone_curves() {
        let curves = fig3(260);
        assert_eq!(curves.len(), 12);
        assert_eq!(curves[0].erlangs, 20.0);
        assert_eq!(curves[11].erlangs, 240.0);
        for c in &curves {
            assert_eq!(c.points.len(), 260);
            // Non-increasing in N.
            for w in c.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9, "A={}", c.erlangs);
            }
            // Percent scale.
            assert!(c.points.iter().all(|&(_, pb)| (0.0..=100.0).contains(&pb)));
        }
        // Heavier workload blocks more at fixed N.
        let at_n150 = |c: &Fig3Curve| c.points[149].1;
        assert!(at_n150(&curves[11]) > at_n150(&curves[0]));
    }

    #[test]
    fn fig7_anchors_from_the_paper() {
        let curves = fig7(8000, 165);
        assert_eq!(curves.len(), 3);
        let at = |c: &Fig7Curve, pct: usize| c.points[pct - 1].1;
        // "With 60% of the population placing calls, 2.0 min: <5% blocked."
        assert!(
            at(&curves[0], 60) < 5.0,
            "2.0min@60% = {}",
            at(&curves[0], 60)
        );
        // "2.5 min: nearly 21%."
        assert!(
            (at(&curves[1], 60) - 21.0).abs() < 3.0,
            "2.5min@60% = {}",
            at(&curves[1], 60)
        );
        // "3.0 min: surpasses 34%."
        assert!(
            at(&curves[2], 60) > 30.0,
            "3.0min@60% = {}",
            at(&curves[2], 60)
        );
        // Longer calls always block more.
        for pct in [20usize, 40, 60, 80, 100] {
            assert!(at(&curves[0], pct) <= at(&curves[1], pct) + 1e-9);
            assert!(at(&curves[1], pct) <= at(&curves[2], pct) + 1e-9);
        }
    }

    #[test]
    fn fig6_empirical_tracks_analytic_at_small_scale() {
        // Tiny sweep (3 loads × 2 reps) to keep debug-mode runtime sane;
        // the full sweep runs in the bench.
        let pts = fig6(&[140.0, 200.0, 240.0], 2, 99);
        assert_eq!(pts.len(), 3);
        // At 140 E vs 165 channels there is almost no blocking.
        assert!(pts[0].empirical_pb_pct < 3.0, "{:?}", pts[0]);
        // At 240 E blocking is substantial and between the analytic rails.
        let p240 = &pts[2];
        assert!(p240.empirical_pb_pct > 15.0, "{p240:?}");
        assert!(
            p240.empirical_pb_pct > p240.analytic_170 - 12.0
                && p240.empirical_pb_pct < p240.analytic_160 + 12.0,
            "{p240:?}"
        );
        // Analytic rails are ordered: fewer channels block more.
        for p in &pts {
            assert!(p.analytic_160 >= p.analytic_165);
            assert!(p.analytic_165 >= p.analytic_170);
        }
    }

    #[test]
    fn fig6_adaptive_with_loose_target_equals_fixed_min_reps() {
        // A target every cell meets immediately makes the adaptive sweep
        // spend exactly min_reps per point with the same indexed seeds —
        // so it must reproduce the fixed-replication sweep bit for bit.
        let policy = AdaptivePolicy {
            ci_target: 1.0e6,
            min_reps: 2,
            max_reps: 4,
        };
        let fixed = fig6(&[140.0, 240.0], 2, 99);
        let adaptive = fig6_adaptive(&[140.0, 240.0], policy, 99, None);
        assert_eq!(fixed.len(), adaptive.len());
        for (f, a) in fixed.iter().zip(&adaptive) {
            assert_eq!(f.empirical_pb_pct.to_bits(), a.empirical_pb_pct.to_bits());
            assert_eq!(f.ci_half_width_pct.to_bits(), a.ci_half_width_pct.to_bits());
            assert_eq!(f.analytic_165.to_bits(), a.analytic_165.to_bits());
        }
    }

    #[test]
    fn recovery_timeline_is_per_second_and_nonempty() {
        let mut cfg = EmpiricalConfig::smoke(9);
        cfg.media = crate::experiment::MediaMode::Off;
        let tl = recovery_timeline(cfg, 30.0);
        assert!(tl.len() >= 15, "timeline covers the window: {}", tl.len());
        assert!(tl.iter().any(|&(_, n)| n > 0), "some answers observed");
        assert!(tl.iter().enumerate().all(|(i, &(s, _))| s == i as u64));
    }

    #[test]
    fn fig6_default_axis() {
        let loads = fig6_default_loads();
        assert_eq!(loads.first(), Some(&120.0));
        assert_eq!(loads.last(), Some(&260.0));
        assert_eq!(loads.len(), 15);
    }
}
